"""Cost-model calibration against measured runs."""

import math

import pytest

from repro.core.cost.calibrate import Calibration, calibrate
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import MachineProfile
from repro.core.mapping import derive_mapping
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import ProgramExecutor
from repro.core.ops import Combine, Scan
from repro.services.endpoint import RelationalEndpoint


@pytest.fixture(scope="module")
def calibrated(auction_mf, auction_lf, auction_document,
               auction_schema):
    source = RelationalEndpoint("cal-src", auction_mf)
    source.load_document(auction_document)
    target = RelationalEndpoint("cal-tgt", auction_lf)
    program = build_transfer_program(
        derive_mapping(auction_mf, auction_lf)
    )
    placement = source_heavy_placement(program)
    report = ProgramExecutor(source, target).run(program, placement)
    statistics = StatisticsCatalog.from_document(
        auction_schema, auction_document
    )
    return (
        calibrate(program, report, statistics),
        program, placement, report, statistics,
    )


class TestCalibrate:
    def test_fits_every_executed_kind(self, calibrated):
        calibration = calibrated[0]
        assert set(calibration.seconds_per_unit) == {
            "scan", "combine", "write",
        }  # the MF->LF program has no splits
        assert all(
            scale > 0
            for scale in calibration.seconds_per_unit.values()
        )

    def test_predictions_are_seconds_scale(self, calibrated):
        calibration, program, _, report, _ = calibrated
        predicted_total = sum(
            calibration.predict(node)
            for node in program.topological_order()
        )
        measured_total = sum(
            timing.seconds for timing in report.op_timings
        )
        # The linear fit reproduces the total within a factor of ~2
        # (per-op variance is high at small sizes, totals are stable).
        assert predicted_total == pytest.approx(
            measured_total, rel=1.0
        )
        assert predicted_total > 0

    def test_unseen_kind_falls_back_to_mean(self, calibrated,
                                            auction_schema,
                                            auction_lf):
        calibration = calibrated[0]
        from repro.core.fragment import Fragment
        fragment = auction_lf.fragment_of("item")
        pieces = fragment.split_into([
            ["item", "location", "quantity", "iname"],
            ["payment"], ["idescription"], ["shipping"], ["mailbox"],
        ])
        from repro.core.ops import Split
        seconds = calibration.predict(Split(fragment, pieces))
        assert seconds > 0 and math.isfinite(seconds)

    def test_scaled_model_prices_in_seconds(self, calibrated,
                                            auction_mf):
        calibration = calibrated[0]
        model = calibration.scaled_model()
        from repro.core.ops.base import Location
        scan = Scan(auction_mf.fragment_of("item"))
        assert model.comp_cost(scan, Location.SOURCE) == \
            pytest.approx(calibration.predict(scan))

    def test_scaled_model_keeps_capabilities(self, calibrated,
                                             auction_schema):
        calibration = calibrated[0]
        model = calibration.scaled_model(
            target=MachineProfile("dumb", can_combine=False)
        )
        from repro.core.fragment import Fragment
        from repro.core.ops.base import Location
        site = Fragment.single(auction_schema, "site")
        regions = Fragment.single(auction_schema, "regions")
        assert math.isinf(
            model.comp_cost(Combine(site, regions), Location.TARGET)
        )

    def test_speed_scaling(self, calibrated, auction_mf):
        calibration = calibrated[0]
        from repro.core.ops.base import Location
        fast = calibration.scaled_model(
            target=MachineProfile("fast", speed=4.0)
        )
        scan = Scan(auction_mf.fragment_of("item"))
        assert fast.comp_cost(scan, Location.TARGET) == pytest.approx(
            fast.comp_cost(scan, Location.SOURCE) / 4.0
        )

    def test_report_program_mismatch_rejected(self, calibrated,
                                              auction_mf,
                                              auction_lf):
        calibration, _, _, report, statistics = calibrated
        other = build_transfer_program(
            derive_mapping(auction_lf, auction_mf)
        )
        with pytest.raises(ValueError, match="counts"):
            calibrate(other, report, statistics)

    def test_empty_calibration_predicts_zero(self, calibrated,
                                             auction_mf):
        _, _, _, _, statistics = calibrated
        empty = Calibration(statistics)
        assert empty.predict(
            Scan(auction_mf.fragment_of("item"))
        ) == 0.0
