"""Statistics catalogs: synthetic, measured, and fragment pricing."""

import pytest

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.fragment import Fragment


class TestSynthetic:
    def test_counts_follow_cardinalities(self, customers_schema):
        stats = StatisticsCatalog.synthetic(customers_schema, fanout=4.0)
        assert stats.count("Customer") == 1.0
        assert stats.count("Order") == 4.0
        assert stats.count("Service") == 4.0     # one per order
        assert stats.count("Line") == 16.0       # 4 per order
        assert stats.count("Feature") == 64.0

    def test_widths_positive(self, customers_schema):
        stats = StatisticsCatalog.synthetic(customers_schema)
        for name in customers_schema.element_names():
            assert stats.width(name) > 0

    def test_fragment_accessors_compose(self, customers_schema):
        stats = StatisticsCatalog.synthetic(customers_schema, fanout=2.0)
        order = Fragment(customers_schema, ["Order"])
        service = Fragment(customers_schema, ["Service", "ServiceName"])
        combined = order.combined_with(service)
        assert stats.fragment_rows(combined) == stats.fragment_rows(order)
        assert stats.fragment_elements(combined) == pytest.approx(
            stats.fragment_elements(order)
            + stats.fragment_elements(service)
        )

    def test_whole_document_covers_everything(self, customers_schema):
        stats = StatisticsCatalog.synthetic(customers_schema)
        whole = Fragment.whole(customers_schema)
        assert stats.fragment_elements(whole) == pytest.approx(
            sum(stats.count(name)
                for name in customers_schema.element_names())
        )


class TestFromDocument:
    def test_exact_counts(self, customers_schema, customer_documents):
        document = customer_documents[0]
        stats = StatisticsCatalog.from_document(
            customers_schema, document
        )
        assert stats.count("Customer") == 1
        assert stats.count("Order") == sum(
            1 for node in document.iter_all() if node.name == "Order"
        )

    def test_size_close_to_estimated(self, customers_schema,
                                     customer_documents):
        document = customer_documents[0]
        stats = StatisticsCatalog.from_document(
            customers_schema, document
        )
        whole = Fragment.whole(customers_schema)
        measured = document.estimated_size()
        # fragment_size adds the per-row ID/PARENT exposure (24 bytes).
        assert stats.fragment_size(whole) == pytest.approx(
            measured + 24, rel=0.01
        )

    def test_feed_size_below_tagged_size(self, auction_schema,
                                         auction_document):
        stats = StatisticsCatalog.from_document(
            auction_schema, auction_document
        )
        item = Fragment.full_subtree(auction_schema, "item")
        assert stats.fragment_feed_size(item) < stats.fragment_size(item)


class TestValueWidthFallback:
    def test_fallback_subtracts_tag_overhead(self, customers_schema):
        counts = {name: 1.0 for name in customers_schema.element_names()}
        widths = {
            name: 2 * len(name) + 5 + 10.0
            for name in customers_schema.element_names()
        }
        stats = StatisticsCatalog(customers_schema, counts, widths)
        fragment = Fragment(customers_schema, ["Order"])
        assert stats.fragment_feed_size(fragment) == pytest.approx(
            (8 + 2 + 10.0) + 8  # key+sep+value plus per-row parent key
        )
