"""Calibration serialization: serialize -> load reproduces predict()
bit-exactly (property-based)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost.calibrate import Calibration
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.mapping import derive_mapping
from repro.core.program.builder import build_transfer_program

KEYS = st.sampled_from([
    "scan", "combine", "split", "write",
    "scan.columnar", "combine.hash", "combine.columnar",
    "split.columnar", "write.columnar",
])
SCALES = st.dictionaries(
    KEYS,
    st.floats(min_value=1e-9, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    max_size=9,
)
SAMPLES = st.dictionaries(KEYS, st.integers(1, 1000), max_size=9)
STRATEGIES = st.sampled_from(["row", "columnar", "hash"])


@settings(max_examples=50, deadline=None)
@given(scales=SCALES, samples=SAMPLES, strategy=STRATEGIES)
def test_roundtrip_reproduces_predict_exactly(
        auction_schema, auction_mf, auction_lf,
        scales, samples, strategy):
    statistics = StatisticsCatalog.synthetic(auction_schema)
    original = Calibration(statistics, dict(scales), dict(samples))
    # Through actual JSON text, exactly like a stats-store file.
    payload = json.loads(json.dumps(original.to_dict()))
    restored = Calibration.from_dict(payload, statistics)
    assert restored.seconds_per_unit == original.seconds_per_unit
    assert restored.samples == original.samples
    program = build_transfer_program(
        derive_mapping(auction_mf, auction_lf)
    )
    for node in program.nodes:
        # Bit-identical, not approximately equal: the scales travel
        # as exact floats and predict() is the same arithmetic.
        assert restored.predict(node, strategy) \
            == original.predict(node, strategy)


def test_from_dict_requires_scale_mapping(auction_schema):
    statistics = StatisticsCatalog.synthetic(auction_schema)
    with pytest.raises(ValueError, match="seconds_per_unit"):
        Calibration.from_dict({"samples": {}}, statistics)
    restored = Calibration.from_dict(
        {"seconds_per_unit": {"scan": 2.0}}, statistics
    )
    assert restored.samples == {}
