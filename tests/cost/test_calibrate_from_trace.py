"""Calibration fed from a recorded trace (instead of a fresh probe).

Satellite of the observability issue: a Figure 9 MF→MF run recorded
with tracing on must calibrate to the same per-kind scales as the
classic report-fed :func:`repro.core.cost.calibrate.calibrate` — the
trace carries the very seconds the report accounts, so the fits agree
within float tolerance.
"""

import pytest

from repro.core.cost.calibrate import calibrate, calibrate_timings
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.mapping import derive_mapping
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import (
    OperationTiming,
    ProgramExecutor,
)
from repro.net.transport import SimulatedChannel
from repro.obs import Tracer, calibration_from_trace
from repro.services.endpoint import RelationalEndpoint


@pytest.fixture(scope="module")
def traced(auction_mf, auction_document, auction_schema):
    source = RelationalEndpoint("trace-cal-src", auction_mf)
    source.load_document(auction_document)
    target = RelationalEndpoint("trace-cal-tgt", auction_mf)
    program = build_transfer_program(
        derive_mapping(auction_mf, auction_mf)
    )
    placement = source_heavy_placement(program)
    tracer = Tracer()
    report = ProgramExecutor(
        source, target, SimulatedChannel(), tracer=tracer
    ).run(program, placement)
    statistics = StatisticsCatalog.from_document(
        auction_schema, auction_document
    )
    return program, report, tracer, statistics


class TestCalibrationFromTrace:
    def test_matches_report_fed_calibration(self, traced):
        program, report, tracer, statistics = traced
        from_report = calibrate(program, report, statistics)
        from_trace = calibration_from_trace(
            program, tracer, statistics
        )
        assert set(from_trace.seconds_per_unit) == set(
            from_report.seconds_per_unit
        )
        for kind, scale in from_report.seconds_per_unit.items():
            assert from_trace.seconds_per_unit[kind] == pytest.approx(
                scale, rel=1e-9
            )
        assert from_trace.samples == from_report.samples

    def test_predicts_positive_seconds(self, traced):
        program, _, tracer, statistics = traced
        calibration = calibration_from_trace(
            program, tracer, statistics
        )
        for node in program.topological_order():
            assert calibration.predict(node) > 0

    def test_incomplete_trace_rejected(self, traced):
        program, _, tracer, statistics = traced
        partial = [
            span for span in tracer.spans
            if span.attrs.get("op_id") != program.nodes[0].op_id
        ]
        with pytest.raises(ValueError, match="no op span"):
            calibration_from_trace(program, partial, statistics)


class TestCalibrateTimings:
    def test_matches_by_op_id_out_of_order(self, traced):
        program, report, _, statistics = traced
        shuffled = list(reversed(report.op_timings))
        direct = calibrate_timings(program, shuffled, statistics)
        baseline = calibrate(program, report, statistics)
        assert direct.seconds_per_unit == pytest.approx(
            baseline.seconds_per_unit
        )

    def test_unknown_op_id_rejected(self, traced):
        program, _, _, statistics = traced
        bogus = [OperationTiming("ghost", "scan", None, 0.1, 1, 9999)]
        with pytest.raises(ValueError, match="matches no operation"):
            calibrate_timings(program, bogus, statistics)

    def test_anonymous_timings_pair_positionally(self, traced):
        program, report, _, statistics = traced
        anonymous = [
            OperationTiming(t.label, t.kind, t.location, t.seconds,
                            t.rows, -1)
            for t in report.op_timings
        ]
        fitted = calibrate_timings(program, anonymous, statistics)
        baseline = calibrate(program, report, statistics)
        assert fitted.seconds_per_unit == pytest.approx(
            baseline.seconds_per_unit
        )
