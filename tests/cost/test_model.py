"""The cost model: comp_cost, comm_cost, formula 1."""

import math

import pytest

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import (
    CostModel,
    CostWeights,
    MachineProfile,
    operation_work,
)
from repro.core.fragment import Fragment
from repro.core.mapping import derive_mapping
from repro.core.ops import Combine, Location, Scan, Split, Write
from repro.core.optimizer.greedy import greedy_placement
from repro.core.program.builder import build_transfer_program


@pytest.fixture
def stats(customers_schema):
    return StatisticsCatalog.synthetic(customers_schema, fanout=3.0)


@pytest.fixture
def model(stats):
    return CostModel(stats)


class TestOperationWork:
    def test_scan_prices_elements(self, customers_schema, stats):
        small = Scan(Fragment(customers_schema, ["Order"]))
        big = Scan(Fragment.full_subtree(customers_schema, "Order"))
        assert operation_work(big, stats) > operation_work(small, stats)

    def test_combine_prices_parent_plus_child_rows(
            self, customers_schema, stats):
        order = Fragment(customers_schema, ["Order"])
        service = Fragment(customers_schema, ["Service", "ServiceName"])
        combine = Combine(order, service)
        work = operation_work(combine, stats)
        assert work > 0

    def test_split_and_write(self, customers_schema, stats):
        fragment = Fragment(
            customers_schema, ["Line", "TelNo", "Feature", "FeatureID"]
        )
        pieces = fragment.split_into(
            [["Line", "TelNo"], ["Feature", "FeatureID"]]
        )
        assert operation_work(Split(fragment, pieces), stats) > 0
        assert operation_work(Write(fragment), stats) > 0

    def test_unknown_op_rejected(self, stats):
        with pytest.raises(TypeError):
            operation_work(object(), stats)


class TestCompCost:
    def test_speed_divides_cost(self, customers_schema, stats):
        fast = CostModel(
            stats, target=MachineProfile("t", speed=10.0)
        )
        scan = Scan(Fragment(customers_schema, ["Order"]))
        assert fast.comp_cost(scan, Location.TARGET) == pytest.approx(
            fast.comp_cost(scan, Location.SOURCE) / 10.0
        )

    def test_dumb_client_infinite_combine(self, customers_schema,
                                          stats):
        model = CostModel(
            stats, target=MachineProfile("t", can_combine=False)
        )
        order = Fragment(customers_schema, ["Order"])
        service = Fragment(customers_schema, ["Service", "ServiceName"])
        combine = Combine(order, service)
        assert math.isinf(model.comp_cost(combine, Location.TARGET))
        assert math.isfinite(model.comp_cost(combine, Location.SOURCE))

    def test_no_split_capability(self, customers_schema, stats):
        model = CostModel(
            stats, source=MachineProfile("s", can_split=False)
        )
        fragment = Fragment(customers_schema, ["Line", "TelNo"])
        split = Split(
            fragment, fragment.split_into([["Line"], ["TelNo"]])
        )
        assert math.isinf(model.comp_cost(split, Location.SOURCE))

    def test_index_factor_scales_writes(self, customers_schema, stats):
        heavy = CostModel(
            stats, target=MachineProfile("t", index_factor=3.0)
        )
        plain = CostModel(stats)
        write = Write(Fragment(customers_schema, ["Order"]))
        assert heavy.comp_cost(write, Location.TARGET) == pytest.approx(
            3.0 * plain.comp_cost(write, Location.TARGET)
        )


class TestProgramCost:
    def test_formula1_weights(self, customers_schema, customers_s,
                              customers_t, stats):
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        model = CostModel(stats)
        placement = greedy_placement(program, model)
        base = model.breakdown(program, placement)
        doubled_comm = CostModel(
            stats, weights=CostWeights(communication=2.0)
        )
        breakdown = doubled_comm.breakdown(program, placement)
        assert breakdown.communication == pytest.approx(
            2.0 * base.communication
        )
        assert breakdown.computation == pytest.approx(base.computation)
        assert breakdown.total == pytest.approx(
            breakdown.computation + breakdown.communication
        )

    def test_bandwidth_scales_comm(self, customers_schema, stats):
        slow = CostModel(stats, bandwidth=1.0)
        fast = CostModel(stats, bandwidth=10.0)
        fragment = Fragment(customers_schema, ["Order"])
        assert slow.comm_cost(fragment) == pytest.approx(
            10.0 * fast.comm_cost(fragment)
        )

    def test_bad_bandwidth_rejected(self, stats):
        with pytest.raises(ValueError):
            CostModel(stats, bandwidth=0.0)

    def test_by_location_sums_to_computation(
            self, customers_s, customers_t, stats):
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        model = CostModel(stats)
        placement = greedy_placement(program, model)
        breakdown = model.breakdown(program, placement)
        assert sum(breakdown.by_location.values()) == pytest.approx(
            breakdown.computation
        )
