"""Failure injection and edge paths across subsystems."""

import pytest

from repro.errors import (
    EndpointError,
    ProgramError,
    RelationalError,
    TransportError,
    XmlSyntaxError,
)
from repro.core.fragment import Fragment
from repro.core.instance import FragmentInstance
from repro.core.ops import Scan, Write
from repro.core.program.dag import TransferProgram
from repro.core.program.executor import ProgramExecutor
from repro.core.ops.base import Location
from repro.net.transport import SimulatedChannel
from repro.relational.frag_store import FragmentRelationMapper
from repro.relational.engine import Database
from repro.services.endpoint import InMemoryEndpoint
from repro.workloads.customer import fragment_customers
from repro.xmlkit.parser import iterparse


class TestExecutorFailures:
    def test_unconsumed_output_detected(self, customers_schema,
                                        customers_s,
                                        customer_documents):
        source = InMemoryEndpoint("s")
        feeds = fragment_customers(customer_documents, customers_s)
        source.put(feeds["Order"])
        program = TransferProgram()
        scan = program.add(Scan(customers_s.fragment("Order")))
        placement = {scan.op_id: Location.SOURCE}
        with pytest.raises(ProgramError, match="unconsumed"):
            ProgramExecutor(source, InMemoryEndpoint("t")).run(
                program, placement
            )

    def test_endpoint_failure_propagates(self, customers_s):
        empty_source = InMemoryEndpoint("empty")
        program = TransferProgram()
        fragment = customers_s.fragment("Order")
        scan = program.add(Scan(fragment))
        write = program.add(Write(fragment))
        program.connect(scan, 0, write, 0)
        placement = {
            scan.op_id: Location.SOURCE,
            write.op_id: Location.TARGET,
        }
        with pytest.raises(EndpointError):
            ProgramExecutor(
                empty_source, InMemoryEndpoint("t")
            ).run(program, placement)

    def test_write_only_target_channel_closed(self, customers_s,
                                              customer_documents):
        source = InMemoryEndpoint("s")
        feeds = fragment_customers(customer_documents, customers_s)
        source.put(feeds["Order"])
        program = TransferProgram()
        fragment = customers_s.fragment("Order")
        scan = program.add(Scan(fragment))
        write = program.add(Write(fragment))
        program.connect(scan, 0, write, 0)
        placement = {
            scan.op_id: Location.SOURCE,
            write.op_id: Location.TARGET,
        }
        channel = SimulatedChannel()
        channel.close()
        with pytest.raises(TransportError):
            ProgramExecutor(
                source, InMemoryEndpoint("t"), channel
            ).run(program, placement)


class TestTransportEdges:
    def test_document_after_close(self):
        channel = SimulatedChannel()
        channel.close()
        with pytest.raises(TransportError):
            channel.ship_document("x")


class TestXmlEdges:
    def test_doctype_after_root_rejected(self):
        with pytest.raises(XmlSyntaxError, match="DOCTYPE"):
            list(iterparse("<a/><!DOCTYPE a []>"))

    def test_cdata_outside_root_rejected(self):
        with pytest.raises(XmlSyntaxError, match="CDATA"):
            list(iterparse("<![CDATA[x]]><a/>"))

    def test_unterminated_doctype(self):
        with pytest.raises(XmlSyntaxError, match="DOCTYPE"):
            list(iterparse("<!DOCTYPE a [<!ELEMENT a (b)>"))

    def test_processing_instruction_between_elements(self):
        events = list(iterparse("<a><?target data?></a>"))
        assert any(
            getattr(event, "target", None) == "target"
            for event in events
        )

    def test_very_deep_nesting_parses(self):
        depth = 300
        text = (
            "".join(f"<e{i}>" for i in range(depth))
            + "x"
            + "".join(f"</e{i}>" for i in reversed(range(depth)))
        )
        events = list(iterparse(text))
        assert len(events) == 2 * depth + 1


class TestFragStoreEdges:
    def test_load_instance_foreign_fragment(self, auction_lf,
                                            customers_schema):
        db = Database("x")
        mapper = FragmentRelationMapper(auction_lf)
        mapper.create_tables(db)
        foreign = Fragment(customers_schema, ["Order"])
        with pytest.raises(RelationalError):
            mapper.load_instance(
                db, foreign, FragmentInstance(foreign)
            )

    def test_scan_empty_fragment_table(self, auction_lf):
        db = Database("x")
        mapper = FragmentRelationMapper(auction_lf)
        mapper.create_tables(db)
        instance = mapper.scan_fragment(
            db, auction_lf.fragment_of("item")
        )
        assert instance.row_count() == 0


class TestAgencyEdges:
    def test_duplicate_wsdl_registration(self, auction_schema,
                                         auction_lf):
        from repro.errors import NegotiationError
        from repro.services.agency import DiscoveryAgency

        agency = DiscoveryAgency(auction_schema)
        first = agency.register("a", auction_lf)
        with pytest.raises(NegotiationError):
            agency.register_wsdl("a", first.wsdl_text)
