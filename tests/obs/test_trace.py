"""The tracing core: spans, nesting, the null fast path, exporters."""

import io
import json
import threading
import time

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    chrome_trace_events,
    write_chrome_trace,
    write_jsonl_trace,
)


class TestRecord:
    def test_records_measured_seconds_verbatim(self):
        tracer = Tracer()
        start = time.perf_counter()
        span = tracer.record(
            "Scan(site)", "op", start=start, seconds=0.125,
            op_id=3, rows=42,
        )
        assert span.seconds == 0.125
        assert span.attrs == {"op_id": 3, "rows": 42}
        assert span.parent_id is None
        assert tracer.spans == [span]

    def test_default_start_is_now_minus_seconds(self):
        tracer = Tracer()
        span = tracer.record("late", "op", seconds=0.5)
        # The span ends roughly "now": start + seconds ~ current offset.
        now = time.perf_counter() - tracer._epoch
        assert span.start + span.seconds <= now + 0.05

    def test_ids_are_unique_and_increasing(self):
        tracer = Tracer()
        ids = [
            tracer.record(f"s{i}", "op").span_id for i in range(5)
        ]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_thread_safe_recording(self):
        tracer = Tracer()

        def burst():
            for _ in range(200):
                tracer.record("x", "op", seconds=0.0)

        threads = [threading.Thread(target=burst) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer.spans) == 800
        ids = [span.span_id for span in tracer.spans]
        assert len(set(ids)) == 800


class TestSpanContextManager:
    def test_measures_wall_time(self):
        tracer = Tracer()
        with tracer.span("step", "step"):
            time.sleep(0.01)
        (span,) = tracer.spans
        assert span.seconds >= 0.009
        assert span.category == "step"

    def test_nesting_sets_parent(self):
        tracer = Tracer()
        with tracer.span("outer", "step"):
            with tracer.span("inner", "step"):
                pass
        inner, outer = tracer.spans  # inner closes first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_record_inside_open_span_nests(self):
        tracer = Tracer()
        with tracer.span("run", "run"):
            child = tracer.record("op", "op", seconds=0.0)
        assert child.parent_id == tracer.spans[-1].span_id

    def test_nesting_is_per_thread(self):
        tracer = Tracer()
        seen = {}

        def worker():
            seen["span"] = tracer.record("other-thread", "op")

        with tracer.span("main-only", "step"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["span"].parent_id is None
        assert seen["span"].thread != "MainThread"

    def test_annotate_attaches_late_attributes(self):
        tracer = Tracer()
        with tracer.span("step", "step", fixed=1) as span:
            span.annotate(rows=7)
        assert tracer.spans[0].attrs == {"fixed": 1, "rows": 7}


class TestQueries:
    def test_spans_of_and_total_seconds(self):
        tracer = Tracer()
        tracer.record("a", "op", seconds=1.0)
        tracer.record("b", "ship", seconds=2.0)
        tracer.record("c", "op", seconds=4.0)
        assert [s.name for s in tracer.spans_of("op")] == ["a", "c"]
        assert tracer.total_seconds("op") == 5.0
        assert tracer.total_seconds() == 7.0


class TestNullTracer:
    def test_record_is_a_noop(self):
        tracer = NullTracer()
        assert tracer.record("x", "op", seconds=1.0) is None
        assert tracer.spans == []
        assert tracer.enabled is False

    def test_span_is_shared_noop_context(self):
        with NULL_TRACER.span("a", "step") as one:
            one.annotate(ignored=True)
        assert NULL_TRACER.span("b", "step") is one
        assert NULL_TRACER.spans == []

    def test_or_idiom_yields_null(self):
        assert (None or NULL_TRACER) is NULL_TRACER
        real = Tracer()
        assert (real or NULL_TRACER) is real


class TestExporters:
    def _traced(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("outer", "step"):
            tracer.record("op", "op", start=None, seconds=0.25,
                          op_id=1, rows=3)
        return tracer

    def test_jsonl_round_trips(self):
        tracer = self._traced()
        stream = io.StringIO()
        count = write_jsonl_trace(tracer, stream)
        lines = stream.getvalue().strip().splitlines()
        assert count == len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["cat"] == "op"
        assert records[0]["attrs"] == {"op_id": 1, "rows": 3}
        assert records[0]["parent"] == records[1]["id"]

    def test_jsonl_accepts_bare_span_iterable(self):
        spans = [Span("x", "op", 0.0, 1.0, 1)]
        stream = io.StringIO()
        assert write_jsonl_trace(spans, stream) == 1

    def test_chrome_events_shape(self):
        tracer = self._traced()
        document = chrome_trace_events(tracer)
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 2
        op = next(e for e in complete if e["cat"] == "op")
        assert op["dur"] == 250000.0  # 0.25 s in microseconds
        assert op["args"]["op_id"] == 1
        assert meta and meta[0]["name"] == "thread_name"
        assert document["displayTimeUnit"] == "ms"

    def test_chrome_file_loads_as_json(self):
        tracer = self._traced()
        stream = io.StringIO()
        count = write_chrome_trace(tracer, stream)
        assert count == 2
        document = json.loads(stream.getvalue())
        assert {e["ph"] for e in document["traceEvents"]} == {"X", "M"}

    def test_threads_get_distinct_tracks(self):
        tracer = Tracer()
        tracer.record("main", "op")

        def other():
            tracer.record("worker", "op")

        thread = threading.Thread(target=other, name="worker-1")
        thread.start()
        thread.join()
        events = chrome_trace_events(tracer)["traceEvents"]
        tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert len(tids) == 2
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "worker-1" in names
