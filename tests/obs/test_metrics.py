"""Counters, gauges, histograms, the registry, and the helpers."""

import threading
import time

import pytest

from repro.obs.metrics import (
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    observe_operation,
    observe_shipment,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.add()
        counter.add(5)
        assert counter.value == 6
        assert counter.snapshot() == {"type": "counter", "value": 6}

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").add(-1)

    def test_thread_safe(self):
        counter = Counter("c")

        def burst():
            for _ in range(1000):
                counter.add()

        threads = [threading.Thread(target=burst) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestGauge:
    def test_moves_both_ways_and_tracks_peak(self):
        gauge = Gauge("queue")
        gauge.add(3)
        gauge.add(2)
        gauge.add(-4)
        assert gauge.value == 1
        assert gauge.peak == 5
        gauge.set(0.5)
        assert gauge.snapshot()["peak"] == 5


class TestHistogram:
    def test_buckets_and_stats(self):
        histogram = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 55.5
        assert histogram.min == 0.5 and histogram.max == 50.0
        assert histogram.counts == [1, 1, 1]  # last is overflow
        assert histogram.mean == pytest.approx(18.5)

    def test_quantile_returns_bucket_bound(self):
        histogram = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 100.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_empty_histogram(self):
        histogram = Histogram("h")
        assert histogram.mean == 0.0
        assert histogram.quantile(0.5) == 0.0
        assert histogram.snapshot()["min"] == 0.0

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", bounds=())

    def test_snapshot_skips_empty_buckets(self):
        histogram = Histogram("h", bounds=(1.0, 10.0))
        histogram.observe(5.0)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == {"10.0": 1}
        assert snapshot["overflow"] == 0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            registry.gauge("x")

    def test_names_and_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("b").add(2)
        registry.gauge("a").set(1.5)
        assert registry.names() == ["a", "b"]
        snapshot = registry.snapshot()
        assert snapshot["b"]["value"] == 2

    def test_render_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("ship.messages").add(3)
        registry.gauge("parallel.inflight").set(2)
        registry.histogram("op.scan.seconds").observe(0.1)
        text = registry.render()
        assert "ship.messages" in text and "3" in text
        assert "parallel.inflight" in text
        assert "op.scan.seconds" in text and "n=1" in text


class TestHelpers:
    def test_observe_operation_populates_standard_names(self):
        registry = MetricsRegistry()
        observe_operation(registry, "scan", 0.25, 100)
        observe_operation(registry, "scan", 0.75, 50)
        assert registry.counter("op.scan.count").value == 2
        assert registry.counter("op.scan.rows").value == 150
        histogram = registry.histogram("op.scan.seconds")
        assert histogram.count == 2
        assert histogram.total == 1.0

    def test_observe_shipment_counts_bytes_and_batches(self):
        registry = MetricsRegistry()
        observe_shipment(registry, 1000, 0.1)
        observe_shipment(registry, 500, 0.2, batch=True)
        assert registry.counter("ship.messages").value == 2
        assert registry.counter("ship.bytes").value == 1500
        batches = registry.histogram("ship.batch_bytes", SIZE_BUCKETS)
        assert batches.count == 1

    def test_none_registry_is_noop(self):
        observe_operation(None, "scan", 0.1, 1)
        observe_shipment(None, 10, 0.1)


class TestTimer:
    def test_feeds_bound_histogram(self):
        registry = MetricsRegistry()
        with Timer(registry, "publish.seconds") as timer:
            time.sleep(0.005)
        assert timer.seconds >= 0.004
        histogram = registry.histogram("publish.seconds")
        assert histogram.count == 1
        assert histogram.total == timer.seconds

    def test_unbound_timer_just_measures(self):
        with Timer() as timer:
            pass
        assert timer.seconds >= 0.0

    def test_reporting_shim_is_the_same_class(self):
        from repro.reporting.timers import Timer as ShimTimer

        assert ShimTimer is Timer
