"""Cost-drift reporting and trace↔report reconciliation.

The acceptance scenario: a traced Figure 9 MF→MF run must yield (a) a
Chrome-loadable trace whose per-op span totals reconcile with the
execution report's accounted seconds, and (b) a drift report with a
predicted-vs-actual entry for every executed operation and every
cross-edge — on all three dataplanes.
"""

import io
import json

import pytest

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.core.mapping import derive_mapping
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import ProgramExecutor
from repro.core.program.parallel_executor import ParallelProgramExecutor
from repro.net.transport import SimulatedChannel
from repro.obs import (
    DriftReport,
    EdgeDrift,
    OpDrift,
    Tracer,
    chrome_trace_events,
    cost_drift_report,
    report_from_trace,
)
from repro.services.endpoint import RelationalEndpoint


def mf_to_mf(auction_mf, auction_document, executor_factory):
    """One traced MF→MF run; returns (program, placement, report,
    tracer)."""
    source = RelationalEndpoint("drift-src", auction_mf)
    source.load_document(auction_document)
    target = RelationalEndpoint("drift-tgt", auction_mf)
    program = build_transfer_program(
        derive_mapping(auction_mf, auction_mf)
    )
    placement = source_heavy_placement(program)
    tracer = Tracer()
    executor = executor_factory(source, target, tracer)
    report = executor.run(program, placement)
    return program, placement, report, tracer


@pytest.fixture(scope="module")
def traced_run(auction_mf, auction_document):
    return mf_to_mf(
        auction_mf, auction_document,
        lambda source, target, tracer: ProgramExecutor(
            source, target, SimulatedChannel(), tracer=tracer
        ),
    )


class TestTraceReconciliation:
    def test_every_op_has_exactly_one_span(self, traced_run):
        program, _, _, tracer = traced_run
        op_ids = [
            span.attrs["op_id"] for span in tracer.spans_of("op")
        ]
        assert sorted(op_ids) == sorted(
            node.op_id for node in program.nodes
        )

    def test_op_span_totals_match_report_seconds(self, traced_run):
        _, _, report, tracer = traced_run
        # record() stores the executor's own measured seconds, so the
        # totals agree exactly, not just approximately.
        assert tracer.total_seconds("op") == sum(
            timing.seconds for timing in report.op_timings
        )

    def test_ship_spans_cover_every_cross_edge(self, traced_run):
        program, placement, report, tracer = traced_run
        shipped = {
            (span.attrs["edge_op"], span.attrs["edge_port"])
            for span in tracer.spans_of("ship")
        }
        expected = {
            (edge.producer.op_id, edge.output_index)
            for edge in program.cross_edges(placement)
        }
        assert shipped == expected
        assert tracer.total_seconds("ship") == pytest.approx(
            report.comm_seconds
        )

    def test_chrome_trace_loads(self, traced_run):
        _, _, _, tracer = traced_run
        document = json.loads(json.dumps(chrome_trace_events(tracer)))
        complete = [
            event for event in document["traceEvents"]
            if event["ph"] == "X"
        ]
        assert complete
        assert all(event["dur"] >= 0 for event in complete)

    def test_report_from_trace_reconciles(self, traced_run):
        program, _, report, tracer = traced_run
        rebuilt = report_from_trace(program, tracer)
        assert len(rebuilt.op_timings) == len(report.op_timings)
        assert {
            timing.op_id: timing.seconds
            for timing in rebuilt.op_timings
        } == {
            timing.op_id: timing.seconds
            for timing in report.op_timings
        }
        assert rebuilt.comm_seconds == pytest.approx(
            report.comm_seconds
        )
        assert rebuilt.comm_bytes == report.comm_bytes
        assert rebuilt.shipment_seconds == pytest.approx(
            report.shipment_seconds
        )
        assert rebuilt.rows_written == report.rows_written


class TestDriftReport:
    @pytest.fixture(scope="class")
    def drift(self, traced_run, auction_schema, auction_document):
        program, placement, report, _ = traced_run
        probe = CostModel(StatisticsCatalog.from_document(
            auction_schema, auction_document
        ))
        return cost_drift_report(program, placement, report, probe)

    def test_entry_for_every_op_and_edge(self, drift, traced_run):
        program, placement, _, _ = traced_run
        assert len(drift.ops) == len(program.nodes)
        assert len(drift.edges) == len(
            program.cross_edges(placement)
        )

    def test_ratios_are_defined(self, drift):
        assert all(entry.ratio is not None for entry in drift.ops)
        assert all(edge.ratio is not None for edge in drift.edges)
        assert all(edge.bytes_sent > 0 for edge in drift.edges)

    def test_kind_ratios_cover_executed_kinds_plus_comm(self, drift):
        ratios = drift.kind_ratios()
        assert {"scan", "write", "comm"} <= set(ratios)
        assert all(ratio > 0 for ratio in ratios.values())

    def test_to_dict_and_render(self, drift):
        data = json.loads(json.dumps(drift.to_dict()))
        assert len(data["ops"]) == len(drift.ops)
        text = drift.render()
        assert "per-kind drift" in text
        assert "comm" in text

    def test_mismatched_report_raises(self, traced_run,
                                      auction_schema,
                                      auction_document):
        program, placement, _, _ = traced_run
        probe = CostModel(StatisticsCatalog.from_document(
            auction_schema, auction_document
        ))
        from repro.core.program.executor import ExecutionReport

        with pytest.raises(ValueError, match="no timing"):
            cost_drift_report(
                program, placement, ExecutionReport(), probe
            )


class TestDegenerateRatios:
    def test_zero_prediction_yields_none(self):
        entry = OpDrift(1, "x", "scan", None, 0.0, 0.5, 10)
        assert entry.ratio is None
        edge = EdgeDrift((1, 0), "f", float("inf"), 0.5, 10, 1)
        assert edge.ratio is None
        report = DriftReport(ops=[entry], edges=[edge])
        assert report.kind_ratios() == {}


class TestOtherDataplanes:
    """Span coverage must hold on the parallel and streaming paths."""

    def test_parallel_executor_trace_is_complete(self, auction_mf,
                                                 auction_document):
        program, placement, report, tracer = mf_to_mf(
            auction_mf, auction_document,
            lambda source, target, tracer: ParallelProgramExecutor(
                source, target, SimulatedChannel(), workers=4,
                tracer=tracer,
            ),
        )
        rebuilt = report_from_trace(program, tracer)
        assert len(rebuilt.op_timings) == len(program.nodes)
        assert tracer.total_seconds("op") == pytest.approx(sum(
            timing.seconds for timing in report.op_timings
        ))
        shipped = {
            (span.attrs["edge_op"], span.attrs["edge_port"])
            for span in tracer.spans_of("ship")
        }
        assert shipped == {
            (edge.producer.op_id, edge.output_index)
            for edge in program.cross_edges(placement)
        }

    def test_streaming_trace_records_batches(self, auction_mf,
                                             auction_document):
        program, placement, report, tracer = mf_to_mf(
            auction_mf, auction_document,
            lambda source, target, tracer: ProgramExecutor(
                source, target, SimulatedChannel(), batch_rows=16,
                tracer=tracer,
            ),
        )
        rebuilt = report_from_trace(program, tracer)
        assert len(rebuilt.op_timings) == len(program.nodes)
        batch_spans = tracer.spans_of("batch")
        assert batch_spans
        assert sum(
            report.shipment_batches.values()
        ) == len(batch_spans)
        assert rebuilt.shipment_batches == report.shipment_batches

    def test_no_tracer_records_nothing(self, auction_mf,
                                       auction_document):
        source = RelationalEndpoint("plain-src", auction_mf)
        source.load_document(auction_document)
        target = RelationalEndpoint("plain-tgt", auction_mf)
        program = build_transfer_program(
            derive_mapping(auction_mf, auction_mf)
        )
        executor = ProgramExecutor(source, target, SimulatedChannel())
        executor.run(program, source_heavy_placement(program))
        assert executor.tracer.spans == []
        assert executor.tracer.enabled is False
