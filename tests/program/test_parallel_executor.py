"""The DAG-scheduled parallel executor: determinism and reporting."""

import pytest

from repro.errors import EndpointError, ProgramError
from repro.core.mapping import derive_mapping
from repro.core.ops.base import Location
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.program.dag import Edge
from repro.core.program.executor import ProgramExecutor
from repro.core.program.parallel_executor import ParallelProgramExecutor
from repro.net.transport import NetworkProfile, SimulatedChannel
from repro.services.endpoint import InMemoryEndpoint
from repro.workloads.customer import fragment_customers
from repro.xmlkit.writer import serialize


@pytest.fixture
def setup(customers_s, customers_t, customer_documents):
    def make():
        source = InMemoryEndpoint("src")
        for instance in fragment_customers(
            customer_documents, customers_s
        ).values():
            source.put(instance)
        return source, InMemoryEndpoint("tgt")

    def build():
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        return program, source_heavy_placement(program)

    return make, build


def _written_documents(target: InMemoryEndpoint) -> dict[str, list[str]]:
    return {
        name: sorted(
            serialize(doc) for doc in instance.to_xml_documents()
        )
        for name, instance in target.store.items()
    }


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_sequential_output(self, setup, workers):
        """Written rows are identical to the sequential executor's for
        every worker count."""
        make, build = setup
        program, placement = build()
        source, sequential_target = make()
        ProgramExecutor(source, sequential_target).run(
            program, placement
        )
        expected = _written_documents(sequential_target)

        source, parallel_target = make()
        ParallelProgramExecutor(
            source, parallel_target, workers=workers
        ).run(program, placement)
        assert _written_documents(parallel_target) == expected

    def test_repeated_runs_stable(self, setup):
        make, build = setup
        program, placement = build()
        results = []
        for _ in range(3):
            source, target = make()
            ParallelProgramExecutor(source, target, workers=4).run(
                program, placement
            )
            results.append(_written_documents(target))
        assert results[0] == results[1] == results[2]


class TestReport:
    @pytest.fixture
    def reports(self, setup):
        make, build = setup
        program, placement = build()
        source, target = make()
        sequential = ProgramExecutor(source, target).run(
            program, placement
        )
        source, target = make()
        parallel = ParallelProgramExecutor(
            source, target, workers=4
        ).run(program, placement)
        return program, placement, sequential, parallel

    def test_compatible_with_sequential(self, reports):
        program, placement, sequential, parallel = reports
        assert len(parallel.op_timings) == len(program.nodes)
        assert parallel.rows_written == sequential.rows_written
        assert parallel.shipments == len(program.cross_edges(placement))
        assert parallel.comm_bytes == sequential.comm_bytes
        assert set(parallel.shipment_bytes) == \
            set(sequential.shipment_bytes)

    def test_comp_attribution_by_location(self, reports):
        _, _, _, parallel = reports
        total = sum(timing.seconds for timing in parallel.op_timings)
        attributed = (
            parallel.comp_seconds[Location.SOURCE]
            + parallel.comp_seconds[Location.TARGET]
        )
        assert attributed == pytest.approx(total)

    def test_wall_and_critical_path(self, reports):
        _, _, sequential, parallel = reports
        assert parallel.wall_seconds > 0.0
        assert sequential.wall_seconds > 0.0
        # The longest chain cannot exceed the run's own summed
        # attribution (it is the same times, minus the parallel slack).
        assert parallel.critical_path_seconds <= \
            parallel.total_seconds + 1e-9
        assert sequential.critical_path_seconds <= \
            sequential.total_seconds + 1e-9
        assert parallel.critical_path_seconds > 0.0

    def test_realtime_channel_overlaps(self, setup):
        """With a sleeping channel, the parallel wall clock beats the
        serialized comm+comp total."""
        make, build = setup
        program, placement = build()
        profile = NetworkProfile(
            "slow", bandwidth_bytes_per_second=200_000.0,
            latency_seconds=0.001,
        )
        source, target = make()
        report = ParallelProgramExecutor(
            source, target,
            SimulatedChannel(profile, realtime=True), workers=4,
        ).run(program, placement)
        serialized = (
            report.comp_seconds[Location.SOURCE]
            + report.comp_seconds[Location.TARGET]
            + report.comm_seconds
        )
        assert report.comm_seconds > 0.0
        assert report.wall_seconds < serialized


class TestErrors:
    def test_bad_workers_rejected(self, setup):
        make, _ = setup
        source, target = make()
        with pytest.raises(ValueError):
            ParallelProgramExecutor(source, target, workers=0)

    def test_operation_failure_propagates(self, setup):
        make, build = setup
        program, placement = build()
        source, target = make()
        source.store.clear()  # every Scan now raises EndpointError
        with pytest.raises(EndpointError):
            ParallelProgramExecutor(source, target, workers=4).run(
                program, placement
            )


class TestMissingValueMessages:
    """The executor distinguishes never-produced from doubly-consumed
    values instead of blaming everything on double consumption."""

    def test_never_produced_message(self, setup, customers_s,
                                    customers_t):
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        scan = program.scans()[0]
        write = program.writes()[0]
        # Rig an edge from an output port the Scan never fills; bypass
        # connect(), which would reject the out-of-range port, and
        # validate(), which the rig deliberately breaks.
        phantom = Edge(scan, 7, write, 0)
        program._in_edges[write.op_id][:] = [phantom]
        program.validate = lambda: None
        make, _ = setup
        source, target = make()
        with pytest.raises(ProgramError, match="never produced"):
            ProgramExecutor(source, target).run(
                program, source_heavy_placement(program)
            )

    def test_consumed_twice_message(self, setup, customers_s,
                                    customers_t):
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        scan = program.scans()[0]
        first = next(
            edge for edge in program.edges if edge.producer is scan
        )
        other_write = next(
            write for write in program.writes()
            if write is not first.consumer
        )
        # A second consumer of the same output port; registered on both
        # endpoints so the topological order still resolves.
        double = Edge(scan, first.output_index, other_write, 0)
        program._in_edges[other_write.op_id].append(double)
        program._out_edges[scan.op_id].append(double)
        program.validate = lambda: None
        make, _ = setup
        source, target = make()
        with pytest.raises(ProgramError, match="consumed twice"):
            ProgramExecutor(source, target).run(
                program, source_heavy_placement(program)
            )
