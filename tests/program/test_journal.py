"""The exchange journal: acknowledgements survive a process death."""

import json
import threading

import pytest

from repro.core.program.journal import ExchangeJournal, write_key


class TestExchangeJournal:
    def test_in_memory_defaults(self):
        journal = ExchangeJournal()
        assert journal.begin_run() == 0
        assert journal.resume_count == 0
        assert journal.acked_through("0:F") == -1
        assert not journal.write_done("0:F")

    def test_batch_high_water(self):
        journal = ExchangeJournal()
        journal.ack_batch("0:F", 0)
        journal.ack_batch("0:F", 2)
        journal.ack_batch("0:F", 1)  # late duplicate ack
        assert journal.acked_through("0:F") == 2
        assert journal.acked_through("1:G") == -1

    def test_write_acknowledgement(self):
        journal = ExchangeJournal()
        journal.ack_write("3:F")
        assert journal.write_done("3:F")
        assert not journal.write_done("4:G")

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with ExchangeJournal(path) as journal:
            assert journal.begin_run() == 0
            journal.ack_batch("0:F", 0)
            journal.ack_batch("0:F", 1)
            journal.ack_write("1:G")
        # A fresh process reads the same state back.
        with ExchangeJournal(path) as resumed:
            assert resumed.acked_through("0:F") == 1
            assert resumed.write_done("1:G")
            assert resumed.begin_run() == 1
            assert resumed.resume_count == 1
        with ExchangeJournal(path) as third:
            assert third.begin_run() == 2

    def test_records_are_json_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with ExchangeJournal(path) as journal:
            journal.begin_run()
            journal.ack_batch("0:F", 7)
            journal.ack_write("0:F")
        events = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert [event["event"] for event in events] \
            == ["run", "batch", "write"]
        assert events[1]["seq"] == 7

    def test_concurrent_acks(self, tmp_path):
        journal = ExchangeJournal(tmp_path / "journal.jsonl")
        threads = [
            threading.Thread(
                target=lambda base=base: [
                    journal.ack_batch("0:F", base + i)
                    for i in range(50)
                ],
            )
            for base in (0, 50, 100)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert journal.acked_through("0:F") == 149
        journal.close()

    def test_write_key_is_stable(self):
        assert write_key(4, "Order") == "4:Order"


class TestTornJournal:
    """A record torn mid-write by a kill must not poison the resume —
    that crash is exactly what the journal exists to survive."""

    def test_torn_final_line_is_tolerated_and_truncated(
            self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with ExchangeJournal(path) as journal:
            journal.begin_run()
            journal.ack_batch("0:F", 0)
            journal.ack_write("1:G")
        good = path.read_text()
        path.write_text(good + '{"event": "batch", "wri')
        with ExchangeJournal(path) as resumed:
            assert resumed.acked_through("0:F") == 0
            assert resumed.write_done("1:G")
            assert resumed.begin_run() == 1
        # The torn tail was truncated before appending resumed, so a
        # third open parses every line cleanly.
        with ExchangeJournal(path) as third:
            assert third.resume_count == 1
        assert all(
            json.loads(line)
            for line in path.read_text().splitlines()
        )

    def test_garbage_only_journal_starts_fresh(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"event": "ru')
        with ExchangeJournal(path) as journal:
            assert journal.begin_run() == 0
            assert journal.last_sync_version() == 0


class TestSyncHighWater:
    """The delta high-water record: advanced only by completed runs,
    and it closes the run's acknowledgement slate."""

    def test_sync_version_monotone(self):
        journal = ExchangeJournal()
        assert journal.last_sync_version() == 0
        journal.record_sync(4)
        journal.record_sync(2)  # stale sync never regresses the mark
        assert journal.last_sync_version() == 4

    def test_sync_clears_acknowledgements(self):
        journal = ExchangeJournal()
        journal.begin_run()
        journal.ack_batch("0:F", 3)
        journal.ack_write("1:G")
        journal.record_sync(7)
        # The next exchange through this journal starts clean: stale
        # acks from the completed run must not skip its writes.
        assert journal.acked_through("0:F") == -1
        assert not journal.write_done("1:G")
        assert journal.begin_run() == 0

    def test_sync_survives_reopen_and_clears_on_load(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with ExchangeJournal(path) as journal:
            journal.begin_run()
            journal.ack_write("1:G")
            journal.record_sync(5)
            journal.begin_run()
            journal.ack_batch("0:F", 2)
        with ExchangeJournal(path) as resumed:
            assert resumed.last_sync_version() == 5
            # Acks before the sync are gone; the unfinished run after
            # it is still resumable.
            assert not resumed.write_done("1:G")
            assert resumed.acked_through("0:F") == 2
            assert resumed.begin_run() == 1

    def test_torn_sync_record_does_not_advance(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with ExchangeJournal(path) as journal:
            journal.begin_run()
            journal.ack_write("1:G")
        good = path.read_text()
        path.write_text(good + '{"event": "sync", "versi')
        with ExchangeJournal(path) as resumed:
            assert resumed.last_sync_version() == 0
            assert resumed.write_done("1:G")


class TestJournalledExecutors:
    """A journalled rerun skips acknowledged writes entirely."""

    @pytest.fixture
    def scenario(self, auction_mf, auction_lf, auction_document):
        from repro.core.mapping import derive_mapping
        from repro.core.optimizer.placement import (
            source_heavy_placement,
        )
        from repro.core.program.builder import build_transfer_program
        from repro.services.endpoint import RelationalEndpoint

        source = RelationalEndpoint("S", auction_mf)
        source.load_document(auction_document)
        program = build_transfer_program(
            derive_mapping(auction_mf, auction_lf)
        )
        return source, program, source_heavy_placement(program)

    @pytest.mark.parametrize("batch_rows", [None, 5])
    def test_second_run_ships_nothing(self, scenario, auction_lf,
                                      batch_rows):
        from repro.core.program.executor import ProgramExecutor
        from repro.net.transport import SimulatedChannel
        from repro.services.endpoint import RelationalEndpoint

        source, program, placement = scenario
        journal = ExchangeJournal()
        target = RelationalEndpoint("T", auction_lf)
        channel = SimulatedChannel()
        first = ProgramExecutor(
            source, target, channel, batch_rows=batch_rows,
            journal=journal,
        ).run(program, placement)
        assert first.resume_count == 0
        shipped_first = channel.messages
        assert shipped_first > 0

        channel.reset()
        second = ProgramExecutor(
            source, target, channel, batch_rows=batch_rows,
            journal=journal,
        ).run(program, placement)
        assert second.resume_count == 1
        assert channel.messages == 0
        assert second.rows_written == 0
