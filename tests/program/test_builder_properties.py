"""Property-based tests of program generation on random inputs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import derive_mapping
from repro.core.program.builder import (
    ProgramBuilder,
    enumerate_transfer_programs,
)
from repro.schema.generator import random_schema
from repro.sim.random_fragmentation import random_fragmentation


@st.composite
def mappings(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=12))
    schema = random_schema(
        n_nodes, seed=draw(st.integers(0, 9999)), repeat_prob=0.4
    )
    rng = random.Random(draw(st.integers(0, 9999)))
    source = random_fragmentation(
        schema, n_fragments=draw(st.integers(1, n_nodes)), rng=rng,
        name="S",
    )
    target = random_fragmentation(
        schema, n_fragments=draw(st.integers(1, n_nodes)), rng=rng,
        name="T",
    )
    return derive_mapping(source, target)


@settings(max_examples=60, deadline=None)
@given(mappings())
def test_every_enumerated_program_validates(mapping):
    for program in enumerate_transfer_programs(mapping, limit=8):
        program.validate()
        # Exactly one Scan per source fragment, one Write per target.
        assert len(program.scans()) == len(mapping.source.fragments)
        assert len(program.writes()) == len(mapping.target.fragments)


@settings(max_examples=60, deadline=None)
@given(mappings())
def test_programs_conserve_elements(mapping):
    """The fragments flowing into each Write carry exactly the target
    fragment's elements; scans carry exactly the source's."""
    builder = ProgramBuilder(mapping)
    program = builder.build()
    for write in program.writes():
        (edge,) = program.in_edges(write)
        assert edge.fragment.elements == write.fragment.elements
    scanned = set()
    for scan in program.scans():
        assert not (scanned & scan.fragment.elements)
        scanned |= scan.fragment.elements
    assert scanned == set(mapping.source.schema.element_names())


@settings(max_examples=40, deadline=None)
@given(mappings())
def test_split_outputs_are_connected_fragments(mapping):
    """Split pieces are valid fragments by construction — the mapping's
    per-pair contributions are always connected subtrees."""
    program = ProgramBuilder(mapping).build()
    for node in program.nodes:
        if node.kind != "split":
            continue
        for piece in node.outputs:
            schema = piece.schema
            assert schema.is_connected(piece.elements)
            assert schema.top_of(piece.elements) == piece.root_name


@settings(max_examples=40, deadline=None)
@given(mappings())
def test_identity_mappings_have_no_processing(mapping):
    if any(not entry.is_identity for entry in mapping.entries):
        return  # only exercise the all-identity case here
    program = ProgramBuilder(mapping).build()
    assert all(
        node.kind in ("scan", "write") for node in program.nodes
    )
