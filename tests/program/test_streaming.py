"""The streaming dataplane: byte-identity, bounded memory, accounting."""

import pytest

from repro.errors import OperationError
from repro.core.mapping import derive_mapping
from repro.core.ops.combine import Combine
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import ProgramExecutor
from repro.core.program.parallel_executor import ParallelProgramExecutor
from repro.core.stream import FragmentStream
from repro.net.transport import NetworkProfile, SimulatedChannel
from repro.services.endpoint import InMemoryEndpoint, RelationalEndpoint
from repro.workloads.customer import fragment_customers
from repro.xmlkit.writer import serialize


@pytest.fixture
def setup(customers_s, customers_t, customer_documents):
    def make():
        source = InMemoryEndpoint("src")
        for instance in fragment_customers(
            customer_documents, customers_s
        ).values():
            source.put(instance)
        return source, InMemoryEndpoint("tgt")

    def build():
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        return program, source_heavy_placement(program)

    return make, build


def _written_documents(target: InMemoryEndpoint) -> dict[str, list[str]]:
    return {
        name: sorted(
            serialize(doc) for doc in instance.to_xml_documents()
        )
        for name, instance in target.store.items()
    }


class TestByteIdentity:
    """Concatenated batches must write exactly what the materialized
    dataplane writes, for every batch size and both executors."""

    @pytest.mark.parametrize("batch_rows", [1, 64])
    def test_sequential_matches_materialized(self, setup, batch_rows):
        make, build = setup
        program, placement = build()
        source, materialized_target = make()
        ProgramExecutor(source, materialized_target).run(
            program, placement
        )
        expected = _written_documents(materialized_target)

        source, streaming_target = make()
        ProgramExecutor(
            source, streaming_target, batch_rows=batch_rows
        ).run(program, placement)
        assert _written_documents(streaming_target) == expected

    @pytest.mark.parametrize("batch_rows", [1, 64])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_matches_materialized(self, setup, batch_rows,
                                           workers):
        make, build = setup
        program, placement = build()
        source, materialized_target = make()
        ProgramExecutor(source, materialized_target).run(
            program, placement
        )
        expected = _written_documents(materialized_target)

        source, streaming_target = make()
        ParallelProgramExecutor(
            source, streaming_target, workers=workers,
            batch_rows=batch_rows,
        ).run(program, placement)
        assert _written_documents(streaming_target) == expected

    def test_reverse_direction(self, customers_s, customers_t,
                               customer_documents):
        """T -> S exercises the other op mix (splits feeding writes)."""
        program = build_transfer_program(
            derive_mapping(customers_t, customers_s)
        )
        placement = source_heavy_placement(program)

        def make():
            source = InMemoryEndpoint("src")
            for instance in fragment_customers(
                customer_documents, customers_t
            ).values():
                source.put(instance)
            return source, InMemoryEndpoint("tgt")

        source, materialized_target = make()
        ProgramExecutor(source, materialized_target).run(
            program, placement
        )
        source, streaming_target = make()
        ProgramExecutor(source, streaming_target, batch_rows=2).run(
            program, placement
        )
        assert _written_documents(streaming_target) == \
            _written_documents(materialized_target)

    def test_repeated_streaming_runs_stable(self, setup):
        make, build = setup
        program, placement = build()
        results = []
        for _ in range(3):
            source, target = make()
            ParallelProgramExecutor(
                source, target, workers=4, batch_rows=8
            ).run(program, placement)
            results.append(_written_documents(target))
        assert results[0] == results[1] == results[2]


class TestReport:
    @pytest.fixture
    def reports(self, setup):
        make, build = setup
        program, placement = build()
        source, target = make()
        materialized = ProgramExecutor(source, target).run(
            program, placement
        )
        source, target = make()
        streaming = ProgramExecutor(
            source, target, batch_rows=4
        ).run(program, placement)
        return program, placement, materialized, streaming

    def test_shipment_accounting(self, reports):
        program, placement, materialized, streaming = reports
        cross = len(program.cross_edges(placement))
        assert streaming.shipments == cross
        assert streaming.shipments == materialized.shipments
        # Every cross-edge shipped at least one chunk, and the chunk
        # counts are only recorded by the streaming dataplane.
        assert set(streaming.shipment_batches) == \
            set(streaming.shipment_bytes)
        assert all(
            count >= 1 for count in streaming.shipment_batches.values()
        )
        assert materialized.shipment_batches == {}
        assert sum(streaming.shipment_bytes.values()) == \
            streaming.comm_bytes

    def test_rows_written_and_timings(self, reports):
        program, _, materialized, streaming = reports
        assert streaming.rows_written == materialized.rows_written
        assert len(streaming.op_timings) == len(program.nodes)
        assert streaming.batch_rows == 4
        assert materialized.batch_rows is None

    def test_peak_residency_is_reported_and_bounded(self, reports):
        _, _, materialized, streaming = reports
        assert materialized.peak_resident_rows > 0
        assert streaming.peak_resident_rows > 0
        assert streaming.peak_resident_rows <= \
            materialized.peak_resident_rows


class TestBoundedMemory:
    def test_streaming_peak_strictly_lower(self, auction_mf,
                                           auction_document):
        """On the Scan->Write-per-fragment program (Figure 9's MF->MF)
        the streaming peak is the batch frontier, not the largest
        fragment feed."""
        source = RelationalEndpoint("S", auction_mf)
        source.load_document(auction_document)
        program = build_transfer_program(
            derive_mapping(auction_mf, auction_mf)
        )
        placement = source_heavy_placement(program)

        target = RelationalEndpoint("T1", auction_mf)
        materialized = ProgramExecutor(source, target).run(
            program, placement
        )
        target = RelationalEndpoint("T2", auction_mf)
        streaming = ProgramExecutor(source, target, batch_rows=8).run(
            program, placement
        )
        assert 0 < streaming.peak_resident_rows < \
            materialized.peak_resident_rows
        assert 0 < streaming.peak_resident_bytes < \
            materialized.peak_resident_bytes

    def test_streaming_writes_same_rows(self, auction_mf,
                                        auction_document):
        source = RelationalEndpoint("S", auction_mf)
        source.load_document(auction_document)
        program = build_transfer_program(
            derive_mapping(auction_mf, auction_mf)
        )
        placement = source_heavy_placement(program)
        target = RelationalEndpoint("T", auction_mf)
        report = ProgramExecutor(source, target, batch_rows=8).run(
            program, placement
        )
        assert target.total_rows() == source.total_rows()
        assert report.rows_written == target.total_rows()


class TestChannelInteraction:
    def test_wire_format_streaming_round_trips(self, setup):
        make, build = setup
        program, placement = build()
        source, materialized_target = make()
        ProgramExecutor(
            source, materialized_target, SimulatedChannel()
        ).run(program, placement)
        source, streaming_target = make()
        ProgramExecutor(
            source, streaming_target,
            SimulatedChannel(wire_format=True), batch_rows=3,
        ).run(program, placement)
        assert _written_documents(streaming_target) == \
            _written_documents(materialized_target)

    def test_parallel_streaming_overlaps_realtime_channel(self, setup):
        """With a sleeping channel the pipelined wall clock beats the
        fully serialized comp+comm total."""
        make, build = setup
        program, placement = build()
        profile = NetworkProfile(
            "slow", bandwidth_bytes_per_second=200_000.0,
            latency_seconds=0.0,
        )
        source, target = make()
        report = ParallelProgramExecutor(
            source, target,
            SimulatedChannel(profile, realtime=True),
            workers=4, batch_rows=4,
        ).run(program, placement)
        serialized = (
            report.source_seconds + report.target_seconds
            + report.comm_seconds
        )
        assert report.comm_seconds > 0.0
        assert report.wall_seconds < serialized


class TestErrors:
    def test_bad_batch_rows_rejected(self, setup):
        make, _ = setup
        source, target = make()
        with pytest.raises(ValueError, match="batch_rows"):
            ProgramExecutor(source, target, batch_rows=0)
        with pytest.raises(ValueError, match="batch_rows"):
            ParallelProgramExecutor(source, target, batch_rows=-1)

    def test_scan_failure_propagates(self, setup):
        from repro.errors import EndpointError

        make, build = setup
        program, placement = build()
        source, target = make()
        source.store.clear()
        with pytest.raises(EndpointError):
            ProgramExecutor(source, target, batch_rows=4).run(
                program, placement
            )
        source, target = make()
        source.store.clear()
        with pytest.raises(EndpointError):
            ParallelProgramExecutor(
                source, target, workers=4, batch_rows=4
            ).run(program, placement)


class TestCombineOrphanParity:
    """The streaming grouped merge reports orphans with the same error
    as the materialized combine."""

    @pytest.fixture
    def instances(self, customers_t, customer_documents):
        feeds = fragment_customers(customer_documents, customers_t)
        return (
            customers_t.fragment("Line_Switch"),
            customers_t.fragment("Feature"),
            feeds["Line_Switch"],
            feeds["Feature"],
        )

    def test_identical_messages(self, instances):
        parent_fragment, child_fragment, parent, child = instances
        op = Combine(parent_fragment, child_fragment)

        empty_parent = parent.copy()
        empty_parent.rows.clear()
        with pytest.raises(OperationError) as materialized_error:
            op.apply(empty_parent, child.copy())

        empty_parent = parent.copy()
        empty_parent.rows.clear()
        with pytest.raises(OperationError) as streaming_error:
            list(op.apply_batches(
                FragmentStream.from_instance(empty_parent, 2),
                FragmentStream.from_instance(child.copy(), 2),
            ))
        assert str(streaming_error.value) == \
            str(materialized_error.value)

    def test_streaming_combine_matches_apply(self, instances):
        parent_fragment, child_fragment, parent, child = instances
        op = Combine(parent_fragment, child_fragment)
        expected = op.apply(parent.copy(), child.copy())
        streamed_batches = list(op.apply_batches(
            FragmentStream.from_instance(parent, 2, copy_rows=True),
            FragmentStream.from_instance(child, 2, copy_rows=True),
        ))
        streamed_rows = [
            row for batch in streamed_batches for row in batch.rows
        ]
        schema = parent_fragment.schema
        assert [
            serialize(row.data.to_xml(schema)) for row in streamed_rows
        ] == [
            serialize(row.data.to_xml(schema)) for row in expected.rows
        ]
