"""Parallel execution estimation (the Section 5.2 opportunity)."""

import pytest

from repro.core.fragment import Fragment
from repro.core.mapping import derive_mapping
from repro.core.ops.scan import Scan
from repro.core.ops.split import Split
from repro.core.ops.write import Write
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.program.dag import TransferProgram
from repro.core.program.executor import ProgramExecutor
from repro.core.program.parallel import (
    partition_expressions,
    simulate_parallel_makespan,
)
from repro.services.endpoint import InMemoryEndpoint
from repro.workloads.customer import fragment_customers


class TestPartitionExpressions:
    def test_identity_program_fully_parallel(self, customers_t):
        program = build_transfer_program(
            derive_mapping(customers_t, customers_t)
        )
        groups = partition_expressions(program)
        # One Scan -> Write pair per target fragment.
        assert len(groups) == len(customers_t)
        assert all(len(group) == 2 for group in groups)

    def test_shared_split_merges_expressions(self, customers_s,
                                             customers_t):
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        groups = partition_expressions(program)
        # Customer is independent; Order_Service is independent;
        # Line_Switch and Feature share the Split -> one group.
        assert len(groups) == 3
        sizes = sorted(len(group) for group in groups)
        assert sizes == [2, 4, 6]

    def test_split_feeding_two_writes_merges_groups(
            self, customers_schema):
        """A Split fanning out to several Writes is one group, while an
        unrelated Scan -> Write ladder stays its own group."""
        line_all = Fragment(
            customers_schema,
            ["Line", "TelNo", "Switch", "SwitchID", "Feature",
             "FeatureID"],
            "Line_All",
        )
        line_switch = Fragment(
            customers_schema,
            ["Line", "TelNo", "Switch", "SwitchID"], "Line_Switch",
        )
        feature = Fragment(
            customers_schema, ["Feature", "FeatureID"], "Feature"
        )
        customer = Fragment(
            customers_schema, ["Customer", "CustName"], "Customer"
        )
        program = TransferProgram()
        scan = program.add(Scan(line_all))
        split = program.add(Split(line_all, [line_switch, feature]))
        write_ls = program.add(Write(line_switch))
        write_f = program.add(Write(feature))
        program.connect(scan, 0, split, 0)
        program.connect(split, 0, write_ls, 0)
        program.connect(split, 1, write_f, 0)
        ladder_scan = program.add(Scan(customer))
        ladder_write = program.add(Write(customer))
        program.connect(ladder_scan, 0, ladder_write, 0)

        groups = partition_expressions(program)
        assert sorted(len(group) for group in groups) == [2, 4]
        merged = next(g for g in groups if len(g) == 4)
        assert {node.op_id for node in merged} == {
            scan.op_id, split.op_id, write_ls.op_id, write_f.op_id
        }

    def test_scan_write_ladders_stay_separate(self, customers_schema):
        """Pure Scan -> Write ladders never merge: one group per pair."""
        fragments = [
            Fragment(customers_schema, ["Customer", "CustName"],
                     "Customer"),
            Fragment(customers_schema, ["Switch", "SwitchID"], "Switch"),
            Fragment(customers_schema, ["Feature", "FeatureID"],
                     "Feature"),
        ]
        program = TransferProgram()
        for fragment in fragments:
            scan = program.add(Scan(fragment))
            write = program.add(Write(fragment))
            program.connect(scan, 0, write, 0)
        groups = partition_expressions(program)
        assert len(groups) == len(fragments)
        assert all(len(group) == 2 for group in groups)

    def test_groups_cover_all_nodes(self, auction_mf, auction_lf):
        program = build_transfer_program(
            derive_mapping(auction_mf, auction_lf)
        )
        groups = partition_expressions(program)
        covered = {
            node.op_id for group in groups for node in group
        }
        assert covered == {node.op_id for node in program.nodes}


class TestMakespan:
    @pytest.fixture
    def run(self, customers_s, customers_t, customer_documents):
        source = InMemoryEndpoint("s")
        for instance in fragment_customers(
            customer_documents, customers_s
        ).values():
            source.put(instance)
        target = InMemoryEndpoint("t")
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        placement = source_heavy_placement(program)
        report = ProgramExecutor(source, target).run(
            program, placement
        )
        return program, placement, report

    def test_speedup_at_least_one(self, run):
        program, placement, report = run
        estimate = simulate_parallel_makespan(
            program, placement, report, workers=4
        )
        assert estimate.speedup >= 1.0
        assert estimate.groups == 3
        assert estimate.parallel_seconds <= \
            estimate.sequential_seconds + 1e-12

    def test_single_worker_is_sequential(self, run):
        program, placement, report = run
        estimate = simulate_parallel_makespan(
            program, placement, report, workers=1
        )
        assert estimate.parallel_seconds == pytest.approx(
            estimate.sequential_seconds
        )

    def test_more_workers_never_slower(self, run):
        program, placement, report = run
        previous = None
        for workers in (1, 2, 4, 8):
            estimate = simulate_parallel_makespan(
                program, placement, report, workers=workers
            )
            if previous is not None:
                assert estimate.parallel_seconds <= previous + 1e-12
            previous = estimate.parallel_seconds

    def test_comm_attributed_by_shipped_bytes(self, run):
        """Communication time follows the bytes each cross-edge
        actually shipped, not the number of cross-edges."""
        program, placement, report = run
        report.comm_seconds = 10.0
        cross = program.cross_edges(placement)
        assert len(cross) > 1
        keys = [
            (edge.producer.op_id, edge.output_index) for edge in cross
        ]
        # All bytes on one edge: its group absorbs all 10 seconds.
        report.shipment_bytes = {key: 0 for key in keys}
        report.shipment_bytes[keys[0]] = 1_000
        concentrated = simulate_parallel_makespan(
            program, placement, report, workers=8
        )
        # No byte accounting: fall back to uniform per-edge weights.
        report.shipment_bytes = {}
        uniform = simulate_parallel_makespan(
            program, placement, report, workers=8
        )
        assert concentrated.parallel_seconds >= 10.0
        assert uniform.parallel_seconds < concentrated.parallel_seconds

    def test_bad_workers_rejected(self, run):
        program, placement, report = run
        with pytest.raises(ValueError):
            simulate_parallel_makespan(
                program, placement, report, workers=0
            )

    def test_comm_overlap_credits_pipelining(self, run):
        """Full intra-edge overlap hides min(compute, comm) per group,
        so a comm-heavy run gets strictly faster."""
        program, placement, report = run
        report.comm_seconds = 10.0
        base = simulate_parallel_makespan(
            program, placement, report, workers=4
        )
        overlapped = simulate_parallel_makespan(
            program, placement, report, workers=4, comm_overlap=1.0
        )
        assert overlapped.parallel_seconds < base.parallel_seconds
        partial = simulate_parallel_makespan(
            program, placement, report, workers=4, comm_overlap=0.5
        )
        assert overlapped.parallel_seconds <= partial.parallel_seconds
        assert partial.parallel_seconds <= base.parallel_seconds

    def test_bad_comm_overlap_rejected(self, run):
        program, placement, report = run
        for bad in (-0.1, 1.5):
            with pytest.raises(ValueError):
                simulate_parallel_makespan(
                    program, placement, report, workers=4,
                    comm_overlap=bad,
                )
