"""Parallel execution estimation (the Section 5.2 opportunity)."""

import pytest

from repro.core.mapping import derive_mapping
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import ProgramExecutor
from repro.core.program.parallel import (
    partition_expressions,
    simulate_parallel_makespan,
)
from repro.services.endpoint import InMemoryEndpoint
from repro.workloads.customer import fragment_customers


class TestPartitionExpressions:
    def test_identity_program_fully_parallel(self, customers_t):
        program = build_transfer_program(
            derive_mapping(customers_t, customers_t)
        )
        groups = partition_expressions(program)
        # One Scan -> Write pair per target fragment.
        assert len(groups) == len(customers_t)
        assert all(len(group) == 2 for group in groups)

    def test_shared_split_merges_expressions(self, customers_s,
                                             customers_t):
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        groups = partition_expressions(program)
        # Customer is independent; Order_Service is independent;
        # Line_Switch and Feature share the Split -> one group.
        assert len(groups) == 3
        sizes = sorted(len(group) for group in groups)
        assert sizes == [2, 4, 6]

    def test_groups_cover_all_nodes(self, auction_mf, auction_lf):
        program = build_transfer_program(
            derive_mapping(auction_mf, auction_lf)
        )
        groups = partition_expressions(program)
        covered = {
            node.op_id for group in groups for node in group
        }
        assert covered == {node.op_id for node in program.nodes}


class TestMakespan:
    @pytest.fixture
    def run(self, customers_s, customers_t, customer_documents):
        source = InMemoryEndpoint("s")
        for instance in fragment_customers(
            customer_documents, customers_s
        ).values():
            source.put(instance)
        target = InMemoryEndpoint("t")
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        placement = source_heavy_placement(program)
        report = ProgramExecutor(source, target).run(
            program, placement
        )
        return program, placement, report

    def test_speedup_at_least_one(self, run):
        program, placement, report = run
        estimate = simulate_parallel_makespan(
            program, placement, report, workers=4
        )
        assert estimate.speedup >= 1.0
        assert estimate.groups == 3
        assert estimate.parallel_seconds <= \
            estimate.sequential_seconds + 1e-12

    def test_single_worker_is_sequential(self, run):
        program, placement, report = run
        estimate = simulate_parallel_makespan(
            program, placement, report, workers=1
        )
        assert estimate.parallel_seconds == pytest.approx(
            estimate.sequential_seconds
        )

    def test_more_workers_never_slower(self, run):
        program, placement, report = run
        previous = None
        for workers in (1, 2, 4, 8):
            estimate = simulate_parallel_makespan(
                program, placement, report, workers=workers
            )
            if previous is not None:
                assert estimate.parallel_seconds <= previous + 1e-12
            previous = estimate.parallel_seconds

    def test_bad_workers_rejected(self, run):
        program, placement, report = run
        with pytest.raises(ValueError):
            simulate_parallel_makespan(
                program, placement, report, workers=0
            )
