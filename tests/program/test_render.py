"""Program rendering (text and DOT)."""

from repro.core.mapping import derive_mapping
from repro.core.ops.base import Location
from repro.core.program.builder import build_transfer_program
from repro.core.program.render import summary, to_dot, to_text


class TestToText:
    def test_every_edge_rendered(self, customers_s, customers_t):
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        text = to_text(program)
        assert len(text.splitlines()) == len(program.edges)

    def test_location_annotations(self, customers_s, customers_t):
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        for node in program.nodes:
            node.location = (
                Location.TARGET if node.kind == "write"
                else Location.SOURCE
            )
        text = to_text(program)
        assert "@S" in text and "@T" in text

    def test_isolated_nodes_rendered(self, customers_t):
        # Identity programs: scan -> write pairs only, still all edges.
        program = build_transfer_program(
            derive_mapping(customers_t, customers_t)
        )
        text = to_text(program)
        assert "Scan(Customer)" in text
        assert "Write(Customer)" in text


class TestToDot:
    def test_dot_structure(self, customers_s, customers_t):
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        for node in program.nodes:
            node.location = (
                Location.TARGET if node.kind == "write"
                else Location.SOURCE
            )
        dot = to_dot(program)
        assert dot.startswith("digraph")
        assert dot.count("->") == len(program.edges)
        assert 'style=dashed, label="ship"' in dot


class TestSummary:
    def test_counts(self, customers_s, customers_t):
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        assert summary(program) == "scan=5 combine=2 split=1 write=4"
