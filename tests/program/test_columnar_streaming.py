"""The columnar dataplane end to end: byte-identity, join strategies,
orphan accounting and the size-memoization guard."""

import random

import pytest

from repro.errors import OperationError
from repro.core.columnar import ColumnBatch
from repro.core.fragment import Fragment
from repro.core.instance import ElementData, FragmentInstance, FragmentRow
from repro.core.mapping import derive_mapping
from repro.core.ops.combine import Combine
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import ProgramExecutor
from repro.core.program.parallel_executor import ParallelProgramExecutor
from repro.net.transport import SimulatedChannel
from repro.obs.metrics import MetricsRegistry
from repro.services.endpoint import RelationalEndpoint
from repro.xmlkit.writer import serialize


def _docs(fragment, rows):
    """Rows as exchanged XML documents (ID/PARENT exposed)."""
    return [
        serialize(row.data.to_xml(
            fragment.schema, expose=(row.parent,)
        ))
        for row in rows
    ]


@pytest.fixture(scope="module")
def mf_source(auction_mf, auction_document):
    endpoint = RelationalEndpoint("col-src", auction_mf)
    endpoint.load_document(auction_document)
    return endpoint


@pytest.fixture(scope="module")
def mf_to_lf(auction_mf, auction_lf):
    program = build_transfer_program(
        derive_mapping(auction_mf, auction_lf)
    )
    return program, source_heavy_placement(program)


@pytest.fixture(scope="module")
def lf_to_mf(auction_mf, auction_lf, auction_document):
    source = RelationalEndpoint("col-src-lf", auction_lf)
    source.load_document(auction_document)
    program = build_transfer_program(
        derive_mapping(auction_lf, auction_mf)
    )
    return source, program, source_heavy_placement(program)


def _table_dump(endpoint):
    return {
        layout.table_name: sorted(
            endpoint.db.table(layout.table_name).scan(), key=repr
        )
        for layout in endpoint.mapper.layouts.values()
    }


def _row_reference(mf_source, mf_to_lf, auction_lf):
    program, placement = mf_to_lf
    target = RelationalEndpoint("row-ref", auction_lf)
    ProgramExecutor(
        mf_source, target, SimulatedChannel(), batch_rows=64
    ).run(program, placement)
    return _table_dump(target)


class TestByteIdentity:
    """The columnar dataplane must write byte-identical tables for
    every batch size and both pinned join strategies (satellite 3)."""

    @pytest.mark.parametrize("batch_rows", [1, 7, 64, 10 ** 9])
    def test_combine_heavy_exchange(self, mf_source, mf_to_lf,
                                    auction_lf, batch_rows):
        program, placement = mf_to_lf
        expected = _row_reference(mf_source, mf_to_lf, auction_lf)
        target = RelationalEndpoint(
            f"col-tgt-{batch_rows}", auction_lf
        )
        report = ProgramExecutor(
            mf_source, target, SimulatedChannel(),
            batch_rows=batch_rows, columnar=True,
        ).run(program, placement)
        assert _table_dump(target) == expected
        assert report.rows_written > 0

    @pytest.mark.parametrize("join_strategy", ["hash", "merge"])
    @pytest.mark.parametrize("batch_rows", [1, 7, 64, 10 ** 9])
    def test_forced_strategies(self, mf_source, mf_to_lf, auction_lf,
                               join_strategy, batch_rows):
        program, placement = mf_to_lf
        expected = _row_reference(mf_source, mf_to_lf, auction_lf)
        target = RelationalEndpoint(
            f"col-{join_strategy}-{batch_rows}", auction_lf
        )
        ProgramExecutor(
            mf_source, target, SimulatedChannel(),
            batch_rows=batch_rows, columnar=True,
            join_strategy=join_strategy,
        ).run(program, placement)
        assert _table_dump(target) == expected

    def test_split_heavy_exchange(self, lf_to_mf, auction_mf):
        source, program, placement = lf_to_mf
        row_target = RelationalEndpoint("row-mf", auction_mf)
        ProgramExecutor(
            source, row_target, SimulatedChannel(), batch_rows=16
        ).run(program, placement)
        columnar_target = RelationalEndpoint("col-mf", auction_mf)
        ProgramExecutor(
            source, columnar_target, SimulatedChannel(),
            batch_rows=16, columnar=True,
        ).run(program, placement)
        assert _table_dump(columnar_target) == _table_dump(row_target)

    def test_parallel_columnar_matches(self, mf_source, mf_to_lf,
                                       auction_lf):
        program, placement = mf_to_lf
        expected = _row_reference(mf_source, mf_to_lf, auction_lf)
        target = RelationalEndpoint("col-par", auction_lf)
        ParallelProgramExecutor(
            mf_source, target, SimulatedChannel(), workers=4,
            batch_rows=32, columnar=True,
        ).run(program, placement)
        assert _table_dump(target) == expected


class TestStrategySelection:
    """Document-order feeds must auto-select the merge join, shuffled
    feeds the hash join (satellite 3)."""

    def test_sorted_feeds_select_merge(self, mf_source, mf_to_lf,
                                       auction_lf):
        program, placement = mf_to_lf
        metrics = MetricsRegistry()
        target = RelationalEndpoint("col-merge-sel", auction_lf)
        report = ProgramExecutor(
            mf_source, target, SimulatedChannel(),
            batch_rows=64, columnar=True, metrics=metrics,
        ).run(program, placement)
        combines = sum(
            1 for node in program.nodes if node.kind == "combine"
        )
        assert combines == 21  # the Figure 9 MF->LF shape
        assert metrics.counter("join.strategy.merge").value == combines
        assert metrics.counter("join.build_rows").value > 0
        assert metrics.counter("join.probe_rows").value > 0
        strategies = {
            timing.strategy for timing in report.op_timings
            if timing.kind == "combine"
        }
        assert strategies == {"merge"}

    def test_non_combine_ops_report_columnar(self, mf_source, mf_to_lf,
                                             auction_lf):
        program, placement = mf_to_lf
        target = RelationalEndpoint("col-strat", auction_lf)
        report = ProgramExecutor(
            mf_source, target, SimulatedChannel(),
            batch_rows=64, columnar=True,
        ).run(program, placement)
        for timing in report.op_timings:
            if timing.kind in ("scan", "write"):
                assert timing.strategy == "columnar"

    def test_row_dataplane_reports_row(self, mf_source, mf_to_lf,
                                       auction_lf):
        program, placement = mf_to_lf
        target = RelationalEndpoint("row-strat", auction_lf)
        report = ProgramExecutor(
            mf_source, target, SimulatedChannel(), batch_rows=64
        ).run(program, placement)
        assert {t.strategy for t in report.op_timings} == {"row"}


def _service_combine(schema):
    order = Fragment(schema, ["Order"], "Order")
    service = Fragment(
        schema, ["Service", "ServiceName"], "Service"
    )
    return Combine(order, service), order, service


def _order_row(eid, parent):
    return FragmentRow(ElementData("Order", eid), parent)


def _service_row(eid, parent, name="local"):
    data = ElementData("Service", eid)
    data.add_child(ElementData("ServiceName", eid + 1, {}, name))
    return FragmentRow(data, parent)


class TestJoinUnit:
    """apply_column_batches against the materialized combine."""

    @pytest.fixture
    def parts(self, customers_schema):
        combine, order, service = _service_combine(customers_schema)
        parents = [_order_row(eid, 1) for eid in (10, 20, 30, 40)]
        children = [
            _service_row(100 + 10 * index, eid, f"svc-{eid}")
            for index, eid in enumerate((10, 20, 30, 40))
        ]
        return combine, order, service, parents, children

    @staticmethod
    def _run(combine, order, service, parents, children,
             batch_rows=2, observe=None, force=None):
        def batches(fragment, rows):
            return (
                ColumnBatch.from_rows(
                    fragment, rows[start:start + batch_rows], seq
                )
                for seq, start in enumerate(
                    range(0, len(rows), batch_rows)
                )
            )

        out = list(combine.apply_column_batches(
            batches(order, parents), batches(service, children),
            observe=observe, force=force,
        ))
        return _docs(
            combine.result,
            [row for batch in out for row in batch.rows],
        )

    @staticmethod
    def _materialized(combine, order, service, parents, children):
        result = combine.apply(
            FragmentInstance(order, parents).copy(),
            FragmentInstance(service, children).copy(),
        )
        return _docs(combine.result, result.rows)

    def test_sorted_children_use_merge(self, parts):
        combine, order, service, parents, children = parts
        observed = []
        got = self._run(combine, order, service, parents, children,
                        observe=lambda *args: observed.append(args))
        assert got == self._materialized(
            combine, order, service, parents, children
        )
        assert observed == [("merge", 4, 4)]

    def test_shuffled_children_use_hash(self, parts):
        combine, order, service, parents, children = parts
        shuffled = list(children)
        random.Random(5).shuffle(shuffled)
        assert [r.parent for r in shuffled] != \
            [r.parent for r in children]
        observed = []
        got = self._run(combine, order, service, parents, shuffled,
                        observe=lambda *args: observed.append(args))
        assert got == self._materialized(
            combine, order, service, parents, children
        )
        assert observed == [("hash", 4, 4)]

    def test_forced_merge_over_shuffled_children(self, parts):
        combine, order, service, parents, children = parts
        shuffled = list(children)
        random.Random(5).shuffle(shuffled)
        observed = []
        got = self._run(combine, order, service, parents, shuffled,
                        observe=lambda *args: observed.append(args),
                        force="merge")
        assert got == self._materialized(
            combine, order, service, parents, children
        )
        assert observed == [("merge", 4, 4)]

    def test_unknown_strategy_rejected(self, parts):
        combine, order, service, parents, children = parts
        with pytest.raises(OperationError, match="join strategy"):
            self._run(combine, order, service, parents, children,
                      force="nested-loop")


class TestOrphanAccounting:
    """Orphaned PARENT keys must be listed, identically across the
    materialized, row-streaming and columnar paths (satellite 1)."""

    @pytest.fixture
    def orphans(self, customers_schema):
        combine, order, service = _service_combine(customers_schema)
        parents = [_order_row(10, 1), _order_row(20, 1)]
        children = [
            _service_row(100, 10),
            _service_row(110, 777),   # no Order 777 exists
            _service_row(120, 999),   # nor 999
        ]
        return combine, order, service, parents, children

    def test_columnar_lists_orphan_keys(self, orphans):
        combine, order, service, parents, children = orphans
        with pytest.raises(OperationError) as failure:
            TestJoinUnit._run(
                combine, order, service, parents, children
            )
        message = str(failure.value)
        assert "777" in message and "999" in message
        assert "missing parents" in message

    def test_matches_materialized_message(self, orphans):
        combine, order, service, parents, children = orphans
        with pytest.raises(OperationError) as materialized:
            combine.apply(
                FragmentInstance(order, parents).copy(),
                FragmentInstance(service, children).copy(),
            )
        with pytest.raises(OperationError) as columnar:
            TestJoinUnit._run(
                combine, order, service, parents, children
            )
        assert str(columnar.value) == str(materialized.value)

    def test_row_streaming_matches_too(self, orphans):
        combine, order, service, parents, children = orphans
        from repro.core.stream import FragmentStream

        with pytest.raises(OperationError) as columnar:
            TestJoinUnit._run(
                combine, order, service, parents, children
            )
        with pytest.raises(OperationError) as streaming:
            list(combine.apply_batches(
                FragmentStream.from_instance(
                    FragmentInstance(order, parents).copy(), 2
                ),
                FragmentStream.from_instance(
                    FragmentInstance(service, children).copy(), 2
                ),
            ))
        assert str(streaming.value) == str(columnar.value)

    def test_null_parent_distinct_from_negative_eid(
            self, customers_schema):
        # Regression: the columnar build side normalized PARENT=None to
        # a -1 sentinel, so a NULL-parent orphan was indistinguishable
        # from (and collided with) an orphan referencing a real eid -1.
        combine, order, service = _service_combine(customers_schema)
        parents = [_order_row(10, 1)]
        children = [
            _service_row(100, 10),
            _service_row(110, None),
            _service_row(120, -1),
        ]
        with pytest.raises(OperationError) as columnar:
            TestJoinUnit._run(
                combine, order, service, parents, children
            )
        message = str(columnar.value)
        assert "None" in message and "-1" in message
        with pytest.raises(OperationError) as materialized:
            combine.apply(
                FragmentInstance(order, parents).copy(),
                FragmentInstance(service, children).copy(),
            )
        assert message == str(materialized.value)

    def test_many_orphans_truncate(self, customers_schema):
        combine, order, service = _service_combine(customers_schema)
        parents = [_order_row(10, 1)]
        children = [_service_row(100, 10)] + [
            _service_row(200 + 10 * index, 1000 + index)
            for index in range(15)
        ]
        with pytest.raises(OperationError) as failure:
            TestJoinUnit._run(
                combine, order, service, parents, children
            )
        message = str(failure.value)
        assert "15 orphaned PARENT key(s)" in message
        assert "... (5 more)" in message


class TestSizeMemoization:
    """RowBatch memoizes its size sums: repeated metering of one batch
    must not re-walk the rows (satellite 2)."""

    def test_estimated_size_computed_once(self, customers_schema,
                                          monkeypatch):
        import repro.core.stream as stream_module
        from repro.core.stream import RowBatch

        rows = [_order_row(eid, 1) for eid in (10, 20, 30)]
        fragment = Fragment(customers_schema, ["Order"], "Order")
        calls = {"n": 0}
        real = stream_module.row_estimated_size

        def counting(row):
            calls["n"] += 1
            return real(row)

        monkeypatch.setattr(
            stream_module, "row_estimated_size", counting
        )
        batch = RowBatch(fragment, rows, 0)
        first = batch.estimated_size()
        second = batch.estimated_size()
        assert first == second
        assert calls["n"] == len(rows)  # one walk, not two

    def test_feed_size_computed_once(self, customers_schema,
                                     monkeypatch):
        import repro.core.stream as stream_module
        from repro.core.stream import RowBatch

        rows = [_order_row(eid, 1) for eid in (10, 20)]
        fragment = Fragment(customers_schema, ["Order"], "Order")
        calls = {"n": 0}
        real = stream_module.row_feed_size

        def counting(row):
            calls["n"] += 1
            return real(row)

        monkeypatch.setattr(stream_module, "row_feed_size", counting)
        batch = RowBatch(fragment, rows, 0)
        assert batch.feed_size() == batch.feed_size()
        assert calls["n"] == len(rows)

    def test_columnar_batches_memoize_too(self, customers_schema):
        fragment = Fragment(customers_schema, ["Order"], "Order")
        batch = ColumnBatch.from_rows(
            fragment, [_order_row(10, 1)], 0
        )
        assert batch.estimated_size() is batch.estimated_size()
        assert batch.feed_size() is batch.feed_size()
