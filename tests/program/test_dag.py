"""The transfer-program DAG: structure, validation, placements."""

import pytest

from repro.errors import PlacementError, ProgramError
from repro.core.fragment import Fragment
from repro.core.ops import Combine, Location, Scan, Write
from repro.core.program.dag import TransferProgram


@pytest.fixture
def simple_program(customers_schema):
    order = Fragment(customers_schema, ["Order"])
    service = Fragment(customers_schema, ["Service", "ServiceName"])
    program = TransferProgram()
    scan_order = program.add(Scan(order))
    scan_service = program.add(Scan(service))
    combine = program.add(Combine(order, service))
    write = program.add(Write(combine.result))
    program.connect(scan_order, 0, combine, 0)
    program.connect(scan_service, 0, combine, 1)
    program.connect(combine, 0, write, 0)
    return program, scan_order, scan_service, combine, write


class TestStructure:
    def test_validate_passes(self, simple_program):
        program = simple_program[0]
        program.validate()

    def test_topological_order(self, simple_program):
        program, scan_order, scan_service, combine, write = \
            simple_program
        order = program.topological_order()
        positions = {node.op_id: i for i, node in enumerate(order)}
        assert positions[scan_order.op_id] < positions[combine.op_id]
        assert positions[scan_service.op_id] < positions[combine.op_id]
        assert positions[combine.op_id] < positions[write.op_id]

    def test_in_out_edges(self, simple_program):
        program, _, _, combine, write = simple_program
        assert len(program.in_edges(combine)) == 2
        assert program.consumers(combine) == [write]
        assert len(program.producers(combine)) == 2

    def test_closures(self, simple_program):
        program, scan_order, scan_service, combine, write = \
            simple_program
        up = program.upstream_closure(write)
        assert up == {scan_order.op_id, scan_service.op_id,
                      combine.op_id}
        down = program.downstream_closure(scan_order)
        assert down == {combine.op_id, write.op_id}

    def test_fragment_mismatch_rejected(self, customers_schema):
        program = TransferProgram()
        scan = program.add(
            Scan(Fragment(customers_schema, ["Order"]))
        )
        write = program.add(
            Write(Fragment(customers_schema, ["Customer", "CustName"]))
        )
        with pytest.raises(ProgramError, match="mismatch"):
            program.connect(scan, 0, write, 0)

    def test_double_connect_rejected(self, simple_program):
        program, scan_order, _, combine, _ = simple_program
        with pytest.raises(ProgramError):
            program.connect(scan_order, 0, combine, 0)

    def test_foreign_node_rejected(self, simple_program,
                                   customers_schema):
        program = simple_program[0]
        foreign = Scan(Fragment(customers_schema, ["Order"]))
        with pytest.raises(ProgramError):
            program.connect(foreign, 0, simple_program[3], 0)

    def test_bad_port_rejected(self, simple_program):
        program, scan_order, _, combine, _ = simple_program
        with pytest.raises(ProgramError):
            program.connect(scan_order, 3, combine, 0)

    def test_dangling_input_detected(self, customers_schema):
        program = TransferProgram()
        order = Fragment(customers_schema, ["Order"])
        program.add(Write(order))
        with pytest.raises(ProgramError, match="unconnected"):
            program.validate()

    def test_scan_with_input_rejected(self, customers_schema):
        program = TransferProgram()
        order = Fragment(customers_schema, ["Order"])
        scan_a = program.add(Scan(order))
        scan_b = program.add(Scan(order))
        program.connect(scan_a, 0, scan_b, 0)
        with pytest.raises(ProgramError):
            program.validate()

    def test_iter_expressions_groups_by_write(self, simple_program):
        program = simple_program[0]
        expressions = list(program.iter_expressions())
        assert len(expressions) == 1
        assert expressions[0][-1].kind == "write"
        assert len(expressions[0]) == 4


class TestPlacement:
    def _full(self, simple_program, combine_at):
        program, scan_order, scan_service, combine, write = \
            simple_program
        return {
            scan_order.op_id: Location.SOURCE,
            scan_service.op_id: Location.SOURCE,
            combine.op_id: combine_at,
            write.op_id: Location.TARGET,
        }

    def test_valid_placements(self, simple_program):
        program = simple_program[0]
        for location in (Location.SOURCE, Location.TARGET):
            program.validate_placement(
                self._full(simple_program, location)
            )

    def test_cross_edges(self, simple_program):
        program = simple_program[0]
        placement = self._full(simple_program, Location.SOURCE)
        crosses = program.cross_edges(placement)
        assert len(crosses) == 1
        assert crosses[0].consumer.kind == "write"

    def test_missing_assignment_rejected(self, simple_program):
        program, scan_order, *_ = simple_program
        with pytest.raises(PlacementError, match="unassigned"):
            program.validate_placement({scan_order.op_id:
                                        Location.SOURCE})

    def test_scan_must_be_at_source(self, simple_program):
        program = simple_program[0]
        placement = self._full(simple_program, Location.TARGET)
        placement[simple_program[1].op_id] = Location.TARGET
        with pytest.raises(PlacementError):
            program.validate_placement(placement)

    def test_write_must_be_at_target(self, simple_program):
        program = simple_program[0]
        placement = self._full(simple_program, Location.SOURCE)
        placement[simple_program[4].op_id] = Location.SOURCE
        with pytest.raises(PlacementError):
            program.validate_placement(placement)

    def test_no_backward_shipping(self, simple_program,
                                  customers_schema):
        # combine at T feeding... build a T->S situation artificially:
        program, scan_order, scan_service, combine, write = \
            simple_program
        placement = self._full(simple_program, Location.TARGET)
        # Move a scan's consumer to S while the producer sits at T is
        # impossible here; instead verify T-combine -> T-write is fine
        program.validate_placement(placement)

    def test_apply_and_collect(self, simple_program):
        program = simple_program[0]
        placement = self._full(simple_program, Location.SOURCE)
        program.apply_placement(placement)
        assert program.placement_from_nodes() == placement
