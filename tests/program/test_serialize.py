"""Program serialization (agency -> endpoints assignment)."""

import pytest

from repro.errors import PlacementError, ProgramError
from repro.core.mapping import derive_mapping
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.program.render import summary, to_text
from repro.core.program.serialize import (
    program_from_dict,
    program_from_json,
    program_to_dict,
    program_to_json,
)


@pytest.fixture
def placed_program(customers_s, customers_t):
    program = build_transfer_program(
        derive_mapping(customers_s, customers_t)
    )
    return program, source_heavy_placement(program)


class TestRoundTrip:
    def test_structure_survives(self, placed_program,
                                customers_schema):
        program, placement = placed_program
        text = program_to_json(program, placement)
        rebuilt, rebuilt_placement = program_from_json(
            text, customers_schema
        )
        assert summary(rebuilt) == summary(program)
        assert to_text(rebuilt) == to_text(program)
        assert rebuilt_placement is not None
        rebuilt.validate_placement(rebuilt_placement)
        # Same locations, matched positionally.
        original = [
            placement[node.op_id] for node in program.nodes
        ]
        loaded = [
            rebuilt_placement[node.op_id] for node in rebuilt.nodes
        ]
        assert loaded == original

    def test_without_placement(self, placed_program,
                               customers_schema):
        program, _ = placed_program
        rebuilt, rebuilt_placement = program_from_dict(
            program_to_dict(program), customers_schema
        )
        assert rebuilt_placement is None
        assert summary(rebuilt) == summary(program)

    def test_xmark_program_round_trip(self, auction_mf, auction_lf,
                                      auction_schema):
        program = build_transfer_program(
            derive_mapping(auction_mf, auction_lf)
        )
        rebuilt, _ = program_from_json(
            program_to_json(program), auction_schema
        )
        assert summary(rebuilt) == \
            "scan=24 combine=21 split=0 write=3"

    def test_rebuilt_program_executes(self, placed_program,
                                      customers_schema, customers_s,
                                      customers_t, customer_documents):
        from repro.core.program.executor import ProgramExecutor
        from repro.services.endpoint import InMemoryEndpoint
        from repro.workloads.customer import fragment_customers

        program, placement = placed_program
        rebuilt, rebuilt_placement = program_from_json(
            program_to_json(program, placement), customers_schema
        )
        source = InMemoryEndpoint("s")
        for instance in fragment_customers(
            customer_documents, customers_s
        ).values():
            source.put(instance)
        target = InMemoryEndpoint("t")
        ProgramExecutor(source, target).run(
            rebuilt, rebuilt_placement
        )
        assert set(target.store) == {
            fragment.name for fragment in customers_t
        }


class TestValidation:
    def test_version_checked(self, customers_schema):
        with pytest.raises(ProgramError, match="version"):
            program_from_dict(
                {"version": 99, "nodes": [], "edges": []},
                customers_schema,
            )

    def test_unknown_kind_rejected(self, customers_schema):
        with pytest.raises(ProgramError, match="kind"):
            program_from_dict(
                {
                    "version": 1,
                    "nodes": [{"kind": "teleport"}],
                    "edges": [],
                },
                customers_schema,
            )

    def test_illegal_placement_rejected(self, placed_program,
                                        customers_schema):
        program, placement = placed_program
        data = program_to_dict(program, placement)
        for entry in data["nodes"]:
            if entry["kind"] == "write":
                entry["location"] = "S"  # writes must run at T
        with pytest.raises(PlacementError):
            program_from_dict(data, customers_schema)

    def test_tampered_fragment_rejected(self, placed_program,
                                        customers_schema):
        program, _ = placed_program
        data = program_to_dict(program)
        for entry in data["nodes"]:
            if entry["kind"] == "scan":
                entry["fragment"]["elements"] = ["CustName", "Order"]
                break
        with pytest.raises(Exception):
            program_from_dict(data, customers_schema)
