"""Program generation (Section 4.2): G1 construction, combine orders."""

import pytest

from repro.core.fragmentation import Fragmentation
from repro.core.mapping import derive_mapping
from repro.core.program.builder import (
    ProgramBuilder,
    build_transfer_program,
    enumerate_transfer_programs,
)
from repro.core.program.render import summary, to_text


class TestCustomerPrograms:
    """The motivating example: S → T is exactly Figure 5."""

    def test_figure5_shape(self, customers_s, customers_t):
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        assert summary(program) == "scan=5 combine=2 split=1 write=4"
        text = to_text(program)
        assert "Scan(Line_Feature) --> Split(Line_Feature)" in text
        assert "Combine(Order, Service)" in text
        assert "Scan(Customer) --> Write(Customer)" in text

    def test_publishing_figure3_shape(self, customers_schema,
                                      customers_s):
        # Publishing = transfer from S to the whole-document
        # fragmentation: all combines, no splits (Figure 3).
        whole = Fragmentation.whole_document(customers_schema)
        program = build_transfer_program(
            derive_mapping(customers_s, whole)
        )
        assert summary(program) == "scan=5 combine=4 split=0 write=1"

    def test_loading_figure4_shape(self, customers_schema, customers_t):
        # Loading = whole document to T: one scan, one split per level
        # collapsed into a single multi-output split here, writes only.
        whole = Fragmentation.whole_document(customers_schema)
        program = build_transfer_program(
            derive_mapping(whole, customers_t)
        )
        assert summary(program) == "scan=1 combine=0 split=1 write=4"

    def test_identity_program(self, customers_t):
        program = build_transfer_program(
            derive_mapping(customers_t, customers_t)
        )
        assert summary(program) == "scan=4 combine=0 split=0 write=4"


class TestXmarkPrograms:
    def test_mf_to_lf_all_combines(self, auction_mf, auction_lf):
        program = build_transfer_program(
            derive_mapping(auction_mf, auction_lf)
        )
        assert summary(program) == "scan=24 combine=21 split=0 write=3"

    def test_lf_to_mf_mirror_with_splits(self, auction_mf, auction_lf):
        # "The program for LF -> MF is a mirrored image where each
        # group of Combines is replaced with a Split" (Section 5.2).
        program = build_transfer_program(
            derive_mapping(auction_lf, auction_mf)
        )
        assert summary(program) == "scan=3 combine=0 split=3 write=24"

    def test_all_programs_validate(self, auction_mf, auction_lf):
        for mapping in (
            derive_mapping(auction_mf, auction_lf),
            derive_mapping(auction_lf, auction_mf),
            derive_mapping(auction_mf, auction_mf),
            derive_mapping(auction_lf, auction_lf),
        ):
            build_transfer_program(mapping).validate()


class TestEnumeration:
    def test_customer_exchange_has_single_order(self, customers_s,
                                                 customers_t):
        # Both assemblies are two-piece (Order+Service, Line+Switch):
        # exactly one combine order each, so one program total.
        mapping = derive_mapping(customers_s, customers_t)
        programs = list(enumerate_transfer_programs(mapping, limit=50))
        assert len(programs) == 1

    def test_enumerates_distinct_orders(self, auction_mf, auction_lf):
        mapping = derive_mapping(auction_mf, auction_lf)
        programs = list(enumerate_transfer_programs(mapping, limit=8))
        assert len(programs) == 8
        shapes = {to_text(program) for program in programs}
        assert len(shapes) == len(programs)

    def test_limit_respected(self, auction_mf, auction_lf):
        mapping = derive_mapping(auction_mf, auction_lf)
        programs = list(enumerate_transfer_programs(mapping, limit=5))
        assert len(programs) == 5

    def test_identity_mapping_single_program(self, customers_t):
        mapping = derive_mapping(customers_t, customers_t)
        programs = list(enumerate_transfer_programs(mapping, limit=10))
        assert len(programs) == 1

    def test_merge_orders_respect_schema(self, customers_s,
                                         customers_t):
        # Order_Service assembly has exactly one merge order (two
        # pieces, only Order can absorb Service).
        mapping = derive_mapping(customers_s, customers_t)
        builder = ProgramBuilder(mapping)
        _, assemblies = builder.skeleton()
        by_target = {
            assembly.target.name: assembly for assembly in assemblies
        }
        orders = list(
            builder.all_merge_orders(
                by_target["Order_Service"].fragments
            )
        )
        assert len(orders) == 1

    def test_three_piece_chain_has_orders(self, customers_schema):
        # Customer <- Order <- Service chain: two distinct merge shapes
        # ((C+O)+S and C+(O+S)).
        from repro.core.fragment import Fragment
        builder = ProgramBuilder(
            derive_mapping(
                Fragmentation.most_fragmented(customers_schema),
                Fragmentation.most_fragmented(customers_schema),
            )
        )
        pieces = [
            Fragment(customers_schema, ["Customer", "CustName"]),
            Fragment(customers_schema, ["Order"]),
            Fragment(customers_schema, ["Service", "ServiceName"]),
        ]
        orders = list(builder.all_merge_orders(pieces))
        assert len(orders) == 2


class TestPolicyOrdering:
    def test_policy_is_consulted(self, auction_mf, auction_lf):
        mapping = derive_mapping(auction_mf, auction_lf)
        calls = []

        def first_possible(items):
            calls.append(len(items))
            for parent_index, parent in items:
                for child_index, child in items:
                    if parent_index != child_index and \
                            parent.can_combine(child):
                        return parent_index, child_index
            raise AssertionError("no combinable pair")

        program = build_transfer_program(mapping, policy=first_possible)
        program.validate()
        assert summary(program) == "scan=24 combine=21 split=0 write=3"
        assert calls  # the policy drove the ordering
