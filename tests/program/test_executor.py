"""Program execution against endpoints."""

import pytest

from repro.errors import PlacementError
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.mapping import derive_mapping
from repro.core.ops.base import Location
from repro.core.optimizer.placement import initial_placement
from repro.core.optimizer.greedy import greedy_placement
from repro.core.cost.model import CostModel
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import ProgramExecutor
from repro.services.endpoint import InMemoryEndpoint
from repro.workloads.customer import fragment_customers
from repro.xmlkit.writer import serialize


@pytest.fixture
def exchange_setup(customers_schema, customers_s, customers_t,
                   customer_documents):
    source = InMemoryEndpoint("src")
    for instance in fragment_customers(
        customer_documents, customers_s
    ).values():
        source.put(instance)
    target = InMemoryEndpoint("tgt")
    program = build_transfer_program(
        derive_mapping(customers_s, customers_t)
    )
    model = CostModel(StatisticsCatalog.synthetic(customers_schema))
    placement = greedy_placement(program, model)
    return source, target, program, placement


class TestExecution:
    def test_all_targets_written(self, exchange_setup, customers_t):
        source, target, program, placement = exchange_setup
        ProgramExecutor(source, target).run(program, placement)
        assert set(target.store) == {
            fragment.name for fragment in customers_t
        }

    def test_report_metrics(self, exchange_setup):
        source, target, program, placement = exchange_setup
        report = ProgramExecutor(source, target).run(program, placement)
        assert report.rows_written > 0
        assert len(report.op_timings) == len(program.nodes)
        assert report.total_seconds >= 0
        assert report.seconds_for_kind("scan") >= 0

    def test_content_equals_direct_split(
            self, exchange_setup, customers_t, customer_documents):
        source, target, program, placement = exchange_setup
        ProgramExecutor(source, target).run(program, placement)
        expected = fragment_customers(customer_documents, customers_t)
        for name, instance in expected.items():
            got = target.store[name]
            got_docs = sorted(
                serialize(doc) for doc in got.to_xml_documents()
            )
            want_docs = sorted(
                serialize(doc) for doc in instance.to_xml_documents()
            )
            assert got_docs == want_docs, name

    def test_placement_must_be_total(self, exchange_setup):
        source, target, program, _ = exchange_setup
        with pytest.raises(PlacementError):
            ProgramExecutor(source, target).run(
                program, initial_placement(program)
            )

    def test_placement_from_nodes_default(self, exchange_setup):
        source, target, program, placement = exchange_setup
        program.apply_placement(placement)
        report = ProgramExecutor(source, target).run(program)
        assert report.rows_written > 0

    def test_comm_accounting_with_default_channel(self, exchange_setup):
        source, target, program, placement = exchange_setup
        report = ProgramExecutor(source, target).run(program, placement)
        assert report.shipments == len(program.cross_edges(placement))
        assert report.comm_bytes > 0
        assert report.comm_seconds == 0.0  # zero-cost default channel

    def test_comp_attribution_by_location(self, exchange_setup):
        source, target, program, placement = exchange_setup
        report = ProgramExecutor(source, target).run(program, placement)
        total = sum(timing.seconds for timing in report.op_timings)
        attributed = (
            report.comp_seconds[Location.SOURCE]
            + report.comp_seconds[Location.TARGET]
        )
        assert attributed == pytest.approx(total)
