"""The customer workload (Section 1.1)."""

from repro.workloads.customer import (
    fragment_customers,
    generate_customer_document,
    generate_customer_instances,
)


class TestGenerator:
    def test_instances_count(self):
        documents = generate_customer_instances(7, seed=1)
        assert len(documents) == 7
        assert all(doc.name == "Customer" for doc in documents)

    def test_single_document(self):
        document = generate_customer_document(seed=3)
        assert document.name == "Customer"
        assert document.child_list("CustName")

    def test_structure(self, customers_schema):
        for document in generate_customer_instances(3, seed=2):
            for node in document.iter_all():
                assert node.name in customers_schema

    def test_deterministic(self):
        first = generate_customer_instances(3, seed=5)
        second = generate_customer_instances(3, seed=5)
        assert [d.element_count() for d in first] == \
            [d.element_count() for d in second]

    def test_every_line_has_switch_and_telno(self):
        for document in generate_customer_instances(4, seed=6):
            for line in document.occurrences_of("Line"):
                assert len(line.child_list("Switch")) == 1
                assert len(line.child_list("TelNo")) == 1


class TestFragmentCustomers:
    def test_covers_all_fragments(self, customers_s,
                                  customer_documents):
        feeds = fragment_customers(customer_documents, customers_s)
        assert set(feeds) == {f.name for f in customers_s}

    def test_customer_rows_match_documents(self, customers_s,
                                           customer_documents):
        feeds = fragment_customers(customer_documents, customers_s)
        assert feeds["Customer"].row_count() == len(customer_documents)

    def test_element_conservation(self, customers_t,
                                  customer_documents):
        feeds = fragment_customers(customer_documents, customers_t)
        total = sum(
            instance.element_count() for instance in feeds.values()
        )
        assert total == sum(
            document.element_count() for document in customer_documents
        )
