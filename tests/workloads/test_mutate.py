"""The synthetic change workload behind delta exchange."""

import pytest

from repro.errors import EndpointError
from repro.services.endpoint import RelationalEndpoint
from repro.workloads.mutate import mutate_endpoint


@pytest.fixture
def versioned(auction_mf, auction_document):
    endpoint = RelationalEndpoint("mut", auction_mf)
    endpoint.load_document(auction_document)
    endpoint.enable_versioning()
    return endpoint


class TestMutateEndpoint:
    def test_updates_are_stamped(self, versioned):
        before = versioned.versions.current
        report = mutate_endpoint(versioned, 0.1, seed=42)
        assert report.updated > 0
        assert report.deleted == 0
        assert report.version > before
        changed = sum(
            1
            for fragment in versioned.stored_fragments()
            for row in versioned.scan_versioned(fragment).rows
            if row.version > before
        )
        assert changed == report.updated
        assert sum(report.by_fragment.values()) == report.updated

    def test_perturbation_round_trips(self, versioned, auction_mf):
        from repro.core.delta import endpoint_digest

        fragments = list(auction_mf)
        before = endpoint_digest(versioned, fragments)
        mutate_endpoint(versioned, 0.1, seed=7)
        assert endpoint_digest(versioned, fragments) != before
        mutate_endpoint(versioned, 0.1, seed=7)
        assert endpoint_digest(versioned, fragments) == before

    def test_deletes_stay_on_cascade_free_fragments(self, versioned):
        counts = {
            fragment.name: versioned.scan(fragment).row_count()
            for fragment in versioned.stored_fragments()
        }
        report = mutate_endpoint(
            versioned, 0.0, seed=3, delete_fraction=0.05
        )
        assert report.deleted > 0
        survivors = {
            fragment.name: versioned.scan(fragment).row_count()
            for fragment in versioned.stored_fragments()
        }
        shrunk = {
            name for name in counts
            if survivors[name] < counts[name]
        }
        assert shrunk  # something was actually deleted
        # No cascades: exactly the reported rows vanished.
        assert sum(counts.values()) - sum(survivors.values()) \
            == report.deleted
        assert len(versioned.versions.tombstones) == report.deleted

    def test_requires_versioning(self, auction_mf, auction_document):
        bare = RelationalEndpoint("bare", auction_mf)
        bare.load_document(auction_document)
        with pytest.raises(EndpointError):
            mutate_endpoint(bare, 0.1)
