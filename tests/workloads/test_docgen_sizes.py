"""Generic document generation and the size ladder."""

import pytest

from repro.schema.generator import balanced_schema
from repro.workloads.docgen import generate_document, iter_leaf_texts
from repro.workloads.sizes import (
    DOCUMENT_SIZES_MB,
    current_scale,
    scaled_bytes,
    size_label,
)


class TestDocgen:
    def test_conforms_and_is_seeded(self):
        schema = balanced_schema(2, 3, seed=4, repeat_prob=0.5)
        first = generate_document(schema, seed=7)
        second = generate_document(schema, seed=7)
        assert first.element_count() == second.element_count()
        for node in first.iter_all():
            assert node.name in schema

    def test_repeat_bounds(self):
        schema = balanced_schema(1, 2, seed=0, repeat_prob=1.0)
        document = generate_document(schema, seed=1, max_repeat=5)
        for group in document.children.values():
            assert len(group) <= 5

    def test_leaf_texts(self):
        schema = balanced_schema(1, 2, seed=0, repeat_prob=0.0)
        document = generate_document(schema, seed=1, text_words=3)
        texts = list(iter_leaf_texts(document))
        assert texts
        assert all(len(text.split()) == 3 for text in texts)


class TestSizes:
    def test_paper_ladder(self):
        assert DOCUMENT_SIZES_MB == (2.5, 12.5, 25.0)

    def test_ratio_preserved_at_any_scale(self):
        small = scaled_bytes(2.5, scale=0.1)
        large = scaled_bytes(25.0, scale=0.1)
        assert large == 10 * small

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert current_scale() == 0.5
        assert scaled_bytes(2.5) == 1_250_000

    def test_bad_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(ValueError):
            current_scale()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            current_scale()

    def test_labels(self):
        assert size_label(2.5) == "2.5MB"
        assert size_label(25.0) == "25MB"
