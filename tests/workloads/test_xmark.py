"""The XMark workload: DTD, fragmentations, generator."""

import pytest

from repro.workloads.xmark import (
    generate_xmark_document,
    xmark_lf_fragmentation,
    xmark_mf_fragmentation,
    xmark_schema,
)


class TestGenerator:
    def test_size_targeting(self):
        for target in (20_000, 100_000):
            document = generate_xmark_document(target, seed=1)
            size = document.estimated_size()
            assert 0.7 * target <= size <= 1.4 * target

    def test_size_ratio_preserved(self):
        small = generate_xmark_document(25_000, seed=1)
        large = generate_xmark_document(250_000, seed=1)
        ratio = large.estimated_size() / small.estimated_size()
        assert 8.0 <= ratio <= 12.0

    def test_deterministic(self):
        first = generate_xmark_document(20_000, seed=4)
        second = generate_xmark_document(20_000, seed=4)
        assert first.estimated_size() == second.estimated_size()
        assert first.element_count() == second.element_count()

    def test_conforms_to_schema(self):
        schema = xmark_schema()
        document = generate_xmark_document(20_000, seed=2,
                                           schema=schema)
        for node in document.iter_all():
            assert node.name in schema
            parent_names = {
                child.name
                for child in schema.node(node.name).children
            }
            for child_name in node.children:
                assert child_name in parent_names

    def test_items_reference_attributes(self):
        document = generate_xmark_document(20_000, seed=2)
        items = list(document.occurrences_of("item"))
        assert all("id" in item.attrs for item in items)

    def test_eids_unique(self):
        document = generate_xmark_document(20_000, seed=2)
        eids = [node.eid for node in document.iter_all()]
        assert len(eids) == len(set(eids))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_xmark_document(10)


class TestFragmentations:
    def test_mf_lf_counts(self):
        schema = xmark_schema()
        assert len(xmark_mf_fragmentation(schema)) == len(schema)
        assert len(xmark_lf_fragmentation(schema)) == 3

    def test_lf_names_match_paper_style(self):
        lf = xmark_lf_fragmentation()
        names = sorted(fragment.name for fragment in lf)
        assert names[0].startswith("category_cname")
        assert names[1].startswith("item_location_quantity")
        assert names[2].startswith("site_regions_africa")
