"""The exchange simulator (Section 5.4)."""

import random

import pytest

from repro.core.cost.model import MachineProfile
from repro.schema.generator import balanced_schema
from repro.sim.random_fragmentation import random_fragmentation
from repro.sim.simulator import ExchangeSimulator


@pytest.fixture(scope="module")
def simulator():
    # A smaller tree than the paper's 85-node one keeps tests quick;
    # the benches run the full sizes.
    return ExchangeSimulator(balanced_schema(2, 4, seed=5))


@pytest.fixture(scope="module")
def fragmentations(simulator):
    rng = random.Random(3)
    source = random_fragmentation(
        simulator.schema, n_fragments=6, rng=rng, name="S"
    )
    target = random_fragmentation(
        simulator.schema, n_fragments=6, rng=rng, name="T"
    )
    return source, target


class TestExchangeCosts:
    def test_de_beats_publishing_equal_machines(self, simulator,
                                                fragmentations):
        source_fragmentation, target_fragmentation = fragmentations
        costs = simulator.exchange_costs(
            source_fragmentation, target_fragmentation,
            MachineProfile("s"), MachineProfile("t"),
            order_limit=40,
        )
        # Figure 10: a healthy reduction at equal speeds.
        assert costs.reduction_percent > 20.0
        assert costs.relative_cost < 0.8

    def test_fast_target_increases_reduction(self, simulator,
                                             fragmentations):
        source_fragmentation, target_fragmentation = fragmentations
        equal = simulator.exchange_costs(
            source_fragmentation, target_fragmentation,
            MachineProfile("s"), MachineProfile("t"), order_limit=40,
        )
        fast = simulator.exchange_costs(
            source_fragmentation, target_fragmentation,
            MachineProfile("s"), MachineProfile("t", speed=10.0),
            order_limit=40,
        )
        # Figure 11: the reduction grows with a 10x faster target.
        assert fast.reduction_percent > equal.reduction_percent

    def test_parallel_estimate_compresses_de_side(self, simulator,
                                                  fragmentations):
        from repro.core.program.parallel import ParallelEstimate

        source_fragmentation, target_fragmentation = fragmentations
        sequential = simulator.exchange_costs(
            source_fragmentation, target_fragmentation,
            MachineProfile("s"), MachineProfile("t"), order_limit=40,
        )
        parallel = simulator.exchange_costs(
            source_fragmentation, target_fragmentation,
            MachineProfile("s"), MachineProfile("t"), order_limit=40,
            parallel=ParallelEstimate(
                sequential_seconds=2.0, parallel_seconds=1.0,
                groups=4, workers=4,
            ),
        )
        # The DE side shrinks by the measured speedup; the publishing
        # baseline stays sequential, so the reduction grows.
        assert parallel.exchange.total < sequential.exchange.total
        assert parallel.publish.total == sequential.publish.total
        assert parallel.reduction_percent > sequential.reduction_percent

    def test_batch_rows_hides_communication(self, simulator,
                                            fragmentations):
        source_fragmentation, target_fragmentation = fragmentations
        materialized = simulator.exchange_costs(
            source_fragmentation, target_fragmentation,
            MachineProfile("s"), MachineProfile("t"), order_limit=40,
        )
        streamed = simulator.exchange_costs(
            source_fragmentation, target_fragmentation,
            MachineProfile("s"), MachineProfile("t"), order_limit=40,
            batch_rows=1,
        )
        # Pipelined shipping hides communication behind computation;
        # the compute estimate itself is untouched.
        assert streamed.exchange.communication < \
            materialized.exchange.communication
        assert streamed.exchange.computation == pytest.approx(
            materialized.exchange.computation
        )
        assert streamed.publish.total == materialized.publish.total

    def test_bad_batch_rows_rejected(self, simulator,
                                     fragmentations):
        source_fragmentation, target_fragmentation = fragmentations
        with pytest.raises(ValueError):
            simulator.exchange_costs(
                source_fragmentation, target_fragmentation,
                MachineProfile("s"), MachineProfile("t"),
                order_limit=40, batch_rows=0,
            )

    def test_columnar_prices_below_row(self, simulator,
                                       fragmentations):
        source_fragmentation, target_fragmentation = fragmentations
        row = simulator.exchange_costs(
            source_fragmentation, target_fragmentation,
            MachineProfile("s"), MachineProfile("t"), order_limit=40,
            batch_rows=64,
        )
        columnar = simulator.exchange_costs(
            source_fragmentation, target_fragmentation,
            MachineProfile("s"), MachineProfile("t"), order_limit=40,
            batch_rows=64, columnar=True,
        )
        # The per-strategy scales shrink every priced operator, so the
        # compute estimate drops; shipping is dataplane-blind.
        assert columnar.exchange.computation < row.exchange.computation
        assert columnar.exchange.communication == pytest.approx(
            row.exchange.communication
        )

    def test_columnar_requires_batch_rows(self, simulator,
                                          fragmentations):
        source_fragmentation, target_fragmentation = fragmentations
        with pytest.raises(ValueError, match="batch_rows"):
            simulator.exchange_costs(
                source_fragmentation, target_fragmentation,
                MachineProfile("s"), MachineProfile("t"),
                order_limit=40, columnar=True,
            )

    def test_publish_cost_all_at_source(self, simulator,
                                        fragmentations):
        source_fragmentation, _ = fragmentations
        breakdown = simulator.publish_cost(
            source_fragmentation, MachineProfile("s"),
            MachineProfile("t"),
        )
        from repro.core.ops.base import Location
        assert breakdown.by_location[Location.TARGET] == 0.0
        assert breakdown.communication > 0


class TestGreedyQuality:
    def test_trial_invariants(self, simulator):
        rng = random.Random(11)
        trial = simulator.greedy_quality_trial(
            n_fragments=5,
            source=MachineProfile("s", speed=5.0),
            target=MachineProfile("t"),
            rng=rng, order_limit=40,
        )
        assert trial.greedy_over_optimal >= 1.0 - 1e-9
        assert trial.worst_over_optimal >= trial.greedy_over_optimal \
            - 1e-9
        assert trial.greedy_seconds < trial.optimal_seconds + 1.0

    def test_window_grows_with_speed_gap(self, simulator):
        def average_window(source_speed, target_speed):
            rng = random.Random(21)
            ratios = []
            for _ in range(3):
                trial = simulator.greedy_quality_trial(
                    n_fragments=5,
                    source=MachineProfile("s", speed=source_speed),
                    target=MachineProfile("t", speed=target_speed),
                    rng=rng, order_limit=40,
                )
                ratios.append(trial.worst_over_optimal)
            return sum(ratios) / len(ratios)

        # Table 5: the optimization window is wider at 5/1 than 1/1.
        assert average_window(5.0, 1.0) > average_window(1.0, 1.0)


class TestLossyCosts:
    def test_fault_plan_inflates_both_pipelines(self, simulator,
                                                fragmentations):
        from repro.net.faults import FaultPlan

        source_fragmentation, target_fragmentation = fragmentations
        clean = simulator.exchange_costs(
            source_fragmentation, target_fragmentation,
            MachineProfile("s"), MachineProfile("t"), order_limit=40,
        )
        plan = FaultPlan(drop=0.2, corrupt=0.05, duplicate=0.1)
        lossy = simulator.exchange_costs(
            source_fragmentation, target_fragmentation,
            MachineProfile("s"), MachineProfile("t"), order_limit=40,
            fault_plan=plan, retry_attempts=4,
        )
        factor = plan.expected_transmission_factor(4)
        assert factor > 1.0
        assert lossy.exchange.communication == pytest.approx(
            clean.exchange.communication * factor
        )
        assert lossy.publish.communication == pytest.approx(
            clean.publish.communication * factor
        )
        # Compute costs are untouched: loss only burns the wire.
        assert lossy.exchange.computation == pytest.approx(
            clean.exchange.computation
        )

    def test_lossless_plan_changes_nothing(self, simulator,
                                           fragmentations):
        from repro.net.faults import FaultPlan

        source_fragmentation, target_fragmentation = fragmentations
        clean = simulator.exchange_costs(
            source_fragmentation, target_fragmentation,
            MachineProfile("s"), MachineProfile("t"), order_limit=40,
        )
        delay_only = simulator.exchange_costs(
            source_fragmentation, target_fragmentation,
            MachineProfile("s"), MachineProfile("t"), order_limit=40,
            fault_plan=FaultPlan(delay=0.3), retry_attempts=4,
        )
        assert delay_only.exchange.communication == pytest.approx(
            clean.exchange.communication
        )


class TestForTransport:
    """The simulator prices communication from whatever network
    profile the live transport carries — sim layer stays net-free."""

    def test_prices_from_transport_profile(self):
        from repro.net.transport import LOOPBACK_PROFILE, SimulatedChannel

        schema = balanced_schema(2, 4, seed=5)
        channel = SimulatedChannel()
        simulator = ExchangeSimulator.for_transport(schema, channel)
        assert simulator.bandwidth \
            == channel.profile.bandwidth_bytes_per_second

        fast = SimulatedChannel(profile=LOOPBACK_PROFILE)
        faster = ExchangeSimulator.for_transport(schema, fast)
        assert faster.bandwidth \
            == LOOPBACK_PROFILE.bandwidth_bytes_per_second

    def test_profile_less_transport_rejected(self):
        schema = balanced_schema(2, 4, seed=5)
        with pytest.raises(ValueError, match="profile"):
            ExchangeSimulator.for_transport(schema, object())


class TestShardedExchangeCosts:
    """Scatter/gather cost prediction: speedup rises with K but
    saturates at the spine bound, and aggregate work grows with the
    replicated spine."""

    @pytest.fixture(scope="class")
    def xmark(self, auction_schema, auction_mf, auction_lf):
        return (ExchangeSimulator(auction_schema),
                auction_mf, auction_lf)

    def test_speedup_monotone_and_bounded(self, xmark):
        simulator, mf, lf = xmark
        estimates = [
            simulator.sharded_exchange_costs(
                mf, lf, MachineProfile("s"), MachineProfile("t"),
                shards, order_limit=40,
            )
            for shards in (1, 2, 4, 8)
        ]
        speedups = [estimate.speedup for estimate in estimates]
        assert speedups[0] == pytest.approx(1.0)
        assert speedups == sorted(speedups)
        bound = 1.0 / estimates[0].spine_fraction
        assert all(speedup <= bound + 1e-9 for speedup in speedups)
        assert estimates[0].grains == ("category", "item")

    def test_replication_overhead_grows_with_shards(self, xmark):
        simulator, mf, lf = xmark
        machines = (MachineProfile("s"), MachineProfile("t"))
        one = simulator.sharded_exchange_costs(
            mf, lf, *machines, 1, order_limit=40
        )
        four = simulator.sharded_exchange_costs(
            mf, lf, *machines, 4, order_limit=40
        )
        assert one.replication_overhead == pytest.approx(0.0)
        assert four.replication_overhead > 0.0
        assert four.total_cost > one.total_cost
        assert four.per_shard_cost < one.per_shard_cost

    def test_unshardable_pair_is_diagnosed(self, xmark,
                                           auction_schema):
        from repro.errors import ShardingError
        from repro.core.fragmentation import Fragmentation

        simulator, mf, _ = xmark
        whole = Fragmentation.whole_document(auction_schema)
        with pytest.raises(ShardingError):
            simulator.sharded_exchange_costs(
                mf, whole, MachineProfile("s"), MachineProfile("t"),
                4, order_limit=40,
            )

    def test_shard_floor(self, xmark):
        simulator, mf, lf = xmark
        with pytest.raises(ValueError, match=">= 1"):
            simulator.sharded_exchange_costs(
                mf, lf, MachineProfile("s"), MachineProfile("t"), 0
            )


class TestDeltaExchangeCosts:
    """Incremental sync pricing: a fixed detection floor plus a
    change-rate-proportional variable part."""

    def test_sweep_is_monotone_and_bounded(self, simulator,
                                           fragmentations):
        source_fragmentation, target_fragmentation = fragmentations
        rates = [0.0, 0.01, 0.1, 0.5, 1.0]
        estimates = simulator.delta_exchange_costs(
            source_fragmentation, target_fragmentation,
            MachineProfile("s"), MachineProfile("t"),
            rates, order_limit=40,
        )
        assert [e.change_rate for e in estimates] == rates
        deltas = [e.delta_cost for e in estimates]
        assert deltas == sorted(deltas)
        # Nothing changed: only the detection scan is paid.
        assert estimates[0].delta_cost \
            == pytest.approx(estimates[0].detect_cost)
        # Everything changed: the delta run degenerates to a full one.
        assert estimates[-1].delta_cost \
            == pytest.approx(estimates[-1].full_cost)
        for estimate in estimates:
            assert 0.0 < estimate.relative_cost <= 1.0 + 1e-9
            assert estimate.savings_percent \
                == pytest.approx(100 * (1 - estimate.relative_cost))

    def test_amplification_inflates_the_variable_part(
            self, simulator, fragmentations):
        source_fragmentation, target_fragmentation = fragmentations
        machines = (MachineProfile("s"), MachineProfile("t"))
        plain = simulator.delta_exchange_costs(
            source_fragmentation, target_fragmentation, *machines,
            [0.1], order_limit=40,
        )[0]
        inflated = simulator.delta_exchange_costs(
            source_fragmentation, target_fragmentation, *machines,
            [0.1], order_limit=40, amplification=4.0,
        )[0]
        assert inflated.delta_cost > plain.delta_cost
        # The closure can never cost more than shipping everything.
        capped = simulator.delta_exchange_costs(
            source_fragmentation, target_fragmentation, *machines,
            [0.5], order_limit=40, amplification=100.0,
        )[0]
        assert capped.delta_cost == pytest.approx(capped.full_cost)

    def test_bad_inputs_rejected(self, simulator, fragmentations):
        source_fragmentation, target_fragmentation = fragmentations
        machines = (MachineProfile("s"), MachineProfile("t"))
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            simulator.delta_exchange_costs(
                source_fragmentation, target_fragmentation,
                *machines, [1.5], order_limit=40,
            )
        with pytest.raises(ValueError, match="amplification"):
            simulator.delta_exchange_costs(
                source_fragmentation, target_fragmentation,
                *machines, [0.1], order_limit=40, amplification=0.5,
            )
