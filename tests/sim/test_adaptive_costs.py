"""Analytic adaptive-vs-static costing on simulated substrates."""

import pytest

from repro.core.cost.model import MachineProfile
from repro.schema.generator import random_schema
from repro.sim.random_fragmentation import random_fragmentation
from repro.sim.simulator import AdaptiveCostEstimate, ExchangeSimulator


@pytest.fixture(scope="module")
def scenario():
    schema = random_schema(12, seed=8, repeat_prob=0.5)
    source_frag = random_fragmentation(
        schema, n_fragments=6, seed=108, name="A"
    )
    target_frag = random_fragmentation(
        schema, n_fragments=5, seed=208, name="B"
    )
    return schema, source_frag, target_frag


class TestAdaptiveExchangeCosts:
    def test_miscalibration_opens_a_recoverable_gap(self, scenario):
        """Combine overpriced 4x on a slow wire to a fast target: the
        static plan mis-places ops, and re-placing the suffix past the
        first pinned segment recovers the full oracle gap here."""
        schema, source_frag, target_frag = scenario
        sim = ExchangeSimulator(schema, bandwidth=1.0)
        estimate = sim.adaptive_exchange_costs(
            source_frag, target_frag,
            MachineProfile("s"), MachineProfile("t", speed=8.0),
            miscalibration={"combine": 4.0},
        )
        assert estimate.gap > 0
        assert estimate.moved_ops > 0
        assert estimate.pinned_ops > 0
        assert estimate.adaptive_cost <= estimate.static_cost
        assert estimate.oracle_cost <= estimate.adaptive_cost
        assert estimate.recovered_fraction >= 0.5

    def test_accurate_model_has_no_gap(self, scenario):
        schema, source_frag, target_frag = scenario
        sim = ExchangeSimulator(schema, bandwidth=1.0)
        estimate = sim.adaptive_exchange_costs(
            source_frag, target_frag,
            MachineProfile("s"), MachineProfile("t", speed=8.0),
            miscalibration={},
        )
        assert estimate.gap == pytest.approx(0.0)
        assert estimate.moved_ops == 0
        assert estimate.recovered_fraction == 1.0

    def test_fast_wire_hides_the_miscalibration(self, scenario):
        """With cheap communication both models agree on placement, so
        a pure comp-scale error costs nothing."""
        schema, source_frag, target_frag = scenario
        sim = ExchangeSimulator(schema, bandwidth=100.0)
        estimate = sim.adaptive_exchange_costs(
            source_frag, target_frag,
            MachineProfile("s"), MachineProfile("t", speed=8.0),
            miscalibration={"combine": 4.0},
        )
        assert estimate.gap == pytest.approx(0.0)

    def test_estimate_arithmetic(self):
        estimate = AdaptiveCostEstimate(
            static_cost=10.0, adaptive_cost=7.0, oracle_cost=6.0,
            pinned_ops=2, moved_ops=1,
        )
        assert estimate.gap == pytest.approx(4.0)
        assert estimate.recovered_fraction == pytest.approx(0.75)
        degenerate = AdaptiveCostEstimate(
            static_cost=5.0, adaptive_cost=5.0, oracle_cost=5.0,
            pinned_ops=1, moved_ops=0,
        )
        assert degenerate.recovered_fraction == 1.0
