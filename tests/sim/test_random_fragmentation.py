"""Random valid fragmentations."""

import random

import pytest

from repro.errors import FragmentationError
from repro.schema.generator import balanced_schema
from repro.sim.random_fragmentation import random_fragmentation


@pytest.fixture
def schema():
    return balanced_schema(2, 4, seed=1)


class TestRandomFragmentation:
    def test_exact_fragment_count(self, schema):
        for count in (1, 3, len(schema)):
            fragmentation = random_fragmentation(
                schema, n_fragments=count, seed=5
            )
            assert len(fragmentation) == count

    def test_always_valid(self, schema):
        rng = random.Random(0)
        for _ in range(25):
            random_fragmentation(schema, n_fragments=7, rng=rng)

    def test_deterministic_by_seed(self, schema):
        first = random_fragmentation(schema, n_fragments=5, seed=9)
        second = random_fragmentation(schema, n_fragments=5, seed=9)
        assert {f.name for f in first} == {f.name for f in second}

    def test_out_of_range_rejected(self, schema):
        with pytest.raises(FragmentationError):
            random_fragmentation(schema, n_fragments=0, seed=1)
        with pytest.raises(FragmentationError):
            random_fragmentation(
                schema, n_fragments=len(schema) + 1, seed=1
            )

    def test_rng_xor_seed(self, schema):
        with pytest.raises(ValueError):
            random_fragmentation(schema, n_fragments=3)
        with pytest.raises(ValueError):
            random_fragmentation(
                schema, n_fragments=3, seed=1, rng=random.Random(2)
            )
