"""Reporting helpers."""

import time

from repro.reporting.tables import format_table
from repro.reporting.timers import Timer


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(
            ["name", "value"],
            [["a", 1.23456], ["long-name", 7]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "1.235" in text
        # All rows share the header's width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_non_numeric_cells(self):
        text = format_table(["k"], [["x+y"], [None]])
        assert "x+y" in text and "None" in text


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.009

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.seconds
        with timer:
            time.sleep(0.005)
        assert timer.seconds >= first
