"""The command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv: str) -> str:
    out = io.StringIO()
    code = main(list(argv), out)
    assert code == 0
    return out.getvalue()


class TestProgramCommand:
    def test_xmark_program(self):
        output = run_cli("program", "MF", "LF")
        assert "scan=24 combine=21 split=0 write=3" in output
        assert "Write(" in output
        assert "@S" in output and "@T" in output

    def test_customer_program(self):
        output = run_cli("program", "S", "T")
        assert "scan=5 combine=2 split=1 write=4" in output
        assert "Split(Line_Feature)" in output

    def test_publishing_program(self):
        output = run_cli("program", "S", "DOC")
        assert "combine=4" in output and "write=1" in output

    def test_dot_output(self):
        output = run_cli("program", "S", "T", "--dot")
        assert output.strip().split("\n", 1)[1].startswith("digraph")

    def test_greedy_optimizer(self):
        output = run_cli("program", "S", "T", "--optimizer", "greedy")
        assert "optimizer=greedy" in output

    def test_mixed_workloads_rejected(self):
        with pytest.raises(SystemExit):
            main(["program", "MF", "T"], io.StringIO())


class TestWsdlCommand:
    def test_registration_document(self):
        output = run_cli("wsdl", "LF")
        assert "<definitions" in output
        assert "<fragmentation" in output
        assert "item" in output


class TestExchangeCommand:
    def test_runs_both_pipelines(self):
        output = run_cli(
            "exchange", "MF", "LF", "--size", "2.5",
            "--scale", "0.02",
        )
        assert "DE" in output and "PM" in output
        assert "saving" in output

    def test_rejects_customer_keys(self):
        with pytest.raises(SystemExit):
            main(["exchange", "S", "T"], io.StringIO())

    def test_parallel_workers(self):
        output = run_cli(
            "exchange", "MF", "MF", "--size", "2.5",
            "--scale", "0.02", "--workers", "2",
        )
        assert "parallel program execution (2 workers)" in output
        assert "s wall" in output

    def test_streaming_batch_rows(self):
        output = run_cli(
            "exchange", "MF", "MF", "--size", "2.5",
            "--scale", "0.02", "--batch-rows", "64",
        )
        assert "streaming dataplane (batch_rows=64)" in output
        assert "resident rows" in output

    def test_bad_batch_rows_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["exchange", "MF", "MF", "--batch-rows", "0"],
                io.StringIO(),
            )

    def test_columnar_defaults_batch_rows(self):
        output = run_cli(
            "exchange", "MF", "LF", "--size", "2.5",
            "--scale", "0.02", "--columnar",
        )
        assert "columnar dataplane (batch_rows=256)" in output

    def test_columnar_keeps_explicit_batch_rows(self):
        output = run_cli(
            "exchange", "MF", "LF", "--size", "2.5",
            "--scale", "0.02", "--columnar", "--batch-rows", "32",
        )
        assert "columnar dataplane (batch_rows=32)" in output


class TestAdaptiveExchange:
    def test_adaptive_run_reports_replans(self):
        output = run_cli(
            "exchange", "MF", "LF", "--size", "2.5",
            "--scale", "0.02", "--adaptive",
            "--replan-threshold", "-1",
        )
        assert "adaptive execution:" in output
        assert "replan(s)" in output and "mid-flight" in output
        assert "(threshold -1)" in output

    def test_stats_store_persists_and_warms(self, tmp_path):
        import json

        path = tmp_path / "stats.json"
        cold = run_cli(
            "exchange", "MF", "LF", "--size", "2.5",
            "--scale", "0.02", "--adaptive",
            "--stats-store", str(path),
        )
        assert f"pair(s) learned -> {path}" in cold
        state = json.loads(path.read_text(encoding="utf-8"))
        assert state["ingests"] > 0
        warm = run_cli(
            "exchange", "MF", "LF", "--size", "2.5",
            "--scale", "0.02", "--adaptive",
            "--stats-store", str(path),
        )
        assert "statistics store: 1 endpoint pair(s)" in warm
        warmed = json.loads(path.read_text(encoding="utf-8"))
        # The second run loaded the first run's store and kept learning.
        assert warmed["ingests"] > state["ingests"]

    def test_adaptive_rejects_sharding(self):
        with pytest.raises(SystemExit):
            main(
                ["exchange", "MF", "LF", "--shards", "2",
                 "--adaptive"],
                io.StringIO(),
            )


class TestSimulateCommand:
    def test_table5_config(self):
        output = run_cli(
            "simulate", "--ratio", "5/1", "--trials", "2",
            "--fragments", "6", "--order-limit", "30",
        )
        assert "Worst/Optimal" in output
        assert "Greedy/Optimal" in output

    def test_bad_ratio_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--ratio", "fast"], io.StringIO())


class TestLossyExchange:
    def test_fault_plan_prints_robustness_summary(self):
        output = run_cli(
            "exchange", "MF", "LF", "--size", "2.5",
            "--scale", "0.02", "--batch-rows", "32",
            "--fault-plan", "drop=0.1,corrupt=0.05,seed=7",
            "--retries", "6",
        )
        assert "lossy channel" in output
        assert "drop=0.1" in output
        assert "saving" in output  # the exchange still completes

    def test_bad_fault_plan_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["exchange", "MF", "MF",
                 "--fault-plan", "drop=2.0"],
                io.StringIO(),
            )

    def test_bad_retries_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["exchange", "MF", "MF",
                 "--fault-plan", "drop=0.1", "--retries", "0"],
                io.StringIO(),
            )


class TestTraceFlags:
    def test_jsonl_trace_written(self, tmp_path):
        import json

        path = tmp_path / "run.jsonl"
        output = run_cli(
            "exchange", "MF", "MF", "--size", "2.5",
            "--trace", str(path),
        )
        assert f"-> {path}" in output
        lines = path.read_text().strip().splitlines()
        assert lines
        categories = {json.loads(line)["cat"] for line in lines}
        assert {"op", "ship", "step"} <= categories

    def test_chrome_trace_loads(self, tmp_path):
        import json

        path = tmp_path / "run.json"
        run_cli(
            "exchange", "MF", "MF", "--size", "2.5",
            "--trace", str(path), "--trace-format", "chrome",
        )
        document = json.loads(path.read_text())
        assert any(
            event["ph"] == "X" for event in document["traceEvents"]
        )

    def test_metrics_table_printed(self):
        output = run_cli(
            "exchange", "MF", "MF", "--size", "2.5", "--metrics",
        )
        assert "op.scan.seconds" in output
        assert "ship.messages" in output

    def test_drift_report_printed(self):
        output = run_cli(
            "exchange", "MF", "MF", "--size", "2.5", "--drift",
        )
        assert "per-kind drift" in output
        assert "comm" in output

    def test_simulate_trace(self, tmp_path):
        import json

        path = tmp_path / "sim.jsonl"
        run_cli(
            "simulate", "--trials", "1", "--fragments", "5",
            "--trace", str(path),
        )
        lines = path.read_text().strip().splitlines()
        assert {json.loads(line)["cat"] for line in lines} == {"sim"}


class TestServiceTier:
    def test_exchange_over_tcp_transport(self):
        output = run_cli(
            "exchange", "MF", "LF", "--transport", "tcp",
            "--size", "1.0", "--scale", "0.02",
        )
        assert "DE" in output and "PM" in output

    def test_brokered_tcp_sessions(self):
        output = run_cli(
            "exchange", "MF", "LF", "--transport", "tcp",
            "--sessions", "2", "--size", "1.0", "--scale", "0.02",
        )
        assert "brokered session(s)" in output

    def test_sharded_exchange(self):
        output = run_cli(
            "exchange", "MF", "LF", "--shards", "4",
            "--size", "1.0", "--scale", "0.02",
        )
        assert "4 shard session(s) by key-range" in output
        assert "grains category, item" in output
        assert "byte-identity vs unsharded run: OK" in output

    def test_sharded_exchange_over_tcp_prefix_label(self):
        output = run_cli(
            "exchange", "MF", "LF", "--transport", "tcp",
            "--shards", "2", "--shard-by", "prefix-label",
            "--size", "1.0", "--scale", "0.02",
        )
        assert "2 shard session(s) by prefix-label" in output
        assert "byte-identity vs unsharded run: OK" in output

    def test_sharded_rejects_bad_combinations(self):
        with pytest.raises(SystemExit):
            main(["exchange", "MF", "LF", "--shards", "0"],
                 io.StringIO())
        with pytest.raises(SystemExit):
            main(["exchange", "MF", "LF", "--shards", "2",
                  "--sessions", "2"], io.StringIO())
        with pytest.raises(SystemExit):
            main(["exchange", "MF", "LF", "--shards", "2",
                  "--drift"], io.StringIO())

    def test_delta_exchange(self):
        output = run_cli(
            "exchange", "LF", "MF", "--delta",
            "--size", "1.0", "--scale", "0.02",
        )
        assert "delta re-exchange LF->MF" in output
        assert "delta/full communication:" in output
        assert "byte-identity vs full re-exchange: OK" in output

    def test_delta_exchange_columnar(self):
        output = run_cli(
            "exchange", "MF", "LF", "--delta", "--columnar",
            "--change-rate", "0.05",
            "--size", "1.0", "--scale", "0.02",
        )
        assert "change rate 0.05" in output
        assert "byte-identity vs full re-exchange: OK" in output

    def test_delta_rejects_bad_combinations(self):
        with pytest.raises(SystemExit):
            main(["exchange", "MF", "LF", "--delta",
                  "--sessions", "2"], io.StringIO())
        with pytest.raises(SystemExit):
            main(["exchange", "MF", "LF", "--delta",
                  "--adaptive"], io.StringIO())
        with pytest.raises(SystemExit):
            main(["exchange", "MF", "LF", "--delta",
                  "--change-rate", "0"], io.StringIO())
        with pytest.raises(SystemExit):
            main(["exchange", "MF", "LF", "--delta",
                  "--since", "-1"], io.StringIO())

    def test_serve_smoke(self):
        output = run_cli(
            "serve", "--http-port", "0", "--feed-port", "0",
            "--duration", "0.2",
        )
        assert "control plane: http://" in output
        assert "data plane:" in output

    def test_serve_rejects_bad_duration(self):
        with pytest.raises(SystemExit):
            main(["serve", "--duration", "0"], io.StringIO())

    def test_loadgen_smoke(self, tmp_path):
        out_file = tmp_path / "BENCH_load.json"
        output = run_cli(
            "loadgen", "--sessions", "3", "--workers", "3",
            "--size", "0.5", "--scale", "0.02",
            "--out", str(out_file),
        )
        assert "p95" in output
        assert "failed      0" in output
        assert out_file.exists()

    def test_loadgen_rejects_bad_sessions(self):
        with pytest.raises(SystemExit):
            main(["loadgen", "--sessions", "0"], io.StringIO())
