"""The LDAP-like directory store."""

import pytest

from repro.errors import DirectoryError
from repro.directory.store import DirectoryStore, Entry, ObjectClass


@pytest.fixture
def store():
    directory = DirectoryStore("test")
    directory.define_class(ObjectClass("CUSTOMER_T", ("c_name",)))
    directory.define_class(ObjectClass("ORDER_SERVICE_T", ("s_name",)))
    return directory


class TestClasses:
    def test_duplicate_class_rejected(self, store):
        with pytest.raises(DirectoryError):
            store.define_class(ObjectClass("CUSTOMER_T"))

    def test_unknown_class_rejected(self, store):
        with pytest.raises(DirectoryError):
            store.add_entry((), "NOPE", {})

    def test_must_contain_enforced(self, store):
        with pytest.raises(DirectoryError, match="MUST CONTAIN"):
            store.add_entry((), "CUSTOMER_T", {})


class TestEntries:
    def test_dewey_dns(self, store):
        first = store.add_entry((), "CUSTOMER_T", {"c_name": "acme"})
        second = store.add_entry((), "CUSTOMER_T", {"c_name": "bb"})
        child = store.add_entry(
            first, "ORDER_SERVICE_T", {"s_name": "local"}
        )
        assert first == (1,)
        assert second == (2,)
        assert child == (1, 1)
        assert store.entry(child).dn_string() == "1.1"

    def test_children_in_order(self, store):
        parent = store.add_entry((), "CUSTOMER_T", {"c_name": "a"})
        store.add_entry(parent, "ORDER_SERVICE_T", {"s_name": "x"})
        store.add_entry(parent, "ORDER_SERVICE_T", {"s_name": "y"})
        names = [
            entry.attrs["s_name"] for entry in store.children(parent)
        ]
        assert names == ["x", "y"]

    def test_search_by_class(self, store):
        store.add_entry((), "CUSTOMER_T", {"c_name": "a"})
        parent = store.add_entry((), "CUSTOMER_T", {"c_name": "b"})
        store.add_entry(parent, "ORDER_SERVICE_T", {"s_name": "z"})
        assert len(store.search("CUSTOMER_T")) == 2
        assert len(store.search("ORDER_SERVICE_T")) == 1
        assert len(store) == 3

    def test_missing_parent_rejected(self, store):
        with pytest.raises(DirectoryError):
            store.add_entry((9,), "CUSTOMER_T", {"c_name": "x"})

    def test_missing_entry_rejected(self, store):
        with pytest.raises(DirectoryError):
            store.entry((42,))

    def test_entry_is_dataclass(self):
        entry = Entry((1, 2), "X", {"a": "b"})
        assert entry.dn_string() == "1.2"
