"""Differential blitz: every dataplane, with and without a lossy wire.

For seeded random (schema, fragmentation, document) scenarios the
optimized exchange must publish a byte-identical target document from
every executor configuration — sequential materialized, streaming at
several batch sizes, and the parallel DAG scheduler at several worker
counts — and that answer must not change when the channel drops,
corrupts, duplicates or reorders messages, as long as the retry layer
is allowed to heal it.

Marked ``faults``: tier-1 deselects this module (see pyproject.toml);
CI runs it in the dedicated fault-blitz job.
"""

import random

import pytest

from repro.core.mapping import derive_mapping
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import ProgramExecutor
from repro.core.program.parallel_executor import ParallelProgramExecutor
from repro.net.faults import FaultPlan, FaultyChannel, RetryPolicy
from repro.net.transport import SimulatedChannel
from repro.relational.publisher import publish_document
from repro.schema.generator import random_schema
from repro.services.endpoint import RelationalEndpoint
from repro.workloads.docgen import generate_document

from tests.integration.test_random_roundtrips import flat_fragmentation

pytestmark = pytest.mark.faults

# Every executor configuration the repo ships.  ``None`` batch_rows on
# ProgramExecutor is the materialized dataplane; an int selects the
# streaming dataplane at that granularity.
EXECUTORS = [
    ("sequential", ProgramExecutor, {}),
    ("stream-rows1", ProgramExecutor, {"batch_rows": 1}),
    ("stream-rows7", ProgramExecutor, {"batch_rows": 7}),
    ("stream-rows64", ProgramExecutor, {"batch_rows": 64}),
    ("parallel-w1", ParallelProgramExecutor, {"workers": 1}),
    ("parallel-w2", ParallelProgramExecutor, {"workers": 2}),
    ("parallel-w4", ParallelProgramExecutor, {"workers": 4}),
    ("parallel-w2-stream", ParallelProgramExecutor,
     {"workers": 2, "batch_rows": 7}),
]

# The acceptance bar from the issue (10% drop + 5% corruption) plus a
# duplication/reordering plan that stresses the sequencing layer.
FAULT_PLANS = [
    ("clean", None),
    ("drop+corrupt",
     FaultPlan(drop=0.10, corrupt=0.05, seed=11)),
    ("dup+reorder",
     FaultPlan(drop=0.08, duplicate=0.08, reorder=0.08, seed=23)),
]

SCENARIO_SEEDS = [3, 41, 96]


@pytest.fixture(scope="module", params=SCENARIO_SEEDS)
def scenario(request):
    """A seeded random exchange problem plus its reference answer."""
    seed = request.param
    rng = random.Random(seed)
    # Sized so the exchange ships tens of messages per run: small
    # enough to keep the matrix quick, large enough that a 10% fault
    # rate reliably fires (a 3-message run can dodge it entirely).
    schema = random_schema(
        rng.randint(6, 12), seed=seed, repeat_prob=0.5
    )
    source_frag = flat_fragmentation(schema, rng, "A")
    target_frag = flat_fragmentation(schema, rng, "B")
    document = generate_document(schema, seed=seed, max_repeat=9)
    source = RelationalEndpoint("A", source_frag)
    source.load_document(document)
    reference = publish_document(source.db, source.mapper).document
    program = build_transfer_program(
        derive_mapping(source_frag, target_frag)
    )
    placement = source_heavy_placement(program)
    return source, target_frag, program, placement, reference


@pytest.mark.parametrize(
    "executor_cls,options",
    [pytest.param(cls, opts, id=name)
     for name, cls, opts in EXECUTORS],
)
@pytest.mark.parametrize(
    "plan",
    [pytest.param(plan, id=name) for name, plan in FAULT_PLANS],
)
def test_every_executor_agrees_under_every_plan(
        scenario, executor_cls, options, plan):
    source, target_frag, program, placement, reference = scenario
    target = RelationalEndpoint("B", target_frag)
    channel = SimulatedChannel(wire_format=True)
    wire = channel if plan is None else FaultyChannel(channel, plan)
    retry = None if plan is None else RetryPolicy(max_attempts=10)
    report = executor_cls(
        source, target, wire, retry=retry, **options
    ).run(program, placement)
    published = publish_document(target.db, target.mapper).document
    assert published == reference
    if plan is None:
        assert report.retries == 0
        assert report.redelivered_batches == 0


def test_faulty_runs_actually_exercise_the_fault_path(scenario):
    """Guard against a vacuous matrix: across the streaming configs the
    drop+corrupt plan must inject faults and force retries somewhere."""
    source, target_frag, program, placement, reference = scenario
    plan = FaultPlan(drop=0.10, corrupt=0.05, seed=11)
    injected = retried = 0
    for batch_rows in (1, 7):
        target = RelationalEndpoint("B", target_frag)
        wire = FaultyChannel(
            SimulatedChannel(wire_format=True), plan
        )
        report = ProgramExecutor(
            source, target, wire, batch_rows=batch_rows,
            retry=RetryPolicy(max_attempts=10),
        ).run(program, placement)
        injected += wire.stats.injected
        retried += report.retries
        assert publish_document(
            target.db, target.mapper
        ).document == reference
    assert injected > 0
    assert retried > 0


def test_lossy_wire_charges_for_waste(scenario):
    """The lossy run can never report cheaper communication than the
    clean run: every wasted transmission is charged."""
    source, target_frag, program, placement, _ = scenario

    def run(plan):
        target = RelationalEndpoint("B", target_frag)
        channel = SimulatedChannel(wire_format=True)
        wire = (channel if plan is None
                else FaultyChannel(channel, plan))
        ProgramExecutor(
            source, target, wire, batch_rows=7,
            retry=None if plan is None else RetryPolicy(
                max_attempts=10
            ),
        ).run(program, placement)
        return channel

    clean = run(None)
    lossy = run(FaultPlan(drop=0.10, corrupt=0.05, seed=11))
    if lossy.lost_messages:
        assert lossy.total_bytes > clean.total_bytes
        assert lossy.lost_bytes > 0
    assert lossy.total_bytes >= clean.total_bytes
