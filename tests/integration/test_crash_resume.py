"""Crash mid-exchange, resume from the journal, finish the job.

A process death after N shipped batches must not cost the work already
acknowledged: a rerun against the same on-disk journal re-ships only
the unacknowledged tail, never rewrites acknowledged rows, and leaves
the target publishing a document byte-identical to an uninterrupted
run — including when the wire is lossy at the same time.

Marked ``faults``: runs in CI's fault-blitz job, not in tier-1.
"""

import random

import pytest

from repro.core.mapping import derive_mapping
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import ProgramExecutor
from repro.core.program.journal import ExchangeJournal
from repro.net.faults import FaultPlan, FaultyChannel, RetryPolicy
from repro.net.transport import SimulatedChannel
from repro.relational.publisher import publish_document
from repro.schema.generator import random_schema
from repro.services.endpoint import RelationalEndpoint
from repro.workloads.docgen import generate_document

from tests.integration.test_random_roundtrips import flat_fragmentation

pytestmark = pytest.mark.faults


class KillSwitch:
    """Channel wrapper that simulates a process death: the Nth+1
    batch transmission raises instead of going out."""

    def __init__(self, inner, lives: int) -> None:
        self._inner = inner
        self._lives = lives

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def ship_batch(self, batch):
        if self._lives == 0:
            raise RuntimeError("simulated process death")
        self._lives -= 1
        return self._inner.ship_batch(batch)


@pytest.fixture(scope="module")
def exchange():
    """A seeded exchange large enough to ship a few dozen batches."""
    rng = random.Random(5)
    schema = random_schema(10, seed=5, repeat_prob=0.6)
    source_frag = flat_fragmentation(schema, rng, "A")
    target_frag = flat_fragmentation(schema, rng, "B")
    document = generate_document(schema, seed=5, max_repeat=12)
    source = RelationalEndpoint("A", source_frag)
    source.load_document(document)
    program = build_transfer_program(
        derive_mapping(source_frag, target_frag)
    )
    return (source, target_frag, program,
            source_heavy_placement(program))


def run_uninterrupted(exchange, batch_rows=2):
    source, target_frag, program, placement = exchange
    target = RelationalEndpoint("B", target_frag)
    channel = SimulatedChannel(wire_format=True)
    ProgramExecutor(
        source, target, channel, batch_rows=batch_rows
    ).run(program, placement)
    reference = publish_document(target.db, target.mapper).document
    return reference, channel.messages


class TestCrashResume:
    def test_resume_reships_only_the_unacked_tail(
            self, exchange, tmp_path):
        source, target_frag, program, placement = exchange
        reference, baseline_messages = run_uninterrupted(exchange)
        assert baseline_messages > 8  # the crash must be mid-run

        journal_path = tmp_path / "exchange.journal"
        target = RelationalEndpoint("B", target_frag)

        # First attempt: the process dies after 6 shipped batches.
        crash_channel = SimulatedChannel(wire_format=True)
        with ExchangeJournal(journal_path) as journal:
            with pytest.raises(RuntimeError,
                               match="process death"):
                ProgramExecutor(
                    source, target,
                    KillSwitch(crash_channel, lives=6),
                    batch_rows=2, journal=journal,
                ).run(program, placement)
        assert crash_channel.messages == 6
        acked = sum(
            1 for line in journal_path.read_text().splitlines()
            if '"batch"' in line
        )
        assert 0 < acked <= 6

        # Restart: a fresh process reopens the same journal and
        # finishes the exchange against the surviving target store.
        resume_channel = SimulatedChannel(wire_format=True)
        with ExchangeJournal(journal_path) as journal:
            report = ProgramExecutor(
                source, target, resume_channel,
                batch_rows=2, journal=journal,
            ).run(program, placement)
        assert report.resume_count == 1
        # Acked batches were neither re-shipped nor re-written.
        assert resume_channel.messages \
            == baseline_messages - acked
        assert publish_document(
            target.db, target.mapper
        ).document == reference

        # A third run finds every write acknowledged: nothing moves.
        idle_channel = SimulatedChannel(wire_format=True)
        with ExchangeJournal(journal_path) as journal:
            idle = ProgramExecutor(
                source, target, idle_channel,
                batch_rows=2, journal=journal,
            ).run(program, placement)
        assert idle.resume_count == 2
        assert idle_channel.messages == 0
        assert idle.rows_written == 0
        assert publish_document(
            target.db, target.mapper
        ).document == reference

    def test_resume_on_a_lossy_wire(self, exchange, tmp_path):
        """Crash and resume compose with fault injection: the healed,
        resumed run still reproduces the fault-free answer."""
        source, target_frag, program, placement = exchange
        reference, _ = run_uninterrupted(exchange)
        plan = FaultPlan(drop=0.10, duplicate=0.08, seed=5)
        retry = RetryPolicy(max_attempts=10)
        journal_path = tmp_path / "lossy.journal"
        target = RelationalEndpoint("B", target_frag)

        with ExchangeJournal(journal_path) as journal:
            with pytest.raises(RuntimeError,
                               match="process death"):
                ProgramExecutor(
                    source, target,
                    FaultyChannel(
                        KillSwitch(
                            SimulatedChannel(wire_format=True),
                            lives=8,
                        ),
                        plan,
                    ),
                    batch_rows=2, retry=retry, journal=journal,
                ).run(program, placement)

        with ExchangeJournal(journal_path) as journal:
            report = ProgramExecutor(
                source, target,
                FaultyChannel(
                    SimulatedChannel(wire_format=True), plan
                ),
                batch_rows=2, retry=retry, journal=journal,
            ).run(program, placement)
        assert report.resume_count == 1
        assert publish_document(
            target.db, target.mapper
        ).document == reference

    def test_parallel_executor_skips_acked_writes(
            self, exchange, tmp_path):
        """The DAG scheduler honours the same journal: writes acked by
        a previous (sequential) run are not repeated."""
        from repro.core.program.parallel_executor import (
            ParallelProgramExecutor,
        )

        source, target_frag, program, placement = exchange
        reference, _ = run_uninterrupted(exchange)
        journal_path = tmp_path / "cross.journal"
        target = RelationalEndpoint("B", target_frag)

        with ExchangeJournal(journal_path) as journal:
            ProgramExecutor(
                source, target, SimulatedChannel(wire_format=True),
                journal=journal,
            ).run(program, placement)

        idle_channel = SimulatedChannel(wire_format=True)
        with ExchangeJournal(journal_path) as journal:
            report = ParallelProgramExecutor(
                source, target, idle_channel, workers=2,
                journal=journal,
            ).run(program, placement)
        assert report.resume_count == 1
        assert idle_channel.messages == 0
        assert report.rows_written == 0
        assert publish_document(
            target.db, target.mapper
        ).document == reference
