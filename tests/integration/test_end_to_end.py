"""End-to-end integration: the full Figure 2 flow on real data.

These tests run the complete stack — XMark generation, relational
stores, WSDL registration, negotiation, program execution over the
simulated network (including true wire format), publish&map — and
assert semantic equivalence between every path.
"""

import pytest

from repro.core.optimizer.placement import source_heavy_placement
from repro.core.mapping import derive_mapping
from repro.core.program.builder import build_transfer_program
from repro.net.transport import SimulatedChannel
from repro.relational.publisher import publish_document
from repro.services.agency import DiscoveryAgency
from repro.services.endpoint import (
    DirectoryEndpoint,
    InMemoryEndpoint,
    RelationalEndpoint,
)
from repro.services.exchange import (
    run_optimized_exchange,
    run_publish_and_map,
)
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.core.program.executor import ProgramExecutor
from repro.workloads.customer import fragment_customers


@pytest.fixture(scope="module")
def reference_document(auction_mf, auction_document):
    source = RelationalEndpoint("ref", auction_mf)
    source.load_document(auction_document)
    return publish_document(source.db, source.mapper).document


@pytest.mark.parametrize("source_kind", ["mf", "lf"])
@pytest.mark.parametrize("target_kind", ["mf", "lf"])
def test_four_scenarios_all_paths_agree(
        source_kind, target_kind, auction_mf, auction_lf,
        auction_document, reference_document):
    """For each of the paper's four scenarios, DE (negotiated through
    the agency, shipped in true SOAP wire format) and publish&map leave
    the target database with identical content, equal to the source."""
    fragmentations = {"mf": auction_mf, "lf": auction_lf}
    source_frag = fragmentations[source_kind]
    target_frag = fragmentations[target_kind]

    source = RelationalEndpoint(f"S-{source_kind}", source_frag)
    source.load_document(auction_document)
    de_target = RelationalEndpoint(
        f"DT-{source_kind}{target_kind}", target_frag
    )
    channel = SimulatedChannel(wire_format=True)

    agency = DiscoveryAgency(auction_mf.schema)
    agency.register("src", source_frag, source)
    agency.register("tgt", target_frag, de_target)
    plan = agency.negotiate(
        "src", "tgt", optimizer="canonical", channel=channel
    )
    de = run_optimized_exchange(
        plan.program, plan.placement, source, de_target, channel,
        f"{source_kind}->{target_kind}",
    )

    pm_target = RelationalEndpoint(
        f"PT-{source_kind}{target_kind}", target_frag
    )
    pm = run_publish_and_map(
        source, pm_target, SimulatedChannel(),
        f"{source_kind}->{target_kind}",
    )

    de_doc = publish_document(de_target.db, de_target.mapper).document
    pm_doc = publish_document(pm_target.db, pm_target.mapper).document
    assert de_doc == pm_doc == reference_document
    assert de.rows_written == de_target.total_rows()
    assert pm.rows_written == pm_target.total_rows()


def test_identity_scenarios_are_pure_transfer(auction_mf,
                                              auction_document):
    """MF -> MF: the program is Scan -> Write only; no processing."""
    source = RelationalEndpoint("idS", auction_mf)
    source.load_document(auction_document)
    target = RelationalEndpoint("idT", auction_mf)
    program = build_transfer_program(
        derive_mapping(auction_mf, auction_mf)
    )
    assert all(node.kind in ("scan", "write") for node in program.nodes)
    outcome = run_optimized_exchange(
        program, source_heavy_placement(program), source, target,
        SimulatedChannel(), "MF->MF",
    )
    assert outcome.steps["target_processing"] == 0.0
    assert target.total_rows() == source.total_rows()


def test_customer_to_directory_pipeline(customers_schema, customers_s,
                                        customers_t,
                                        customer_documents):
    """The motivating example: relational-ish sales feeds on one side,
    the LDAP-like provisioning directory on the other (Figure 5)."""
    source = InMemoryEndpoint("sales")
    for instance in fragment_customers(
        customer_documents, customers_s
    ).values():
        source.put(instance)
    target = DirectoryEndpoint("provisioning", customers_t)

    program = build_transfer_program(
        derive_mapping(customers_s, customers_t)
    )
    model = CostModel(StatisticsCatalog.synthetic(customers_schema))
    from repro.core.optimizer.exhaustive import cost_based_optim
    placement, _ = cost_based_optim(program, model)
    ProgramExecutor(source, target).run(program, placement)

    store = target.materialize()
    lines = sum(
        1
        for document in customer_documents
        for _ in document.occurrences_of("Line")
    )
    assert len(store.search("LINE_T")) == lines
    # Every feature entry sits under a line entry.
    for entry in store.search("FEATURE_T"):
        parent = store.entry(entry.dn[:-1])
        assert parent.objectclass == "LINE_T"


def test_de_savings_shape_holds(auction_mf, auction_lf):
    """Figure 9's qualitative claim: summed across the four scenarios,
    optimized DE is faster end-to-end than publish&map.  A document
    large enough that transfer and processing dominate fixed overheads
    is required for the shape to be observable (the paper's smallest
    document is 2.5 MB)."""
    from repro.workloads.xmark import generate_xmark_document

    document = generate_xmark_document(400_000, seed=17)
    fragmentations = {"mf": auction_mf, "lf": auction_lf}
    de_total = 0.0
    pm_total = 0.0
    for source_kind, source_frag in fragmentations.items():
        source = RelationalEndpoint(f"sv-{source_kind}", source_frag)
        source.load_document(document)
        for target_kind, target_frag in fragmentations.items():
            program = build_transfer_program(
                derive_mapping(source_frag, target_frag)
            )
            de_target = RelationalEndpoint(
                f"sv-d-{source_kind}{target_kind}", target_frag
            )
            de = run_optimized_exchange(
                program, source_heavy_placement(program), source,
                de_target, SimulatedChannel(),
            )
            pm_target = RelationalEndpoint(
                f"sv-p-{source_kind}{target_kind}", target_frag
            )
            pm = run_publish_and_map(
                source, pm_target, SimulatedChannel()
            )
            de_total += de.total_seconds
            pm_total += pm.total_seconds
    assert de_total < pm_total
