"""Property-based end-to-end round trips on random schemas.

For any random schema tree, any random document and any pair of random
*flat-storable* fragmentations A and B:

* publish(load_A(doc)) == publish(shred_B(publish(load_A(doc)))) —
  the publish&map pipeline is lossless;
* running the optimized data-exchange program A -> B leaves the target
  database publishing the identical document — DE and PM agree
  everywhere, not just on the paper's workloads.

Flat-storability is guaranteed by making every repeated element a
fragment root (see DESIGN.md).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import derive_mapping
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.fragmentation import Fragmentation
from repro.relational.engine import Database
from repro.relational.frag_store import FragmentRelationMapper
from repro.relational.publisher import publish_document
from repro.relational.shredder import shred_document
from repro.schema.generator import random_schema
from repro.services.endpoint import RelationalEndpoint
from repro.workloads.docgen import generate_document


def flat_fragmentation(schema, rng: random.Random,
                       name: str) -> Fragmentation:
    """A random valid fragmentation whose fragments are all flat."""
    required = {schema.root.name} | {
        node.name for node in schema.iter_nodes()
        if node.cardinality.repeated
    }
    optional = [
        name for name in schema.element_names() if name not in required
    ]
    extras = [
        element for element in optional if rng.random() < 0.4
    ]
    return Fragmentation.from_roots(
        schema, sorted(required | set(extras)), name
    )


@st.composite
def pipelines(draw):
    schema = random_schema(
        draw(st.integers(min_value=2, max_value=12)),
        seed=draw(st.integers(0, 9999)),
        repeat_prob=0.4,
    )
    rng = random.Random(draw(st.integers(0, 9999)))
    source = flat_fragmentation(schema, rng, "A")
    target = flat_fragmentation(schema, rng, "B")
    document = generate_document(
        schema, seed=draw(st.integers(0, 9999))
    )
    return schema, source, target, document


@settings(max_examples=25, deadline=None)
@given(pipelines())
def test_publish_and_map_is_lossless(case):
    schema, source_frag, target_frag, document = case
    source_db = Database("A")
    source_mapper = FragmentRelationMapper(source_frag)
    source_mapper.create_tables(source_db)
    source_mapper.load_document(source_db, document)
    published = publish_document(source_db, source_mapper).document

    target_db = Database("B")
    target_mapper = FragmentRelationMapper(target_frag)
    target_mapper.create_tables(target_db)
    shred_document(published, target_mapper).load_into(target_db)
    republished = publish_document(target_db, target_mapper).document
    assert republished == published


@settings(max_examples=25, deadline=None)
@given(pipelines())
def test_optimized_exchange_agrees_with_publish_and_map(case):
    schema, source_frag, target_frag, document = case
    source = RelationalEndpoint("A", source_frag)
    source.load_document(document)
    reference = publish_document(source.db, source.mapper).document

    target = RelationalEndpoint("B", target_frag)
    program = build_transfer_program(
        derive_mapping(source_frag, target_frag)
    )
    from repro.core.program.executor import ProgramExecutor

    ProgramExecutor(source, target).run(
        program, source_heavy_placement(program)
    )
    assert publish_document(
        target.db, target.mapper
    ).document == reference
