"""Shared fixtures: the paper's two workloads at test-friendly sizes."""

from __future__ import annotations

import pytest

from repro.core.fragmentation import Fragmentation
from repro.core.instance import ElementData
from repro.schema.model import SchemaTree
from repro.workloads.customer import (
    customer_schema,
    generate_customer_instances,
    s_fragmentation,
    t_fragmentation,
)
from repro.workloads.xmark import (
    generate_xmark_document,
    xmark_lf_fragmentation,
    xmark_mf_fragmentation,
    xmark_schema,
)


@pytest.fixture(scope="session")
def customers_schema() -> SchemaTree:
    return customer_schema()


@pytest.fixture(scope="session")
def customers_s(customers_schema: SchemaTree) -> Fragmentation:
    return s_fragmentation(customers_schema)


@pytest.fixture(scope="session")
def customers_t(customers_schema: SchemaTree) -> Fragmentation:
    return t_fragmentation(customers_schema)


@pytest.fixture(scope="session")
def customer_documents(customers_schema: SchemaTree) -> list[ElementData]:
    return generate_customer_instances(5, seed=2024)


@pytest.fixture(scope="session")
def auction_schema() -> SchemaTree:
    return xmark_schema()


@pytest.fixture(scope="session")
def auction_mf(auction_schema: SchemaTree) -> Fragmentation:
    return xmark_mf_fragmentation(auction_schema)


@pytest.fixture(scope="session")
def auction_lf(auction_schema: SchemaTree) -> Fragmentation:
    return xmark_lf_fragmentation(auction_schema)


@pytest.fixture(scope="session")
def auction_document(auction_schema: SchemaTree) -> ElementData:
    return generate_xmark_document(
        40_000, seed=99, schema=auction_schema
    )
