"""Partitioning properties: every row in exactly one shard, PARENT
references never crossing a shard boundary, prefix labels that are
genuine document-ordered prefixes — including skewed inputs and more
shards than grain occurrences (empty shards)."""

import pytest

from repro.errors import ShardingError
from repro.core.fragmentation import Fragmentation
from repro.core.partition import (
    GrainPlan,
    assign_shards,
    partition_instances,
    prefix_labels,
    resolve_grains,
)
from repro.services.endpoint import RelationalEndpoint
from repro.workloads.xmark import generate_xmark_document


@pytest.fixture(scope="module")
def instances(auction_mf, auction_document):
    endpoint = RelationalEndpoint("S", auction_mf)
    endpoint.load_document(auction_document)
    return {
        fragment.name: endpoint.scan(fragment)
        for fragment in auction_mf
    }


@pytest.fixture(scope="module")
def plan(auction_mf, auction_lf):
    return resolve_grains(auction_mf, auction_lf)


def _eids(instance):
    return {row.eid for row in instance.rows}


class TestGrainResolution:
    def test_auto_selects_maximal_repeated_roots(self, plan):
        assert plan.grains == ("category", "item")
        assert plan.sharded and plan.spine
        assert plan.sharded.isdisjoint(plan.spine)

    def test_whole_document_target_cannot_shard(self, auction_schema,
                                                auction_mf):
        whole = Fragmentation.whole_document(auction_schema)
        with pytest.raises(ShardingError, match="no shardable grain"):
            resolve_grains(auction_mf, whole)

    def test_explicit_grain_with_mixing_target_rejected(
            self, auction_schema, auction_mf):
        whole = Fragmentation.whole_document(auction_schema)
        with pytest.raises(ShardingError, match="mix grain-subtree"):
            resolve_grains(auction_mf, whole, grains=["item"])

    def test_explicit_grain_must_exist(self, auction_mf, auction_lf):
        with pytest.raises(ShardingError, match="not in the schema"):
            resolve_grains(auction_mf, auction_lf, grains=["nope"])

    def test_explicit_grain_must_root_a_fragment(self, auction_lf,
                                                 auction_mf):
        # Under LF, "location" lives inside the ITEM fragment.
        with pytest.raises(ShardingError, match="does not root"):
            resolve_grains(auction_lf, auction_mf,
                           grains=["location"])

    def test_explicit_grain_must_be_repeated(self, auction_mf,
                                             auction_lf):
        with pytest.raises(ShardingError, match="not repeated"):
            resolve_grains(auction_mf, auction_lf,
                           grains=["regions"])


class TestExactlyOneShard:
    @pytest.mark.parametrize("strategy", ["key-range", "prefix-label"])
    @pytest.mark.parametrize("shards", [2, 3, 8])
    def test_assignments_partition_every_row(self, instances,
                                             auction_mf, plan,
                                             strategy, shards):
        result = assign_shards(
            instances, auction_mf, plan, shards, strategy
        )
        for name, assignment in result.assignments.items():
            assert len(assignment) == len(instances[name].rows)
            assert all(0 <= shard < shards for shard in assignment)
        # Exclusive counts cover every sharded row exactly once.
        sharded_rows = sum(
            len(instances[name].rows) for name in plan.sharded
        )
        assert sum(result.rows_per_shard()) == sharded_rows

    @pytest.mark.parametrize("strategy", ["key-range", "prefix-label"])
    @pytest.mark.parametrize("shards", [2, 3, 8])
    def test_shard_sets_are_disjoint_and_complete(self, instances,
                                                  auction_mf, plan,
                                                  strategy, shards):
        shard_sets, _ = partition_instances(
            instances, auction_mf, plan, shards, strategy
        )
        assert len(shard_sets) == shards
        for name in plan.sharded:
            original = _eids(instances[name])
            buckets = [_eids(s[name]) for s in shard_sets]
            for i, left in enumerate(buckets):
                for right in buckets[i + 1:]:
                    assert left.isdisjoint(right)
            union = set().union(*buckets)
            assert union == original
        for name in plan.spine:
            for shard_set in shard_sets:
                assert _eids(shard_set[name]) == _eids(instances[name])

    @pytest.mark.parametrize("strategy", ["key-range", "prefix-label"])
    def test_more_shards_than_occurrences(self, auction_schema,
                                          auction_mf, auction_lf,
                                          strategy):
        """K beyond the grain occurrence count leaves trailing shards
        empty but still structurally complete."""
        endpoint = RelationalEndpoint("S-small", auction_mf)
        endpoint.load_document(
            generate_xmark_document(1_000, seed=7,
                                    schema=auction_schema)
        )
        instances = {
            fragment.name: endpoint.scan(fragment)
            for fragment in auction_mf
        }
        plan = resolve_grains(auction_mf, auction_lf)
        occurrences = sum(
            len(instances[auction_mf.fragment_of(g).name].rows)
            for g in plan.grains
        )
        shards = occurrences + 5
        shard_sets, result = partition_instances(
            instances, auction_mf, plan, shards, strategy
        )
        counts = result.rows_per_shard()
        assert sum(counts) >= occurrences
        assert any(count == 0 for count in counts)
        for shard_set in shard_sets:
            assert set(shard_set) == {
                fragment.name for fragment in auction_mf
            }

    def test_key_range_skew_stays_lossless(self, instances,
                                           auction_mf, plan):
        """xmark clusters every item under one region — maximal skew
        for the range cut — and the partition is still exact."""
        result = assign_shards(
            instances, auction_mf, plan, 4, "key-range"
        )
        item_fragment = auction_mf.fragment_of("item").name
        assignment = result.assignments[item_fragment]
        rows = instances[item_fragment].rows
        # Ranges are contiguous in document (eid) order.
        by_eid = sorted(range(len(rows)), key=lambda i: rows[i].eid)
        shards_in_order = [assignment[i] for i in by_eid]
        assert shards_in_order == sorted(shards_in_order)


class TestShardLocalParents:
    @pytest.mark.parametrize("strategy", ["key-range", "prefix-label"])
    @pytest.mark.parametrize("shards", [2, 3, 8])
    def test_parent_never_crosses_a_boundary(self, instances,
                                             auction_mf, plan,
                                             strategy, shards):
        shard_sets, _ = partition_instances(
            instances, auction_mf, plan, shards, strategy
        )
        for shard_set in shard_sets:
            local = set()
            for instance in shard_set.values():
                for row in instance.rows:
                    for node in row.data.iter_all():
                        local.add(node.eid)
            for instance in shard_set.values():
                for row in instance.rows:
                    assert row.parent is None or row.parent in local

    def test_dangling_parent_rejected(self, instances, auction_mf,
                                      plan):
        """A sharded row whose PARENT belongs to no shard is a cut
        reference and must be diagnosed, not silently dropped."""
        from repro.core.instance import (
            ElementData,
            FragmentInstance,
            FragmentRow,
        )
        item_fragment = auction_mf.fragment_of("item")
        broken = dict(instances)
        rows = list(instances[item_fragment.name].rows)
        rows.append(FragmentRow(
            ElementData("item", 10_000_000), 9_999_999
        ))
        broken[item_fragment.name] = FragmentInstance(
            item_fragment, rows
        )
        with pytest.raises(ShardingError,
                           match="no spine row contains"):
            assign_shards(broken, auction_mf, plan, 2, "prefix-label")


class TestPrefixLabels:
    def test_labels_are_prefix_extensions(self, instances, auction_mf,
                                          plan):
        labels = prefix_labels(instances, auction_mf, plan)
        for grain in plan.grains:
            fragment = auction_mf.fragment_of(grain)
            for row in instances[fragment.name].rows:
                label = labels[row.eid]
                assert label[:-1] == labels[row.parent]

    def test_labels_follow_document_order(self, instances, auction_mf,
                                          plan):
        labels = prefix_labels(instances, auction_mf, plan)
        for grain in plan.grains:
            fragment = auction_mf.fragment_of(grain)
            rows = sorted(
                instances[fragment.name].rows,
                key=lambda row: row.eid,
            )
            ordered = [labels[row.eid] for row in rows]
            assert ordered == sorted(ordered)


class TestArgumentValidation:
    def test_unknown_strategy(self, instances, auction_mf, plan):
        with pytest.raises(ShardingError, match="unknown sharding"):
            assign_shards(instances, auction_mf, plan, 2, "hash")

    def test_shard_count_floor(self, instances, auction_mf, plan):
        with pytest.raises(ShardingError, match=">= 1"):
            assign_shards(instances, auction_mf, plan, 0)

    def test_grain_plan_is_frozen(self, plan):
        assert isinstance(plan, GrainPlan)
        with pytest.raises(AttributeError):
            plan.grains = ()
