"""The discovery agency: registration and negotiation (Figure 2)."""

import pytest

from repro.errors import NegotiationError
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.core.program.render import summary
from repro.net.transport import SimulatedChannel
from repro.services.agency import DiscoveryAgency
from repro.services.endpoint import RelationalEndpoint
from repro.wsdl.model import parse_wsdl


@pytest.fixture
def agency(auction_schema):
    return DiscoveryAgency(auction_schema)


@pytest.fixture
def model(auction_schema):
    return CostModel(StatisticsCatalog.synthetic(auction_schema))


class TestRegistration:
    def test_register_stores_wsdl_with_extension(self, agency,
                                                 auction_mf):
        registration = agency.register("sales", auction_mf)
        assert "fragmentation" in registration.wsdl_text
        parsed = parse_wsdl(registration.wsdl_text)
        assert parsed.find_extension("fragmentation") is not None
        assert agency.registered_names() == ["sales"]

    def test_register_without_fragmentation_defaults_to_document(
            self, agency, auction_schema):
        registration = agency.register("plain")
        assert len(registration.fragmentation) == 1

    def test_duplicate_rejected(self, agency, auction_mf):
        agency.register("sales", auction_mf)
        with pytest.raises(NegotiationError):
            agency.register("sales", auction_mf)

    def test_foreign_schema_rejected(self, agency):
        from repro.workloads.customer import customer_schema, \
            t_fragmentation
        other = t_fragmentation(customer_schema())
        with pytest.raises(NegotiationError):
            agency.register("prov", other)

    def test_structurally_identical_reparse_accepted(self):
        # Remote systems re-parse the agreed schema document, so their
        # fragmentations arrive over a distinct but structurally
        # identical SchemaTree.  Registration used to reject these on
        # an identity check; it must accept and rebind them.
        from repro.workloads.customer import (
            customer_schema,
            s_fragmentation,
            t_fragmentation,
        )
        ours = customer_schema()
        theirs = customer_schema()
        assert ours is not theirs
        assert ours.structurally_equal(theirs)
        agency = DiscoveryAgency(ours)
        agency.register("sales", s_fragmentation(ours))
        registration = agency.register("prov", t_fragmentation(theirs))
        # Rebound onto the agency's tree so the rest of the pipeline
        # (mapping derivation, program building) sees one schema.
        assert registration.fragmentation.schema is ours
        model = CostModel(StatisticsCatalog.synthetic(ours))
        plan = agency.negotiate("sales", "prov", probe=model)
        plan.program.validate_placement(plan.placement)

    def test_register_wsdl_round_trip(self, agency, auction_lf):
        # One agency serializes; another registers from the document.
        first = agency.register("a", auction_lf)
        second = DiscoveryAgency(agency.schema)
        registration = second.register_wsdl("b", first.wsdl_text)
        assert {f.name for f in registration.fragmentation} == {
            f.name for f in auction_lf
        }

    def test_register_wsdl_without_extension_rejected(self, agency):
        from repro.workloads.customer import customer_info_wsdl
        from repro.wsdl.model import serialize_wsdl
        text = serialize_wsdl(customer_info_wsdl())
        with pytest.raises(NegotiationError, match="extension"):
            agency.register_wsdl("x", text)

    def test_unknown_registration(self, agency):
        with pytest.raises(NegotiationError):
            agency.registration("ghost")


class TestNegotiation:
    def test_greedy_plan(self, agency, auction_mf, auction_lf, model):
        agency.register("s", auction_mf)
        agency.register("t", auction_lf)
        plan = agency.negotiate("s", "t", probe=model)
        assert plan.optimizer == "greedy"
        assert summary(plan.program) == \
            "scan=24 combine=21 split=0 write=3"
        plan.program.validate_placement(plan.placement)

    def test_canonical_plan(self, agency, auction_mf, auction_lf,
                            model):
        agency.register("s", auction_mf)
        agency.register("t", auction_lf)
        plan = agency.negotiate(
            "s", "t", optimizer="canonical", probe=model
        )
        assert plan.estimated_cost > 0
        annotated = plan.annotate()
        assert all(
            node.location is not None for node in annotated.nodes
        )

    def test_optimal_plan_small(self, customers_schema, customers_s,
                                customers_t):
        agency = DiscoveryAgency(customers_schema)
        agency.register("s", customers_s)
        agency.register("t", customers_t)
        model = CostModel(StatisticsCatalog.synthetic(customers_schema))
        plan = agency.negotiate(
            "s", "t", optimizer="optimal", probe=model, order_limit=20
        )
        greedy = agency.negotiate("s", "t", probe=model)
        assert plan.estimated_cost <= greedy.estimated_cost + 1e-9

    def test_unknown_optimizer_rejected(self, agency, auction_mf,
                                        auction_lf, model):
        agency.register("s", auction_mf)
        agency.register("t", auction_lf)
        with pytest.raises(NegotiationError, match="optimizer"):
            agency.negotiate("s", "t", optimizer="magic", probe=model)

    def test_endpoint_probe_path(self, agency, auction_mf, auction_lf,
                                 auction_document):
        source = RelationalEndpoint("S", auction_mf)
        source.load_document(auction_document)
        target = RelationalEndpoint("T", auction_lf)
        agency.register("s", auction_mf, source)
        agency.register("t", auction_lf, target)
        plan = agency.negotiate(
            "s", "t", channel=SimulatedChannel()
        )
        plan.program.validate_placement(plan.placement)
        # Negotiation shared the source's statistics with the target.
        assert target.statistics() is source.statistics()

    def test_probe_needs_channel_or_model(self, agency, auction_mf,
                                          auction_lf):
        agency.register("s", auction_mf)
        agency.register("t", auction_lf)
        with pytest.raises(NegotiationError):
            agency.negotiate("s", "t")
