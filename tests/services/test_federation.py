"""Federated agencies: deterministic routing, on-demand mirroring and
one shared plan cache across members."""

import pytest

from repro.errors import NegotiationError
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.obs.metrics import MetricsRegistry
from repro.schema.dtd import parse_dtd
from repro.services.agency import DiscoveryAgency
from repro.services.broker import PlanCache
from repro.services.endpoint import RelationalEndpoint
from repro.services.federation import FederatedAgency


@pytest.fixture
def model(auction_schema):
    return CostModel(StatisticsCatalog.synthetic(auction_schema))


@pytest.fixture
def federation(auction_schema):
    return FederatedAgency.for_schema(
        auction_schema, members=3,
        plan_cache=PlanCache(), metrics=MetricsRegistry(),
    )


class TestConstruction:
    def test_needs_members(self):
        with pytest.raises(NegotiationError, match="at least one"):
            FederatedAgency([])

    def test_for_schema_floor(self, auction_schema):
        with pytest.raises(NegotiationError, match=">= 1"):
            FederatedAgency.for_schema(auction_schema, members=0)

    def test_rejects_structurally_different_schemas(
            self, auction_schema):
        other = parse_dtd(
            "<!ELEMENT root (leaf*)>\n<!ELEMENT leaf (#PCDATA)>"
        )
        with pytest.raises(NegotiationError,
                           match="structurally different"):
            FederatedAgency([
                DiscoveryAgency(auction_schema, "A"),
                DiscoveryAgency(other, "B"),
            ])

    def test_schema_is_member_zero(self, federation, auction_schema):
        assert federation.schema is federation.members[0].schema


class TestRoutingAndRegistration:
    def test_route_is_deterministic(self, federation):
        for name in ("src", "tgt", "alpha", "beta"):
            homes = {federation.route(name) for _ in range(5)}
            assert len(homes) == 1
            assert homes.pop() in federation.members

    def test_register_lands_on_home_member(self, federation,
                                           auction_mf):
        registration = federation.register("src", auction_mf)
        home = federation.route("src")
        assert home.registration("src") is registration
        for member in federation.members:
            if member is not home:
                with pytest.raises(NegotiationError):
                    member.registration("src")

    def test_registration_finds_any_member(self, federation,
                                           auction_mf):
        federation.register("src", auction_mf)
        assert federation.registration("src").fragmentation \
            is auction_mf
        assert federation.registered_names() == ["src"]

    def test_duplicate_rejected_federation_wide(self, federation,
                                                auction_mf,
                                                auction_lf):
        federation.register("src", auction_mf)
        with pytest.raises(NegotiationError,
                           match="already registered"):
            federation.register("src", auction_lf)
        # ... even when registered directly on a non-home member.
        home = federation.route("other")
        foreign = next(
            member for member in federation.members
            if member is not home
        )
        foreign.register("other", auction_mf)
        with pytest.raises(NegotiationError,
                           match="already registered"):
            federation.register("other", auction_lf)

    def test_unknown_name_lists_member_count(self, federation):
        with pytest.raises(NegotiationError, match="3 member"):
            federation.registration("ghost")


class TestFederatedNegotiation:
    def _load(self, federation, auction_mf, auction_lf,
              auction_document):
        source = RelationalEndpoint("S", auction_mf)
        source.load_document(auction_document)
        federation.register("src", auction_mf, source)
        federation.register("tgt", auction_lf)

    def test_negotiate_mirrors_target_to_source_home(
            self, federation, auction_mf, auction_lf,
            auction_document, model):
        self._load(federation, auction_mf, auction_lf,
                   auction_document)
        plan = federation.negotiate("src", "tgt", probe=model)
        assert plan.program is not None
        home = federation.route("src")
        # The target registration now exists on the source's home too.
        assert home.registration("tgt").fragmentation is auction_lf
        counters = federation.metrics
        assert counters.counter("federation.negotiations").value == 1
        if federation.route("tgt") is not home:
            assert counters.counter("federation.mirrored").value == 1

    def test_shared_cache_spans_members(self, federation, auction_mf,
                                        auction_lf, auction_document,
                                        model):
        """A plan negotiated via any member warms the federation-wide
        cache: the optimizer runs once for N equivalent exchanges."""
        self._load(federation, auction_mf, auction_lf,
                   auction_document)
        metrics = MetricsRegistry()
        first = federation.negotiate(
            "src", "tgt", probe=model, metrics=metrics
        )
        # A second pair with identical fragmentations, routed to
        # whatever homes its names hash to.
        source2 = RelationalEndpoint("S2", auction_mf)
        source2.load_document(auction_document)
        federation.register("src-two", auction_mf, source2)
        federation.register("tgt-two", auction_lf)
        second = federation.negotiate(
            "src-two", "tgt-two", probe=model, metrics=metrics
        )
        assert metrics.counter("optimizer.runs").value == 1
        assert federation.plan_cache.hits >= 1
        # Same plan shape (op ids are fresh per negotiation).
        assert (sorted(second.placement.values(), key=repr)
                == sorted(first.placement.values(), key=repr))

    def test_negotiate_unknown_source(self, federation, model):
        with pytest.raises(NegotiationError, match="ghost"):
            federation.negotiate("ghost", "tgt", probe=model)
