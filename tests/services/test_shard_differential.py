"""Differential shard-equivalence: sharded == unsharded, byte for byte.

For every shard count K in {1, 2, 3, 8} and every executor
configuration the repo ships — sequential and parallel, materialized
and streaming, row and columnar dataplanes — the scatter/gather
coordinator must publish a target document byte-identical to the plain
single-session exchange, and its accounting must reconcile exactly:
total shipped bytes are the sum of the per-shard channels, and the
rows the shard sessions wrote are the merged rows plus the replicated
spine duplicates the gather deduplicated.
"""

import threading

import pytest

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.net.transport import SimulatedChannel
from repro.relational.publisher import publish_document
from repro.services.agency import DiscoveryAgency
from repro.services.broker import PlanCache
from repro.services.endpoint import RelationalEndpoint
from repro.services.exchange import run_optimized_exchange
from repro.services.shard import ScatterGatherCoordinator, ShardingSpec

SHARD_COUNTS = [1, 2, 3, 8]

# Executor × dataplane grid: {sequential, parallel, streaming} each in
# row and columnar flavors.  The columnar dataplane is a streaming
# dataplane, so its sequential cell runs batched under the sequential
# driver; the streaming cells vary the batch size instead.
EXECUTORS = [
    ("seq-row", {}),
    ("seq-columnar", {"batch_rows": 16, "columnar": True}),
    ("par-row", {"parallel_workers": 3}),
    ("par-columnar",
     {"parallel_workers": 3, "batch_rows": 16, "columnar": True}),
    ("stream-row", {"batch_rows": 16}),
    ("stream-columnar", {"batch_rows": 64, "columnar": True}),
]


@pytest.fixture(scope="module")
def model(auction_schema):
    return CostModel(StatisticsCatalog.synthetic(auction_schema))


@pytest.fixture(scope="module")
def loaded_agency(auction_schema, auction_mf, auction_lf,
                  auction_document):
    source = RelationalEndpoint("S", auction_mf)
    source.load_document(auction_document)
    agency = DiscoveryAgency(auction_schema)
    agency.register("src", auction_mf, source)
    agency.register("tgt", auction_lf)
    return agency


@pytest.fixture(scope="module")
def reference(loaded_agency, auction_lf, model):
    """The unsharded answer: one plain optimized exchange."""
    plan = loaded_agency.negotiate("src", "tgt", probe=model)
    target = RelationalEndpoint("T-ref", auction_lf)
    source = loaded_agency.registration("src").endpoint
    run_optimized_exchange(
        plan.annotate(), plan.placement, source, target,
        SimulatedChannel(),
    )
    return publish_document(target.db, target.mapper).document


def _published(endpoint):
    return publish_document(endpoint.db, endpoint.mapper).document


def _factory(fragmentation):
    lock = threading.Lock()

    def make(index):
        with lock:
            return RelationalEndpoint(f"T{index}", fragmentation)

    return make


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize(
    "knobs", [dict(knobs) for _, knobs in EXECUTORS],
    ids=[name for name, _ in EXECUTORS],
)
def test_sharded_equals_unsharded(loaded_agency, auction_lf, model,
                                  reference, shards, knobs):
    coordinator = ScatterGatherCoordinator(
        loaded_agency, ShardingSpec(shards),
        probe=model, plan_cache=PlanCache(), **knobs,
    )
    outcome = coordinator.run("src", "tgt", _factory(auction_lf))

    assert _published(outcome.merged_target) == reference
    assert outcome.shards == shards
    assert not outcome.faults
    assert all(session is not None for session in outcome.sessions)

    # Byte accounting reconciles: the total is exactly the per-shard
    # channels, no more, no less.
    per_shard = [
        session.outcome.comm_bytes for session in outcome.sessions
    ]
    assert outcome.per_shard_comm_bytes == per_shard
    assert outcome.comm_bytes == sum(per_shard)

    # Row accounting reconciles: what the shard sessions wrote is the
    # merged target plus the spine replicas gathered away.
    written = sum(
        session.outcome.rows_written for session in outcome.sessions
    )
    assert written == outcome.merged_rows + outcome.duplicate_rows

    # One logical exchange compiles once: K-1 sessions hit the cache.
    assert outcome.cached_sessions == shards - 1


@pytest.mark.parametrize("shards", [2, 3, 8])
def test_prefix_label_strategy_matches(loaded_agency, auction_lf,
                                       model, reference, shards):
    coordinator = ScatterGatherCoordinator(
        loaded_agency, ShardingSpec(shards, "prefix-label"),
        probe=model, plan_cache=PlanCache(),
    )
    outcome = coordinator.run("src", "tgt", _factory(auction_lf))
    assert _published(outcome.merged_target) == reference
    assert outcome.strategy == "prefix-label"


@pytest.mark.parametrize("shards", [1, 4])
def test_reverse_direction(auction_schema, auction_mf, auction_lf,
                           auction_document, model, shards):
    """LF → MF shards just as cleanly (grain auto-resolution is
    direction-agnostic)."""
    source = RelationalEndpoint("S-lf", auction_lf)
    source.load_document(auction_document)
    agency = DiscoveryAgency(auction_schema)
    agency.register("src", auction_lf, source)
    agency.register("tgt", auction_mf)

    plan = agency.negotiate("src", "tgt", probe=model)
    ref_target = RelationalEndpoint("T-ref", auction_mf)
    run_optimized_exchange(
        plan.annotate(), plan.placement, source, ref_target,
        SimulatedChannel(),
    )
    reference = _published(ref_target)

    coordinator = ScatterGatherCoordinator(
        agency, ShardingSpec(shards), probe=model,
        plan_cache=PlanCache(),
    )
    outcome = coordinator.run("src", "tgt", _factory(auction_mf))
    assert _published(outcome.merged_target) == reference


def test_shard_metrics_and_spans(loaded_agency, auction_lf, model):
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

    metrics = MetricsRegistry()
    tracer = Tracer()
    coordinator = ScatterGatherCoordinator(
        loaded_agency, ShardingSpec(3), probe=model,
        plan_cache=PlanCache(), metrics=metrics, tracer=tracer,
    )
    outcome = coordinator.run("src", "tgt", _factory(auction_lf))

    assert metrics.counter("shard.partitions").value == 1
    assert metrics.counter("shard.sessions").value == 3
    assert (metrics.counter("shard.rows.exclusive").value
            == outcome.exclusive_rows)
    assert (metrics.counter("shard.merge.rows").value
            == outcome.merged_rows)
    assert (metrics.counter("shard.merge.duplicates").value
            == outcome.duplicate_rows)
    assert metrics.counter("shard.faults").value == 0

    categories = {span.category for span in tracer.spans}
    assert "shard" in categories
    names = {span.name for span in tracer.spans}
    assert "scatter partition" in names
    assert "gather merge" in names
