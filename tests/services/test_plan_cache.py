"""The negotiated-plan cache: fingerprints, LRU, drift invalidation,
and warm-negotiation equivalence."""

import pytest

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel, CostWeights, MachineProfile
from repro.core.ops.base import Location
from repro.net.transport import SimulatedChannel
from repro.obs.drift import DriftReport, OpDrift
from repro.obs.metrics import MetricsRegistry
from repro.relational.publisher import publish_document
from repro.services.agency import DiscoveryAgency
from repro.services.broker import PlanCache, plan_fingerprint
from repro.services.endpoint import RelationalEndpoint
from repro.services.exchange import run_optimized_exchange


@pytest.fixture
def model(auction_schema):
    return CostModel(StatisticsCatalog.synthetic(auction_schema))


@pytest.fixture
def agency(auction_schema, auction_mf, auction_lf):
    agency = DiscoveryAgency(auction_schema)
    agency.register("s", auction_mf)
    agency.register("t", auction_lf)
    return agency


def _drift_report(ratios):
    """A report whose kind_ratios() equals ``ratios`` exactly."""
    return DriftReport(ops=[
        OpDrift(op_id=i, label=kind, kind=kind,
                location=Location.SOURCE, predicted=1.0,
                measured_seconds=ratio, rows=1)
        for i, (kind, ratio) in enumerate(sorted(ratios.items()))
    ])


class TestFingerprint:
    def test_deterministic(self, auction_mf, auction_lf, model):
        first = plan_fingerprint(auction_mf, auction_lf, model,
                                 "greedy")
        second = plan_fingerprint(auction_mf, auction_lf, model,
                                  "greedy")
        assert first == second

    def test_sensitive_to_setup(self, auction_mf, auction_lf, model):
        base = plan_fingerprint(auction_mf, auction_lf, model,
                                "greedy")
        other_optimizer = plan_fingerprint(
            auction_mf, auction_lf, model, "optimal"
        )
        other_weights = plan_fingerprint(
            auction_mf, auction_lf, model, "greedy",
            CostWeights(computation=2.0, communication=1.0),
        )
        other_knobs = plan_fingerprint(
            auction_mf, auction_lf, model, "greedy",
            knobs={"batch_rows": 64},
        )
        reversed_pair = plan_fingerprint(
            auction_lf, auction_mf, model, "greedy"
        )
        digests = {base.digest, other_optimizer.digest,
                   other_weights.digest, other_knobs.digest,
                   reversed_pair.digest}
        assert len(digests) == 5
        # Same probe, same pair: the cost signature is shared even
        # when the optimizer kind differs.
        assert base.cost_signature == other_optimizer.cost_signature

    def test_sensitive_to_probe(self, auction_mf, auction_lf,
                                auction_schema, model):
        slow = CostModel(
            StatisticsCatalog.synthetic(auction_schema),
            target=MachineProfile("t", speed=0.1),
        )
        base = plan_fingerprint(auction_mf, auction_lf, model,
                                "greedy")
        other = plan_fingerprint(auction_mf, auction_lf, slow,
                                 "greedy")
        assert base.cost_signature != other.cost_signature
        assert base.digest != other.digest


class TestPlanCache:
    def test_miss_put_hit(self, agency, auction_mf, auction_lf,
                          auction_schema, model):
        metrics = MetricsRegistry()
        cache = PlanCache(capacity=4, metrics=metrics)
        fingerprint = plan_fingerprint(auction_mf, auction_lf, model,
                                       "greedy")
        assert cache.load(fingerprint, auction_schema) is None
        plan = agency.negotiate("s", "t", probe=model)
        cache.put(fingerprint, plan.program, plan.placement,
                  estimated_cost=plan.estimated_cost,
                  optimizer="greedy", optimizer_seconds=0.01)
        first = cache.load(fingerprint, auction_schema)
        second = cache.load(fingerprint, auction_schema)
        assert first is not None and second is not None
        program_a, placement_a, entry = first
        program_b, placement_b, _ = second
        # Fresh objects per load — sessions never share a program.
        assert program_a is not program_b
        assert program_a is not plan.program
        program_a.validate_placement(placement_a)

        # Op ids are fresh per deserialized program; compare the
        # location sequence in node order instead.
        def locations(program, placement):
            return [placement[node.op_id] for node in program.nodes]

        assert locations(program_a, placement_a) \
            == locations(program_b, placement_b) \
            == locations(plan.program, plan.placement)
        assert entry.estimated_cost == plan.estimated_cost
        assert cache.stats() == {
            "size": 1, "hits": 2, "misses": 1,
            "evictions": 0, "invalidations": 0,
            "invalidations_explicit": 0, "invalidations_drift": 0,
            "replacements": 0,
        }
        assert metrics.counter("plancache.hits").value == 2
        assert metrics.counter("plancache.misses").value == 1

    def test_lru_eviction(self, agency, auction_mf, auction_lf, model):
        cache = PlanCache(capacity=1)
        plan = agency.negotiate("s", "t", probe=model)
        forward = plan_fingerprint(auction_mf, auction_lf, model,
                                   "greedy")
        variant = plan_fingerprint(auction_mf, auction_lf, model,
                                   "greedy", knobs={"batch_rows": 8})
        cache.put(forward, plan.program, plan.placement,
                  estimated_cost=1.0, optimizer="greedy",
                  optimizer_seconds=0.0)
        cache.put(variant, plan.program, plan.placement,
                  estimated_cost=1.0, optimizer="greedy",
                  optimizer_seconds=0.0)
        assert len(cache) == 1
        assert cache.evictions == 1
        assert cache.get(forward) is None  # evicted, counts a miss
        assert cache.get(variant) is not None

    def test_drift_factor_ignores_uniform_drift(self):
        cache = PlanCache()
        uniform = _drift_report({"scan": 3.0, "combine": 3.0,
                                 "comm": 3.0})
        assert cache.drift_factor(uniform) == pytest.approx(0.0)
        spread = _drift_report({"scan": 1.0, "combine": 4.0})
        assert cache.drift_factor(spread) == pytest.approx(3.0)

    def test_note_drift_invalidates_past_threshold(
            self, agency, auction_mf, auction_lf, model):
        cache = PlanCache()
        plan = agency.negotiate("s", "t", probe=model)
        fingerprint = plan_fingerprint(auction_mf, auction_lf, model,
                                       "greedy")
        cache.put(fingerprint, plan.program, plan.placement,
                  estimated_cost=1.0, optimizer="greedy",
                  optimizer_seconds=0.0)
        mild = _drift_report({"scan": 1.0, "combine": 1.2})
        assert cache.note_drift(mild, threshold=0.5) == 0
        assert len(cache) == 1
        severe = _drift_report({"scan": 1.0, "combine": 4.0})
        dropped = cache.note_drift(
            severe, threshold=0.5,
            cost_signature=fingerprint.cost_signature,
        )
        assert dropped == 1
        assert len(cache) == 0
        assert cache.invalidations == 1


class TestNegotiateWithCache:
    def test_warm_negotiation_skips_optimizer(self, agency, model):
        metrics = MetricsRegistry()
        cache = PlanCache(metrics=metrics)
        cold = agency.negotiate("s", "t", probe=model,
                                plan_cache=cache, metrics=metrics)
        warm = agency.negotiate("s", "t", probe=model,
                                plan_cache=cache, metrics=metrics)
        assert not cold.cached and warm.cached
        assert warm.optimizer_seconds == 0.0
        assert warm.estimated_cost == cold.estimated_cost
        # The acceptance check: a warm hit runs zero optimizations.
        assert metrics.counter("optimizer.runs").value == 1
        assert metrics.counter("optimizer.greedy.runs").value == 1

    def test_drift_invalidation_forces_reoptimization(self, agency,
                                                      model):
        metrics = MetricsRegistry()
        cache = PlanCache(metrics=metrics)
        agency.negotiate("s", "t", probe=model, plan_cache=cache,
                         metrics=metrics)
        cache.note_drift(_drift_report({"scan": 1.0, "combine": 9.0}),
                         threshold=0.5)
        assert len(cache) == 0
        renegotiated = agency.negotiate("s", "t", probe=model,
                                        plan_cache=cache,
                                        metrics=metrics)
        assert not renegotiated.cached
        assert metrics.counter("optimizer.runs").value == 2

    @pytest.mark.parametrize(
        "workers,batch_rows",
        [(1, None), (3, None), (1, 64)],
        ids=["sequential", "parallel", "streaming"],
    )
    def test_warm_plan_writes_identical_fragments(
            self, auction_schema, auction_mf, auction_lf,
            auction_document, model, workers, batch_rows):
        source = RelationalEndpoint("S", auction_mf)
        source.load_document(auction_document)
        agency = DiscoveryAgency(auction_schema)
        agency.register("s", auction_mf, source)
        agency.register("t", auction_lf)
        cache = PlanCache()
        documents = []
        for label in ("cold", "warm"):
            plan = agency.negotiate("s", "t", probe=model,
                                    plan_cache=cache)
            assert plan.cached == (label == "warm")
            target = RelationalEndpoint(f"T-{label}", auction_lf)
            run_optimized_exchange(
                plan.annotate(), plan.placement, source, target,
                SimulatedChannel(), label,
                parallel_workers=workers, batch_rows=batch_rows,
            )
            documents.append(
                publish_document(target.db, target.mapper).document
            )
        assert documents[0] == documents[1]
