"""The multi-session exchange broker: concurrency, admission control,
and serial equivalence."""

import threading

import pytest

from repro.errors import BrokerError, BrokerSaturatedError
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.net.transport import SimulatedChannel
from repro.obs.metrics import MetricsRegistry
from repro.relational.publisher import publish_document
from repro.services.agency import DiscoveryAgency
from repro.services.broker import ExchangeBroker, PlanCache
from repro.services.endpoint import RelationalEndpoint
from repro.services.exchange import run_optimized_exchange


@pytest.fixture
def model(auction_schema):
    return CostModel(StatisticsCatalog.synthetic(auction_schema))


@pytest.fixture
def loaded_agency(auction_schema, auction_mf, auction_lf,
                  auction_document):
    source = RelationalEndpoint("S", auction_mf)
    source.load_document(auction_document)
    agency = DiscoveryAgency(auction_schema)
    agency.register("src", auction_mf, source)
    agency.register("tgt", auction_lf)
    return agency


def _target_factory(fragmentation, collected):
    lock = threading.Lock()

    def make():
        with lock:
            endpoint = RelationalEndpoint(
                f"T{len(collected)}", fragmentation
            )
            collected.append(endpoint)
        return endpoint

    return make


class TestBrokerSessions:
    def test_concurrent_sessions_match_serial(
            self, loaded_agency, auction_lf, model):
        # Serial reference run, no broker involved.
        plan = loaded_agency.negotiate("src", "tgt", probe=model)
        source = loaded_agency.registration("src").endpoint
        reference_target = RelationalEndpoint("ref", auction_lf)
        run_optimized_exchange(
            plan.annotate(), plan.placement, source,
            reference_target, SimulatedChannel(),
        )
        reference = publish_document(
            reference_target.db, reference_target.mapper
        ).document

        targets = []
        with ExchangeBroker(loaded_agency, plan_cache=PlanCache(),
                            max_workers=4, probe=model) as broker:
            sessions = broker.run(
                [("src", "tgt",
                  _target_factory(auction_lf, targets))] * 6
            )
        assert [s.session_id for s in sessions] == list(range(6))
        assert len(targets) == 6
        for target in targets:
            document = publish_document(
                target.db, target.mapper
            ).document
            assert document == reference

    def test_warm_sessions_skip_optimizer(self, loaded_agency,
                                          auction_lf, model):
        metrics = MetricsRegistry()
        cache = PlanCache(metrics=metrics)
        with ExchangeBroker(loaded_agency, plan_cache=cache,
                            max_workers=4, probe=model,
                            metrics=metrics) as broker:
            sessions = broker.run(
                [("src", "tgt", _target_factory(auction_lf, []))] * 5
            )
        assert metrics.counter("optimizer.runs").value == 1
        assert sum(1 for s in sessions if not s.cached) == 1
        assert sum(1 for s in sessions if s.cached) == 4
        for session in sessions:
            if session.cached:
                assert session.optimizer_seconds == 0.0
        # Per-session channels: every session accounted its own wire.
        assert all(
            s.outcome.comm_bytes > 0 for s in sessions
        )

    def test_sessions_without_cache_all_optimize(
            self, loaded_agency, auction_lf, model):
        metrics = MetricsRegistry()
        with ExchangeBroker(loaded_agency, max_workers=2, probe=model,
                            metrics=metrics) as broker:
            broker.run(
                [("src", "tgt", _target_factory(auction_lf, []))] * 3
            )
        assert metrics.counter("optimizer.runs").value == 3

    def test_run_beyond_pending_budget_completes(
            self, loaded_agency, auction_lf, model):
        # run() waits at the admission gate instead of rejecting.
        with ExchangeBroker(loaded_agency, plan_cache=PlanCache(),
                            max_workers=2, max_pending=2,
                            probe=model) as broker:
            sessions = broker.run(
                [("src", "tgt", _target_factory(auction_lf, []))] * 6
            )
        assert len(sessions) == 6
        assert broker.completed == 6


class TestAdmissionControl:
    def test_saturated_submit_rejected(self, loaded_agency, auction_lf,
                                       model):
        release = threading.Event()
        entered = threading.Event()

        def blocking_factory():
            entered.set()
            release.wait(timeout=30)
            return RelationalEndpoint("blocked", auction_lf)

        metrics = MetricsRegistry()
        broker = ExchangeBroker(loaded_agency, max_workers=1,
                                max_pending=1, probe=model,
                                metrics=metrics)
        try:
            future = broker.submit("src", "tgt", blocking_factory)
            assert entered.wait(timeout=30)
            with pytest.raises(BrokerSaturatedError):
                broker.submit(
                    "src", "tgt",
                    lambda: RelationalEndpoint("x", auction_lf),
                )
            assert broker.rejected == 1
            assert metrics.counter("broker.rejected").value == 1
        finally:
            release.set()
            broker.close()
        assert future.result().outcome.rows_written > 0
        assert broker.admitted == 1
        assert broker.completed == 1

    def test_closed_broker_rejects_submissions(self, loaded_agency,
                                               auction_lf, model):
        broker = ExchangeBroker(loaded_agency, probe=model)
        broker.close()
        with pytest.raises(BrokerError, match="closed"):
            broker.submit(
                "src", "tgt",
                lambda: RelationalEndpoint("x", auction_lf),
            )

    def test_endpointless_source_rejected(self, loaded_agency,
                                          auction_lf, model):
        # "tgt" registered without an endpoint: cannot act as source.
        with ExchangeBroker(loaded_agency, probe=model) as broker:
            with pytest.raises(BrokerError, match="endpoint"):
                broker.submit(
                    "tgt", "src",
                    lambda: RelationalEndpoint("x", auction_lf),
                )

    def test_bad_configuration_rejected(self, loaded_agency, model):
        with pytest.raises(ValueError, match="max_workers"):
            ExchangeBroker(loaded_agency, max_workers=0, probe=model)
        with pytest.raises(ValueError, match="max_pending"):
            ExchangeBroker(loaded_agency, max_pending=0, probe=model)

    def test_empty_batch_is_a_no_op(self, loaded_agency, model):
        """The 0-session edge: an empty batch admits nothing, touches
        no counter, and the broker stays usable."""
        metrics = MetricsRegistry()
        with ExchangeBroker(loaded_agency, probe=model,
                            metrics=metrics) as broker:
            assert broker.run([]) == []
            assert broker.admitted == 0
            assert broker.completed == 0
            assert broker.rejected == 0
            assert metrics.counter("broker.admitted").value == 0

    def test_single_session_at_minimum_capacity(self, loaded_agency,
                                                auction_lf, model):
        """The 1-session edge: max_workers=1, max_pending=1 — exactly
        one admission, one completion, no rejection."""
        with ExchangeBroker(loaded_agency, max_workers=1,
                            max_pending=1, probe=model) as broker:
            sessions = broker.run([(
                "src", "tgt",
                lambda: RelationalEndpoint("solo", auction_lf),
            )])
            assert len(sessions) == 1
            assert sessions[0].outcome.rows_written > 0
        assert broker.admitted == 1
        assert broker.completed == 1
        assert broker.rejected == 0
