"""Delta exchange end to end: byte-identity with a full re-exchange on
every dataplane, crash recovery semantics, and brokered delta
sessions reusing the cached plan."""

import pytest

from repro.errors import EndpointError, TransportError
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.core.delta import endpoint_digest
from repro.core.mapping import derive_mapping
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.program.journal import ExchangeJournal
from repro.net.faults import FaultPlan, RetryPolicy
from repro.net.transport import SimulatedChannel
from repro.services.agency import DiscoveryAgency
from repro.services.broker import ExchangeBroker, PlanCache
from repro.services.endpoint import RelationalEndpoint
from repro.services.exchange import run_optimized_exchange
from repro.workloads.mutate import mutate_endpoint

DATAPLANES = {
    "materialized": {},
    "parallel": {"parallel_workers": 3},
    "streaming": {"batch_rows": 64},
    "columnar": {"batch_rows": 64, "columnar": True},
}


def _setup(source_frag, target_frag, document, name="delta-src"):
    source = RelationalEndpoint(name, source_frag)
    source.load_document(document)
    source.enable_versioning()
    program = build_transfer_program(
        derive_mapping(source_frag, target_frag)
    )
    return source, program, source_heavy_placement(program)


def _digest(endpoint, fragmentation):
    return endpoint_digest(endpoint, list(fragmentation))


class TestDeltaByteIdentity:
    @pytest.mark.parametrize("dataplane", DATAPLANES)
    def test_merged_target_matches_full_re_exchange(
            self, auction_mf, auction_lf, auction_document,
            dataplane):
        knobs = DATAPLANES[dataplane]
        source, program, placement = _setup(
            auction_mf, auction_lf, auction_document
        )
        journal = ExchangeJournal()
        target = RelationalEndpoint("delta-tgt", auction_lf)
        full = run_optimized_exchange(
            program, placement, source, target, SimulatedChannel(),
            journal=journal, **knobs,
        )
        mutate_endpoint(source, 0.1, seed=21, delete_fraction=0.02)
        delta = run_optimized_exchange(
            program, placement, source, target, SimulatedChannel(),
            journal=journal, delta=True, **knobs,
        )
        reference = RelationalEndpoint("delta-ref", auction_lf)
        run_optimized_exchange(
            program, placement, source, reference,
            SimulatedChannel(), **knobs,
        )
        assert _digest(target, auction_lf) \
            == _digest(reference, auction_lf)
        assert delta.delta
        assert delta.delta_changed_rows > 0
        assert delta.delta_shipped_rows < delta.delta_total_rows
        assert delta.comm_bytes < full.comm_bytes
        assert journal.last_sync_version() == source.versions.current

    def test_coarse_deletes_reach_the_fine_target(
            self, auction_mf, auction_lf, auction_document):
        source, program, placement = _setup(
            auction_lf, auction_mf, auction_document, "delta-src-lf"
        )
        journal = ExchangeJournal()
        target = RelationalEndpoint("delta-tgt-mf", auction_mf)
        run_optimized_exchange(
            program, placement, source, target, SimulatedChannel(),
            journal=journal,
        )
        mutate_endpoint(source, 0.0, seed=5, delete_fraction=0.05)
        delta = run_optimized_exchange(
            program, placement, source, target, SimulatedChannel(),
            journal=journal, delta=True,
        )
        reference = RelationalEndpoint("delta-ref-mf", auction_mf)
        run_optimized_exchange(
            program, placement, source, reference, SimulatedChannel()
        )
        assert delta.delta_deleted_rows > 0
        assert _digest(target, auction_mf) \
            == _digest(reference, auction_mf)

    def test_empty_delta_ships_nothing(self, auction_mf, auction_lf,
                                       auction_document):
        source, program, placement = _setup(
            auction_mf, auction_lf, auction_document
        )
        journal = ExchangeJournal()
        target = RelationalEndpoint("delta-tgt", auction_lf)
        run_optimized_exchange(
            program, placement, source, target, SimulatedChannel(),
            journal=journal,
        )
        before = _digest(target, auction_lf)
        delta = run_optimized_exchange(
            program, placement, source, target, SimulatedChannel(),
            journal=journal, delta=True,
        )
        assert delta.delta_changed_rows == 0
        assert delta.delta_shipped_rows == 0
        assert delta.rows_written == 0
        assert _digest(target, auction_lf) == before


class TestDeltaGuards:
    def test_requires_versioned_source(self, auction_mf, auction_lf,
                                       auction_document):
        source = RelationalEndpoint("bare-src", auction_mf)
        source.load_document(auction_document)
        program = build_transfer_program(
            derive_mapping(auction_mf, auction_lf)
        )
        target = RelationalEndpoint("bare-tgt", auction_lf)
        with pytest.raises(EndpointError, match="versioning"):
            run_optimized_exchange(
                program, source_heavy_placement(program), source,
                target, SimulatedChannel(), delta=True,
            )

    def test_adaptive_combination_rejected(
            self, auction_schema, auction_mf, auction_lf,
            auction_document):
        from repro.adapt import AdaptiveConfig

        source, program, placement = _setup(
            auction_mf, auction_lf, auction_document
        )
        target = RelationalEndpoint("adaptive-tgt", auction_lf)
        config = AdaptiveConfig(
            probe=CostModel(
                StatisticsCatalog.synthetic(auction_schema)
            )
        )
        with pytest.raises(ValueError, match="adaptive"):
            run_optimized_exchange(
                program, placement, source, target,
                SimulatedChannel(), delta=True, adaptive=config,
            )


class TestDeltaCrashRecovery:
    def test_unfinished_run_never_advances_high_water(
            self, auction_mf, auction_lf, auction_document):
        source, program, placement = _setup(
            auction_mf, auction_lf, auction_document
        )
        journal = ExchangeJournal()
        target = RelationalEndpoint("crash-tgt", auction_lf)
        run_optimized_exchange(
            program, placement, source, target, SimulatedChannel(),
            journal=journal,
        )
        synced = journal.last_sync_version()
        assert synced == source.versions.current
        mutate_endpoint(source, 0.1, seed=8, delete_fraction=0.02)
        # The delta run dies on the wire: every send drops and the
        # retry budget is too small to heal it.
        with pytest.raises(TransportError):
            run_optimized_exchange(
                program, placement, source, target,
                SimulatedChannel(),
                journal=journal, delta=True,
                fault_plan=FaultPlan(drop=1.0, seed=3),
                retry_policy=RetryPolicy(max_attempts=2),
            )
        # The high-water mark still points at the last *completed*
        # sync, so the retry re-covers the whole window.
        assert journal.last_sync_version() == synced
        healed = run_optimized_exchange(
            program, placement, source, target, SimulatedChannel(),
            journal=journal, delta=True,
        )
        assert healed.delta_since == synced
        reference = RelationalEndpoint("crash-ref", auction_lf)
        run_optimized_exchange(
            program, placement, source, reference, SimulatedChannel()
        )
        assert _digest(target, auction_lf) \
            == _digest(reference, auction_lf)
        assert journal.last_sync_version() == source.versions.current


class TestBrokeredDeltaSessions:
    def test_delta_session_reuses_cached_plan(
            self, auction_schema, auction_mf, auction_lf,
            auction_document):
        source = RelationalEndpoint("broker-src", auction_mf)
        source.load_document(auction_document)
        source.enable_versioning()
        agency = DiscoveryAgency(auction_schema)
        agency.register("src", auction_mf, source)
        agency.register("tgt", auction_lf)
        model = CostModel(StatisticsCatalog.synthetic(auction_schema))
        journal = ExchangeJournal()
        target = RelationalEndpoint("broker-tgt", auction_lf)
        with ExchangeBroker(agency, plan_cache=PlanCache(),
                            probe=model) as broker:
            first = broker.submit(
                "src", "tgt", lambda: target, journal=journal,
            ).result()
            mutate_endpoint(source, 0.1, seed=13)
            second = broker.submit(
                "src", "tgt", lambda: target, delta=True,
                journal=journal,
            ).result()
        # Delta is not a plan knob: the delta session hits the plan
        # cached by its full predecessor.
        assert not first.cached
        assert second.cached
        assert second.outcome.delta
        assert second.outcome.comm_bytes < first.outcome.comm_bytes
        reference = RelationalEndpoint("broker-ref", auction_lf)
        program = build_transfer_program(
            derive_mapping(auction_mf, auction_lf)
        )
        run_optimized_exchange(
            program, source_heavy_placement(program), source,
            reference, SimulatedChannel(),
        )
        assert _digest(target, auction_lf) \
            == _digest(reference, auction_lf)
