"""End-to-end exchange runs: optimized DE and publish&map."""

import pytest

from repro.core.optimizer.placement import source_heavy_placement
from repro.core.mapping import derive_mapping
from repro.core.program.builder import build_transfer_program
from repro.net.transport import SimulatedChannel
from repro.relational.publisher import publish_document
from repro.services.endpoint import RelationalEndpoint
from repro.services.exchange import (
    run_optimized_exchange,
    run_publish_and_map,
)


@pytest.fixture
def loaded_source(auction_mf, auction_document):
    source = RelationalEndpoint("S", auction_mf)
    source.load_document(auction_document)
    return source


def de_outcome(source, target_fragmentation, scenario="x", **kwargs):
    target = RelationalEndpoint(
        f"T-{scenario}", target_fragmentation
    )
    program = build_transfer_program(
        derive_mapping(source.fragmentation, target_fragmentation)
    )
    placement = source_heavy_placement(program)
    outcome = run_optimized_exchange(
        program, placement, source, target, SimulatedChannel(),
        scenario, **kwargs,
    )
    return outcome, target


class TestOptimizedExchange:
    def test_step_accounting(self, loaded_source, auction_lf):
        outcome, _ = de_outcome(loaded_source, auction_lf)
        assert outcome.method == "DE"
        assert outcome.steps["source_processing"] > 0
        assert outcome.steps["communication"] > 0
        assert outcome.steps["loading"] > 0
        assert outcome.steps["shredding"] == 0.0  # DE never shreds
        assert outcome.total_seconds == pytest.approx(
            sum(outcome.steps.values())
        )

    def test_target_populated(self, loaded_source, auction_lf):
        outcome, target = de_outcome(loaded_source, auction_lf)
        assert outcome.rows_written == target.total_rows()
        assert outcome.indexes_built > 0

    def test_data_processing_excludes_comm(self, loaded_source,
                                           auction_lf):
        outcome, _ = de_outcome(loaded_source, auction_lf)
        assert outcome.data_processing_seconds == pytest.approx(
            outcome.total_seconds - outcome.steps["communication"]
        )

    def test_breakdown_text(self, loaded_source, auction_lf):
        outcome, _ = de_outcome(loaded_source, auction_lf)
        assert "DE" in outcome.breakdown()
        assert "source_processing" in outcome.breakdown()


class TestStreamingExchange:
    def test_streaming_matches_materialized(self, loaded_source,
                                            auction_lf):
        materialized, mat_target = de_outcome(
            loaded_source, auction_lf, "mat"
        )
        streaming, stream_target = de_outcome(
            loaded_source, auction_lf, "stream", batch_rows=16
        )
        assert materialized.batch_rows is None
        assert streaming.batch_rows == 16
        assert streaming.rows_written == materialized.rows_written
        for fragment in auction_lf:
            expected = mat_target.scan(fragment)
            got = stream_target.scan(fragment)
            assert [(row.eid, row.parent) for row in got.rows] == \
                [(row.eid, row.parent) for row in expected.rows]

    def test_peaks_populated_and_bounded(self, loaded_source,
                                         auction_lf):
        materialized, _ = de_outcome(loaded_source, auction_lf, "m2")
        streaming, _ = de_outcome(
            loaded_source, auction_lf, "s2", batch_rows=8
        )
        assert materialized.peak_resident_rows > 0
        assert 0 < streaming.peak_resident_rows \
            < materialized.peak_resident_rows
        assert 0 < streaming.peak_resident_bytes \
            < materialized.peak_resident_bytes

    def test_parallel_streaming_wiring(self, loaded_source,
                                       auction_lf):
        streaming, target = de_outcome(
            loaded_source, auction_lf, "ps", batch_rows=16,
            parallel_workers=2,
        )
        assert streaming.batch_rows == 16
        assert streaming.rows_written == target.total_rows()
        assert streaming.peak_resident_rows > 0


class TestPublishAndMap:
    def test_step_accounting(self, loaded_source, auction_lf):
        target = RelationalEndpoint("PMT", auction_lf)
        outcome = run_publish_and_map(
            loaded_source, target, SimulatedChannel(), "pm"
        )
        assert outcome.method == "PM"
        assert outcome.steps["shredding"] > 0
        assert outcome.steps["target_processing"] == 0.0
        assert outcome.comm_bytes > 0
        assert outcome.rows_written == target.total_rows()


class TestEquivalence:
    """DE and PM must produce identical target databases."""

    @pytest.mark.parametrize("target_kind", ["mf", "lf"])
    def test_same_target_content(self, loaded_source, auction_mf,
                                 auction_lf, target_kind):
        fragmentation = (
            auction_mf if target_kind == "mf" else auction_lf
        )
        _, de_target = de_outcome(
            loaded_source, fragmentation, f"de-{target_kind}"
        )
        pm_target = RelationalEndpoint(
            f"pm-{target_kind}", fragmentation
        )
        run_publish_and_map(
            loaded_source, pm_target, SimulatedChannel()
        )
        de_doc = publish_document(
            de_target.db, de_target.mapper
        ).document
        pm_doc = publish_document(
            pm_target.db, pm_target.mapper
        ).document
        assert de_doc == pm_doc

    def test_round_trip_to_source_document(self, loaded_source,
                                           auction_lf):
        _, de_target = de_outcome(loaded_source, auction_lf, "rt")
        republished = publish_document(
            de_target.db, de_target.mapper
        ).document
        original = publish_document(
            loaded_source.db, loaded_source.mapper
        ).document
        assert republished == original

    def test_wire_format_channel_same_content(self, loaded_source,
                                              auction_lf):
        target = RelationalEndpoint("wire", auction_lf)
        program = build_transfer_program(
            derive_mapping(loaded_source.fragmentation, auction_lf)
        )
        placement = source_heavy_placement(program)
        run_optimized_exchange(
            program, placement, loaded_source, target,
            SimulatedChannel(wire_format=True), "wire",
        )
        original = publish_document(
            loaded_source.db, loaded_source.mapper
        ).document
        assert publish_document(
            target.db, target.mapper
        ).document == original


class TestObservabilityWiring:
    def test_traced_de_run_covers_all_phases(self, loaded_source,
                                             auction_lf):
        from repro.obs import MetricsRegistry, Tracer

        tracer = Tracer()
        metrics = MetricsRegistry()
        outcome, _ = de_outcome(
            loaded_source, auction_lf, scenario="traced",
            tracer=tracer, metrics=metrics,
        )
        assert outcome.total_seconds > 0
        assert tracer.spans_of("op") and tracer.spans_of("ship")
        steps = {span.name for span in tracer.spans_of("step")}
        assert {"execute program", "indexing"} <= steps
        assert metrics.counter("ship.messages").value > 0
        assert metrics.histogram("op.scan.seconds").count > 0

    def test_traced_pm_run_records_steps(self, loaded_source,
                                         auction_lf):
        from repro.obs import Tracer

        tracer = Tracer()
        target = RelationalEndpoint("pm-traced", auction_lf)
        run_publish_and_map(
            loaded_source, target, SimulatedChannel(), tracer=tracer
        )
        steps = {span.name for span in tracer.spans_of("step")}
        assert {"publish", "ship document", "shred", "load",
                "indexing"} <= steps

    def test_lossy_run_attributes_retries_per_edge(self,
                                                   loaded_source,
                                                   auction_lf):
        from repro.net.faults import FaultPlan, RetryPolicy

        outcome, _ = de_outcome(
            loaded_source, auction_lf, scenario="lossy",
            batch_rows=32,
            fault_plan=FaultPlan(drop=0.25, seed=11),
            retry_policy=RetryPolicy(
                max_attempts=6, sleep=lambda d: None
            ),
        )
        assert outcome.faults_injected > 0
        assert outcome.retries > 0
        # Per-edge counts are a partition of the run total.
        assert sum(outcome.retries_by_edge.values()) == outcome.retries
        assert sum(
            outcome.redelivered_by_edge.values()
        ) == outcome.redelivered_batches
        assert all(
            isinstance(edge, tuple) for edge in outcome.retries_by_edge
        )
