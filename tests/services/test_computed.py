"""Computed fragments (the TotalMRCService idea of Section 1.1)."""

import pytest

from repro.errors import EndpointError
from repro.core.fragment import Fragment
from repro.core.fragmentation import Fragmentation
from repro.core.instance import ElementData, FragmentInstance, FragmentRow
from repro.core.mapping import derive_mapping
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import ProgramExecutor
from repro.core.optimizer.placement import source_heavy_placement
from repro.relational.engine import Database
from repro.schema.dtd import parse_dtd
from repro.services.computed import ComputedFragmentSource, sql_provider
from repro.services.endpoint import InMemoryEndpoint

#: The customer schema extended with the computed TotalMRC element.
MRC_DTD = """
<!ELEMENT Customer (CustName, Line*, TotalMRC)>
<!ELEMENT CustName (#PCDATA)>
<!ELEMENT Line (TelNo)>
<!ELEMENT TelNo (#PCDATA)>
<!ELEMENT TotalMRC (#PCDATA)>
"""


@pytest.fixture
def setup():
    schema = parse_dtd(MRC_DTD)
    source_fragmentation = Fragmentation(
        schema,
        [
            Fragment(schema, ["Customer", "CustName"], "Customer"),
            Fragment(schema, ["Line", "TelNo"], "Line"),
            Fragment(schema, ["TotalMRC"], "TotalMRC"),
        ],
        "S",
    )
    # Stored data: two customers with lines.
    inner = InMemoryEndpoint("sales")
    customers = []
    lines = []
    eid = 1

    def make(name, text=""):
        nonlocal eid
        data = ElementData(name, eid, text=text)
        eid += 1
        return data

    for index in range(2):
        customer = make("Customer")
        customer.add_child(make("CustName", f"cust{index}"))
        customers.append(FragmentRow(customer, None))
        for _ in range(index + 1):
            line = make("Line")
            line.add_child(make("TelNo", "555"))
            lines.append(FragmentRow(line, customer.eid))
    inner.put(FragmentInstance(
        source_fragmentation.fragment("Customer"), customers
    ))
    inner.put(FragmentInstance(
        source_fragmentation.fragment("Line"), lines
    ))

    # The hidden billing database behind TotalMRCService.
    billing = Database("billing")
    billing.execute(
        "CREATE TABLE charges (custkey INTEGER, mrc REAL)"
    )
    customer_eids = [row.eid for row in customers]
    billing.execute(
        f"INSERT INTO charges VALUES ({customer_eids[0]}, 10.5),"
        f" ({customer_eids[0]}, 4.5), ({customer_eids[1]}, 20.0)"
    )
    provider = sql_provider(
        billing,
        "SELECT custkey, SUM(mrc) FROM charges GROUP BY custkey",
    )
    source = ComputedFragmentSource(inner, {"TotalMRC": provider})
    return schema, source_fragmentation, source, customer_eids


class TestComputedFragmentSource:
    def test_computed_scan(self, setup):
        _, fragmentation, source, customer_eids = setup
        instance = source.scan(fragmentation.fragment("TotalMRC"))
        by_parent = {row.parent: row.data.text for row in instance.rows}
        assert by_parent == {
            customer_eids[0]: "15.0", customer_eids[1]: "20.0",
        }

    def test_stored_scans_pass_through(self, setup):
        _, fragmentation, source, _ = setup
        assert source.scan(
            fragmentation.fragment("Customer")
        ).row_count() == 2

    def test_full_exchange_inlines_computed_values(self, setup):
        schema, fragmentation, source, _ = setup
        target_fragmentation = Fragmentation.whole_document(schema)
        program = build_transfer_program(
            derive_mapping(fragmentation, target_fragmentation)
        )
        target = InMemoryEndpoint("target")
        ProgramExecutor(source, target).run(
            program, source_heavy_placement(program)
        )
        (documents,) = target.store.values()
        for row in documents.rows:
            totals = [
                node.text
                for node in row.data.occurrences_of("TotalMRC")
            ]
            assert len(totals) == 1 and float(totals[0]) > 0

    def test_provider_fragment_mismatch_detected(self, setup):
        schema, fragmentation, source, _ = setup
        wrong = Fragment(schema, ["CustName"], "Wrong")

        def bad_provider(fragment):
            return FragmentInstance(wrong, [])

        bad = ComputedFragmentSource(
            source, {"TotalMRC": bad_provider}
        )
        with pytest.raises(EndpointError, match="produced"):
            bad.scan(fragmentation.fragment("TotalMRC"))

    def test_sql_provider_validations(self, setup):
        schema, fragmentation, _, _ = setup
        db = Database("x")
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER, c INTEGER)")
        three_columns = sql_provider(db, "SELECT * FROM t")
        with pytest.raises(EndpointError, match="parent_eid"):
            three_columns(fragmentation.fragment("TotalMRC"))
        two_element = Fragment(
            schema, ["Line", "TelNo"], "Line2"
        )
        ok_query = sql_provider(db, "SELECT a, b FROM t")
        with pytest.raises(EndpointError, match="single-element"):
            ok_query(two_element)
