"""Service arguments: selection pushdown (Section 3.2)."""

import pytest

from repro.errors import EndpointError
from repro.core.mapping import derive_mapping
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import ProgramExecutor
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.core.optimizer.greedy import greedy_placement
from repro.services.endpoint import InMemoryEndpoint
from repro.services.selection import SelectiveEndpoint, ServiceArgument
from repro.workloads.customer import fragment_customers


@pytest.fixture
def sales(customers_s, customer_documents):
    endpoint = InMemoryEndpoint("sales")
    for instance in fragment_customers(
        customer_documents, customers_s
    ).values():
        endpoint.put(instance)
    return endpoint


def pick_service_name(customer_documents):
    """A ServiceName value present in the data."""
    for document in customer_documents:
        for node in document.occurrences_of("ServiceName"):
            return node.text
    raise AssertionError("no services generated")


class TestServiceArgument:
    def test_leaf_equals(self, customer_documents):
        value = pick_service_name(customer_documents)
        argument = ServiceArgument.leaf_equals(
            "Order", "ServiceName", value
        )
        kept = [
            order
            for document in customer_documents
            for order in document.occurrences_of("Order")
            if argument.predicate(order)
        ]
        assert kept
        for order in kept:
            names = {
                node.text
                for node in order.occurrences_of("ServiceName")
            }
            assert value in names

    def test_leaf_contains(self, customer_documents):
        argument = ServiceArgument.leaf_contains(
            "Customer", "CustName", "#0"
        )
        matches = [
            document for document in customer_documents
            if argument.predicate(document)
        ]
        assert len(matches) == 1


class TestSelectiveEndpoint:
    def test_filters_anchor_fragment(self, sales, customers_s,
                                     customer_documents):
        argument = ServiceArgument.leaf_contains(
            "Customer", "CustName", "#0"
        )
        view = SelectiveEndpoint(sales, customers_s, argument)
        customers = view.scan(customers_s.fragment("Customer"))
        assert customers.row_count() == 1

    def test_cascade_removes_descendants(self, sales, customers_s,
                                         customer_documents):
        argument = ServiceArgument.leaf_contains(
            "Customer", "CustName", "#0"
        )
        view = SelectiveEndpoint(sales, customers_s, argument)
        kept_document = next(
            document for document in customer_documents
            if "#0" in document.child_list("CustName")[0].text
        )
        orders = view.scan(customers_s.fragment("Order"))
        assert orders.row_count() == len(
            kept_document.child_list("Order")
        )
        switches = view.scan(customers_s.fragment("Switch"))
        expected_switches = sum(
            1 for _ in kept_document.occurrences_of("Switch")
        )
        assert switches.row_count() == expected_switches

    def test_unfiltered_scan_unchanged_for_all(self, sales,
                                               customers_s,
                                               customer_documents):
        # A predicate that keeps everything changes nothing.
        argument = ServiceArgument(
            "Customer", lambda row: True
        )
        view = SelectiveEndpoint(sales, customers_s, argument)
        for fragment in customers_s:
            assert view.scan(fragment).row_count() == \
                sales.scan(fragment).row_count()

    def test_exchange_over_filtered_view(self, sales, customers_s,
                                         customers_t, customers_schema,
                                         customer_documents):
        argument = ServiceArgument.leaf_contains(
            "Customer", "CustName", "#0"
        )
        view = SelectiveEndpoint(sales, customers_s, argument)
        target = InMemoryEndpoint("target")
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        model = CostModel(StatisticsCatalog.synthetic(customers_schema))
        placement = greedy_placement(program, model)
        ProgramExecutor(view, target).run(program, placement)
        assert target.store["Customer"].row_count() == 1
        # Consistency: every Feature row's parent line exists.
        line_eids = {
            node.eid
            for row in target.store["Line_Switch"].rows
            for node in row.data.occurrences_of("Line")
        }
        for row in target.store["Feature"].rows:
            assert row.parent in line_eids

    def test_non_root_argument_rejected(self, sales, customers_s):
        argument = ServiceArgument.leaf_equals(
            "Switch", "SwitchID", "SW1"
        )
        # Switch IS a fragment root in S; use an internal element.
        internal = ServiceArgument.leaf_equals(
            "TelNo", "TelNo", "x"
        )
        with pytest.raises(EndpointError, match="fragment root"):
            SelectiveEndpoint(sales, customers_s, internal)

    def test_write_rejected(self, sales, customers_s,
                            customer_documents):
        argument = ServiceArgument("Customer", lambda row: True)
        view = SelectiveEndpoint(sales, customers_s, argument)
        feeds = fragment_customers(customer_documents, customers_s)
        with pytest.raises(EndpointError, match="read-only"):
            view.write(customers_s.fragment("Order"), feeds["Order"])

    def test_probe_passthrough(self, sales, customers_s,
                               customers_schema):
        from repro.core.ops.scan import Scan

        sales.use_statistics(
            StatisticsCatalog.synthetic(customers_schema)
        )
        argument = ServiceArgument("Customer", lambda row: True)
        view = SelectiveEndpoint(sales, customers_s, argument)
        scan = Scan(customers_s.fragment("Order"))
        assert view.estimate_cost(scan) == sales.estimate_cost(scan)
