"""Fault matrix for sharded exchange: one shard's channel is lossy,
its siblings are clean.  With a retry policy the coordinator heals to
byte-identity; without one it surfaces the fault per shard — strict
mode raising, lenient mode returning the partial outcome — and never
corrupts the surviving shards.

Marked ``faults``: tier-1 deselects this module (see pyproject.toml).
"""

import pytest

from repro.errors import ShardFaultError
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.net.faults import FaultPlan, RetryPolicy
from repro.relational.publisher import publish_document
from repro.services.agency import DiscoveryAgency
from repro.services.broker import PlanCache
from repro.services.endpoint import RelationalEndpoint
from repro.services.shard import ScatterGatherCoordinator, ShardingSpec

pytestmark = pytest.mark.faults

LOSSY = FaultPlan(drop=0.10, corrupt=0.05, seed=11)
SHARDS = 3
FAULTY = 1


@pytest.fixture(scope="module")
def model(auction_schema):
    return CostModel(StatisticsCatalog.synthetic(auction_schema))


@pytest.fixture(scope="module")
def loaded_agency(auction_schema, auction_mf, auction_lf,
                  auction_document):
    source = RelationalEndpoint("S", auction_mf)
    source.load_document(auction_document)
    agency = DiscoveryAgency(auction_schema)
    agency.register("src", auction_mf, source)
    agency.register("tgt", auction_lf)
    return agency


@pytest.fixture(scope="module")
def reference(loaded_agency, auction_lf, model):
    coordinator = ScatterGatherCoordinator(
        loaded_agency, ShardingSpec(1), probe=model,
        plan_cache=PlanCache(),
    )
    outcome = coordinator.run(
        "src", "tgt",
        lambda index: RelationalEndpoint(f"R{index}", auction_lf),
    )
    target = outcome.merged_target
    return publish_document(target.db, target.mapper).document


def _factory(fragmentation):
    def make(index):
        return RelationalEndpoint(f"T{index}", fragmentation)

    return make


def test_retry_heals_the_faulty_shard(loaded_agency, auction_lf,
                                      model, reference):
    coordinator = ScatterGatherCoordinator(
        loaded_agency, ShardingSpec(SHARDS), probe=model,
        plan_cache=PlanCache(),
        fault_plans={FAULTY: LOSSY},
        retry_policy=RetryPolicy(max_attempts=8,
                                 sleep=lambda _: None),
    )
    outcome = coordinator.run("src", "tgt", _factory(auction_lf))
    assert not outcome.faults
    published = publish_document(
        outcome.merged_target.db, outcome.merged_target.mapper
    ).document
    assert published == reference


def test_unhealed_fault_is_surfaced_per_shard(loaded_agency,
                                              auction_lf, model):
    from repro.obs.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    coordinator = ScatterGatherCoordinator(
        loaded_agency, ShardingSpec(SHARDS), probe=model,
        plan_cache=PlanCache(),
        fault_plans={FAULTY: LOSSY},
        metrics=metrics,
    )
    with pytest.raises(ShardFaultError) as excinfo:
        coordinator.run("src", "tgt", _factory(auction_lf))
    error = excinfo.value
    assert set(error.faults) == {FAULTY}
    assert metrics.counter("shard.faults").value == 1

    # The partial outcome rides on the exception: the siblings ran to
    # completion, only the faulty shard is missing.
    outcome = error.outcome
    assert outcome is not None
    assert set(outcome.faults) == {FAULTY}
    assert outcome.sessions[FAULTY] is None
    survivors = [
        session for index, session in enumerate(outcome.sessions)
        if index != FAULTY
    ]
    assert all(session is not None for session in survivors)
    assert all(
        session.outcome.rows_written > 0 for session in survivors
    )
    assert outcome.per_shard_comm_bytes[FAULTY] == 0


def test_lenient_mode_returns_partial_outcome(loaded_agency,
                                              auction_lf, model,
                                              reference):
    coordinator = ScatterGatherCoordinator(
        loaded_agency, ShardingSpec(SHARDS), probe=model,
        plan_cache=PlanCache(),
        fault_plans={FAULTY: LOSSY},
        strict=False,
    )
    outcome = coordinator.run("src", "tgt", _factory(auction_lf))
    assert set(outcome.faults) == {FAULTY}
    # The survivors' rows were still gathered — a strict subset of the
    # unsharded answer, never garbage.
    assert 0 < outcome.merged_rows
    published = publish_document(
        outcome.merged_target.db, outcome.merged_target.mapper
    ).document
    assert published != reference  # one shard's grain rows are absent


def test_all_shards_faulty_without_retry(loaded_agency, auction_lf,
                                         model):
    coordinator = ScatterGatherCoordinator(
        loaded_agency, ShardingSpec(SHARDS), probe=model,
        plan_cache=PlanCache(),
        fault_plans={
            index: FaultPlan(drop=0.5, seed=100 + index)
            for index in range(SHARDS)
        },
    )
    with pytest.raises(ShardFaultError) as excinfo:
        coordinator.run("src", "tgt", _factory(auction_lf))
    assert set(excinfo.value.faults) == set(range(SHARDS))


def test_every_shard_lossy_with_retry_still_heals(loaded_agency,
                                                  auction_lf, model,
                                                  reference):
    coordinator = ScatterGatherCoordinator(
        loaded_agency, ShardingSpec(SHARDS), probe=model,
        plan_cache=PlanCache(),
        fault_plans={
            index: FaultPlan(drop=0.10, corrupt=0.05,
                             seed=40 + index)
            for index in range(SHARDS)
        },
        retry_policy=RetryPolicy(max_attempts=8,
                                 sleep=lambda _: None),
    )
    outcome = coordinator.run("src", "tgt", _factory(auction_lf))
    assert not outcome.faults
    published = publish_document(
        outcome.merged_target.db, outcome.merged_target.mapper
    ).document
    assert published == reference
