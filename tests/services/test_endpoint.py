"""System endpoints: scan/write/cost-probe behaviour."""

import math

import pytest

from repro.errors import EndpointError
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import MachineProfile
from repro.core.fragment import Fragment
from repro.core.ops import Combine, Scan, Write
from repro.services.endpoint import (
    DirectoryEndpoint,
    InMemoryEndpoint,
    RelationalEndpoint,
    statistics_from_store,
)
from repro.workloads.customer import fragment_customers
from repro.xmlkit.writer import serialize


class TestInMemoryEndpoint:
    def test_scan_returns_copies(self, customers_s, customer_documents):
        endpoint = InMemoryEndpoint("m")
        feeds = fragment_customers(customer_documents, customers_s)
        endpoint.put(feeds["Order"])
        first = endpoint.scan(customers_s.fragment("Order"))
        first.rows.clear()
        second = endpoint.scan(customers_s.fragment("Order"))
        assert second.row_count() == feeds["Order"].row_count()

    def test_missing_fragment(self, customers_s):
        endpoint = InMemoryEndpoint("m")
        with pytest.raises(EndpointError):
            endpoint.scan(customers_s.fragment("Order"))

    def test_scan_stream_returns_copies(self, customers_s,
                                        customer_documents):
        endpoint = InMemoryEndpoint("m")
        feeds = fragment_customers(customer_documents, customers_s)
        endpoint.put(feeds["Order"])
        fragment = customers_s.fragment("Order")
        for batch in endpoint.scan_stream(fragment, 2):
            for row in batch.rows:
                row.data.attrs["mutated"] = "yes"
        clean = endpoint.scan(fragment)
        assert all(
            "mutated" not in row.data.attrs for row in clean.rows
        )

    def test_scan_stream_missing_fragment(self, customers_s):
        endpoint = InMemoryEndpoint("m")
        with pytest.raises(EndpointError):
            endpoint.scan_stream(customers_s.fragment("Order"), 2)

    def test_write_stream_round_trip(self, customers_s,
                                     customer_documents):
        from repro.core.stream import FragmentStream

        feeds = fragment_customers(customer_documents, customers_s)
        fragment = customers_s.fragment("Order")
        endpoint = InMemoryEndpoint("m")
        endpoint.write_stream(
            fragment, FragmentStream.from_instance(feeds["Order"], 2)
        )
        assert endpoint.scan(fragment).row_count() == \
            feeds["Order"].row_count()


class TestRelationalEndpoint:
    def test_load_scan_round_trip(self, auction_mf, auction_document):
        endpoint = RelationalEndpoint("S", auction_mf)
        loaded = endpoint.load_document(auction_document)
        assert loaded == endpoint.total_rows()
        item = auction_mf.fragment_of("item")
        assert endpoint.scan(item).row_count() > 0

    def test_write_appends(self, auction_mf, auction_lf,
                           auction_document):
        source = RelationalEndpoint("S", auction_mf)
        source.load_document(auction_document)
        target = RelationalEndpoint("T", auction_mf)
        fragment = auction_mf.fragment_of("item")
        target.write(fragment, source.scan(fragment))
        assert target.total_rows() == source.scan(
            fragment
        ).row_count()
        target.reset_storage()
        assert target.total_rows() == 0

    def test_stream_round_trip_matches_materialized(self, auction_mf,
                                                    auction_document):
        """scan_stream batches concatenate to the scan feed, and
        write_stream loads them identically to write."""
        source = RelationalEndpoint("S", auction_mf)
        source.load_document(auction_document)
        fragment = auction_mf.fragment_of("item")
        streamed_rows = [
            row
            for batch in source.scan_stream(fragment, 7)
            for row in batch.rows
        ]
        materialized = source.scan(fragment)
        schema = fragment.schema
        assert [
            serialize(row.data.to_xml(schema))
            for row in streamed_rows
        ] == [
            serialize(row.data.to_xml(schema))
            for row in materialized.rows
        ]

        from repro.core.stream import FragmentStream

        target = RelationalEndpoint("T", auction_mf)
        target.write_stream(
            fragment, FragmentStream.from_instance(materialized, 7)
        )
        assert target.total_rows() == len(streamed_rows)

    def test_statistics_measured_from_store(self, auction_mf,
                                            auction_document):
        endpoint = RelationalEndpoint("S", auction_mf)
        endpoint.load_document(auction_document)
        stats = endpoint.statistics()
        items = sum(
            1 for node in auction_document.iter_all()
            if node.name == "item"
        )
        assert stats.count("item") == items
        assert stats.count("site") == 1

    def test_probe_uses_machine_speed(self, auction_mf,
                                      auction_document):
        slow = RelationalEndpoint("S", auction_mf)
        slow.load_document(auction_document)
        fast = RelationalEndpoint(
            "F", auction_mf, machine=MachineProfile("f", speed=4.0)
        )
        fast.use_statistics(slow.statistics())
        scan = Scan(auction_mf.fragment_of("item"))
        assert fast.estimate_cost(scan) == pytest.approx(
            slow.estimate_cost(scan) / 4.0
        )

    def test_dumb_client_probe(self, auction_schema, auction_mf):
        endpoint = RelationalEndpoint(
            "D", auction_mf,
            machine=MachineProfile("d", can_combine=False),
        )
        endpoint.use_statistics(
            StatisticsCatalog.synthetic(auction_schema)
        )
        site = Fragment.single(auction_schema, "site")
        regions = Fragment.single(auction_schema, "regions")
        assert math.isinf(
            endpoint.estimate_cost(Combine(site, regions))
        )

    def test_index_factor_probe(self, auction_schema, auction_mf):
        endpoint = RelationalEndpoint(
            "I", auction_mf,
            machine=MachineProfile("i", index_factor=2.0),
        )
        endpoint.use_statistics(
            StatisticsCatalog.synthetic(auction_schema)
        )
        plain = RelationalEndpoint("P", auction_mf)
        plain.use_statistics(StatisticsCatalog.synthetic(auction_schema))
        write = Write(Fragment.single(auction_schema, "site"))
        assert endpoint.estimate_cost(write) == pytest.approx(
            2.0 * plain.estimate_cost(write)
        )

    def test_probe_without_statistics_raises(self, auction_mf):
        endpoint = RelationalEndpoint("S", auction_mf)
        with pytest.raises(EndpointError, match="statistics"):
            endpoint.estimate_cost(
                Scan(auction_mf.fragment_of("item"))
            )


class TestStatisticsFromStore:
    def test_value_widths_reflect_text(self, auction_mf,
                                       auction_document):
        endpoint = RelationalEndpoint("S", auction_mf)
        endpoint.load_document(auction_document)
        stats = statistics_from_store(endpoint.db, endpoint.mapper)
        # idescription carries 12 words of text; quantity a digit.
        assert stats.width("idescription") > stats.width("quantity")


class TestDirectoryEndpoint:
    def test_write_and_materialize(self, customers_t,
                                   customer_documents):
        endpoint = DirectoryEndpoint("prov", customers_t)
        feeds = fragment_customers(customer_documents, customers_t)
        # Write child fragments FIRST to prove ordering independence.
        for name in ("Feature", "Line_Switch", "Order_Service",
                     "Customer"):
            endpoint.write(customers_t.fragment(name), feeds[name])
        store = endpoint.materialize()
        assert len(store) == sum(
            instance.row_count() for instance in feeds.values()
        )
        customers = store.search("CUSTOMER_T")
        assert all(len(entry.dn) == 1 for entry in customers)
        features = store.search("FEATURE_T")
        assert all(len(entry.dn) == 4 for entry in features)

    def test_materialize_idempotent(self, customers_t,
                                    customer_documents):
        endpoint = DirectoryEndpoint("prov", customers_t)
        feeds = fragment_customers(customer_documents, customers_t)
        for name, instance in feeds.items():
            endpoint.write(customers_t.fragment(name), instance)
        first = endpoint.materialize()
        assert endpoint.materialize() is first

    def test_orphans_detected(self, customers_schema, customers_t,
                              customer_documents):
        endpoint = DirectoryEndpoint("prov", customers_t)
        feeds = fragment_customers(customer_documents, customers_t)
        # Only write Feature rows: their Line parents never arrive.
        endpoint.write(customers_t.fragment("Feature"),
                       feeds["Feature"])
        with pytest.raises(EndpointError, match="parents"):
            endpoint.materialize()

    def test_orphan_error_reports_deferred_count(self, customers_t,
                                                 customer_documents):
        """The EndpointError names exactly how many rows stayed
        unresolvable, so a partial write is diagnosable."""
        endpoint = DirectoryEndpoint("prov", customers_t)
        feeds = fragment_customers(customer_documents, customers_t)
        endpoint.write(customers_t.fragment("Feature"),
                       feeds["Feature"])
        orphan_rows = feeds["Feature"].row_count()
        assert orphan_rows > 0
        with pytest.raises(
            EndpointError,
            match=rf"{orphan_rows} rows reference parents",
        ):
            endpoint.materialize()

    def test_deep_chain_resolves_over_multiple_passes(self, customers_t,
                                                      customer_documents):
        """Written deepest-first, every fragment level defers at least
        once before its parent level lands — materialize must keep
        re-trying deferred rows until a pass makes no progress."""
        endpoint = DirectoryEndpoint("prov", customers_t)
        feeds = fragment_customers(customer_documents, customers_t)
        depth_order = ("Feature", "Line_Switch", "Order_Service",
                       "Customer")
        for name in depth_order:
            endpoint.write(customers_t.fragment(name), feeds[name])
        store = endpoint.materialize()
        # Every row of every fragment made it in despite the ordering.
        for name in depth_order:
            class_name = endpoint._class_name(
                customers_t.fragment(name)
            )
            assert len(store.search(class_name)) == \
                feeds[name].row_count()

    def test_write_stream_defers_like_write(self, customers_t,
                                            customer_documents):
        from repro.core.stream import FragmentStream

        endpoint = DirectoryEndpoint("prov", customers_t)
        feeds = fragment_customers(customer_documents, customers_t)
        for name in ("Feature", "Line_Switch", "Order_Service",
                     "Customer"):
            endpoint.write_stream(
                customers_t.fragment(name),
                FragmentStream.from_instance(feeds[name], 2),
            )
        store = endpoint.materialize()
        assert len(store) == sum(
            instance.row_count() for instance in feeds.values()
        )

    def test_scan_returns_written(self, customers_t,
                                  customer_documents):
        endpoint = DirectoryEndpoint("prov", customers_t)
        feeds = fragment_customers(customer_documents, customers_t)
        endpoint.write(customers_t.fragment("Customer"),
                       feeds["Customer"])
        instance = endpoint.scan(customers_t.fragment("Customer"))
        assert instance.row_count() == feeds["Customer"].row_count()
        with pytest.raises(EndpointError):
            endpoint.scan(customers_t.fragment("Feature"))
