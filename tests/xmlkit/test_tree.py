"""The element tree."""

import pytest

from repro.errors import XmlSyntaxError
from repro.xmlkit.tree import Element, parse_tree


class TestParseTree:
    def test_basic_structure(self):
        root = parse_tree("<a><b>x</b><b>y</b><c/></a>")
        assert root.name == "a"
        assert [child.name for child in root.children] == ["b", "b", "c"]
        assert [child.text for child in root.find_all("b")] == ["x", "y"]

    def test_attributes(self):
        root = parse_tree('<a id="7" kind="demo"/>')
        assert root.get("id") == "7"
        assert root.get("missing") is None
        assert root.get("missing", "dflt") == "dflt"

    def test_text_is_stripped(self):
        root = parse_tree("<a>\n  padded  \n</a>")
        assert root.text == "padded"

    def test_child_lookup(self):
        root = parse_tree("<a><b/><c/></a>")
        assert root.child("c").name == "c"
        assert root.child("zz") is None

    def test_iter_preorder(self):
        root = parse_tree("<a><b><d/></b><c/></a>")
        assert [node.name for node in root.iter()] == ["a", "b", "d", "c"]

    def test_local_name(self):
        assert Element("soap:Body").local_name() == "Body"
        assert Element("plain").local_name() == "plain"

    def test_empty_document_raises(self):
        with pytest.raises(XmlSyntaxError):
            parse_tree("   ")

    def test_append_returns_child(self):
        root = Element("a")
        child = root.append(Element("b"))
        assert child.name == "b"
        assert root.children == [child]
