"""Property-based tests: serialize/parse round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlkit.escape import escape_attr, escape_text, unescape
from repro.xmlkit.tree import Element, parse_tree
from repro.xmlkit.writer import serialize

# Text without XML-forbidden control characters.
_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc"),
    ),
    max_size=40,
)
_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_.-]{0,10}", fullmatch=True)


@given(_text)
def test_escape_text_round_trip(text):
    assert unescape(escape_text(text)) == text


@given(_text)
def test_escape_attr_round_trip(text):
    assert unescape(escape_attr(text)) == text


@st.composite
def elements(draw, depth=2):
    name = draw(_names)
    attrs = draw(
        st.dictionaries(_names, _text, max_size=3)
    )
    node = Element(name, attrs)
    # Leaves carry text; inner nodes carry children (no mixed content,
    # matching the library's document model).
    if depth > 0 and draw(st.booleans()):
        for child in draw(
            st.lists(elements(depth=depth - 1), max_size=3)
        ):
            node.children.append(child)
    else:
        node.text = draw(_text).strip()
    return node


def _normalized(node):
    return (
        node.name,
        tuple(sorted(node.attrs.items())),
        node.text.strip(),
        tuple(_normalized(child) for child in node.children),
    )


@settings(max_examples=60, deadline=None)
@given(elements(depth=3))
def test_serialize_parse_round_trip(root):
    parsed = parse_tree(serialize(root, indent=None))
    assert _normalized(parsed) == _normalized(root)


@settings(max_examples=30, deadline=None)
@given(elements(depth=2))
def test_serialization_is_deterministic(root):
    assert serialize(root) == serialize(root)
