"""Serialization: trees and the streaming writer."""

import pytest

from repro.errors import ReproError
from repro.xmlkit.tree import Element, parse_tree
from repro.xmlkit.writer import XmlStreamWriter, serialize


class TestSerialize:
    def test_compact_empty_element(self):
        text = serialize(Element("a"), indent=None)
        assert text == '<?xml version="1.0"?><a/>'

    def test_text_and_attrs_escaped(self):
        node = Element("a", {"q": 'say "hi"'}, text="1 < 2")
        text = serialize(node, indent=None, declaration=False)
        assert text == '<a q="say &quot;hi&quot;">1 &lt; 2</a>'

    def test_indented_output(self):
        root = Element("a")
        root.append(Element("b", text="x"))
        text = serialize(root)
        assert "\n  <b>x</b>\n" in text

    def test_round_trip(self):
        original = '<a p="1"><b>text &amp; more</b><c/></a>'
        tree = parse_tree(original)
        again = parse_tree(serialize(tree, indent=None))
        assert serialize(tree) == serialize(again)


class TestXmlStreamWriter:
    def test_balanced_document(self):
        writer = XmlStreamWriter(declaration=False)
        writer.start("site", {"id": "1"})
        writer.leaf("name", "ACME")
        writer.end("site")
        assert writer.getvalue() == '<site id="1"><name>ACME</name></site>'

    def test_mismatched_end_raises(self):
        writer = XmlStreamWriter()
        writer.start("a")
        with pytest.raises(ReproError):
            writer.end("b")

    def test_end_without_start_raises(self):
        writer = XmlStreamWriter()
        with pytest.raises(ReproError):
            writer.end("a")

    def test_getvalue_with_open_elements_raises(self):
        writer = XmlStreamWriter()
        writer.start("a")
        with pytest.raises(ReproError):
            writer.getvalue()

    def test_write_after_root_closed_raises(self):
        writer = XmlStreamWriter()
        writer.start("a")
        writer.end("a")
        with pytest.raises(ReproError):
            writer.start("b")

    def test_characters_outside_root_raise(self):
        writer = XmlStreamWriter()
        with pytest.raises(ReproError):
            writer.characters("loose")

    def test_output_is_parseable(self):
        writer = XmlStreamWriter()
        writer.start("doc")
        for index in range(3):
            writer.leaf("item", f"value {index}", {"n": str(index)})
        writer.end("doc")
        root = parse_tree(writer.getvalue())
        assert len(root.find_all("item")) == 3

    def test_bytes_written_grows(self):
        writer = XmlStreamWriter(declaration=False)
        writer.start("a")
        before = writer.bytes_written()
        writer.leaf("b", "text")
        assert writer.bytes_written() > before
