"""Entity escaping/unescaping."""

import pytest

from repro.errors import XmlSyntaxError
from repro.xmlkit.escape import escape_attr, escape_text, unescape


class TestEscapeText:
    def test_plain_text_unchanged(self):
        assert escape_text("hello world") == "hello world"

    def test_angle_brackets_escaped(self):
        assert escape_text("a < b > c") == "a &lt; b &gt; c"

    def test_ampersand_escaped_first(self):
        assert escape_text("&lt;") == "&amp;lt;"

    def test_empty(self):
        assert escape_text("") == ""


class TestEscapeAttr:
    def test_quotes_escaped(self):
        assert escape_attr('say "hi"') == "say &quot;hi&quot;"

    def test_newline_and_tab_preserved_as_references(self):
        assert escape_attr("a\nb\tc") == "a&#10;b&#9;c"

    def test_angle_and_ampersand(self):
        assert escape_attr("<&>") == "&lt;&amp;&gt;"


class TestUnescape:
    def test_named_entities(self):
        assert unescape("&lt;&gt;&amp;&quot;&apos;") == "<>&\"'"

    def test_decimal_reference(self):
        assert unescape("&#65;") == "A"

    def test_hex_reference(self):
        assert unescape("&#x41;") == "A"
        assert unescape("&#X41;") == "A"

    def test_no_entities_fast_path(self):
        text = "plain"
        assert unescape(text) is text

    def test_round_trip_text(self):
        original = 'a <tag> & "quotes" é'
        assert unescape(escape_text(original)) == original

    def test_round_trip_attr(self):
        original = 'a <tag> & "quotes"\n\ttail'
        assert unescape(escape_attr(original)) == original

    def test_unterminated_reference_raises(self):
        with pytest.raises(XmlSyntaxError):
            unescape("&amp")

    def test_unknown_entity_raises(self):
        with pytest.raises(XmlSyntaxError):
            unescape("&nbsp;")

    def test_empty_reference_raises(self):
        with pytest.raises(XmlSyntaxError):
            unescape("&;")

    def test_bad_decimal_raises(self):
        with pytest.raises(XmlSyntaxError):
            unescape("&#notanumber;")

    def test_bad_hex_raises(self):
        with pytest.raises(XmlSyntaxError):
            unescape("&#xZZ;")
