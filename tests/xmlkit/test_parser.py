"""The streaming XML parser."""

import pytest

from repro.errors import XmlSyntaxError
from repro.xmlkit.events import (
    Characters,
    Comment,
    EndElement,
    ProcessingInstruction,
    StartElement,
    XmlDeclaration,
)
from repro.xmlkit.parser import ContentHandler, iterparse, push_parse


def events(text):
    return list(iterparse(text))


class TestBasicParsing:
    def test_single_empty_element(self):
        assert events("<a/>") == [StartElement("a"), EndElement("a")]

    def test_element_with_text(self):
        got = events("<a>hello</a>")
        assert got == [
            StartElement("a"), Characters("hello"), EndElement("a"),
        ]

    def test_nested_elements(self):
        got = events("<a><b/><c/></a>")
        names = [e.name for e in got if isinstance(e, StartElement)]
        assert names == ["a", "b", "c"]

    def test_attributes_double_and_single_quotes(self):
        got = events("""<a x="1" y='two'/>""")
        assert got[0] == StartElement("a", {"x": "1", "y": "two"})

    def test_attribute_entities_resolved(self):
        got = events('<a x="&lt;&amp;&gt;"/>')
        assert got[0].attrs["x"] == "<&>"

    def test_text_entities_resolved(self):
        got = events("<a>&lt;tag&gt;</a>")
        assert got[1] == Characters("<tag>")

    def test_xml_declaration(self):
        got = events('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert got[0] == XmlDeclaration("1.0", "UTF-8", None)

    def test_comment(self):
        got = events("<a><!-- note --></a>")
        assert Comment(" note ") in got

    def test_comment_before_root(self):
        got = events("<!-- head --><a/>")
        assert got[0] == Comment(" head ")

    def test_processing_instruction(self):
        got = events('<?pi some data?><a/>')
        assert got[0] == ProcessingInstruction("pi", "some data")

    def test_cdata_section(self):
        got = events("<a><![CDATA[<raw> & stuff]]></a>")
        assert got[1] == Characters("<raw> & stuff")

    def test_doctype_skipped(self):
        got = events("<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a/>")
        assert got == [StartElement("a"), EndElement("a")]

    def test_whitespace_between_elements_is_characters(self):
        got = events("<a> <b/> </a>")
        texts = [e.text for e in got if isinstance(e, Characters)]
        assert texts == [" ", " "]

    def test_namespaced_names(self):
        got = events('<soap:Envelope xmlns:soap="ns"><soap:Body/>'
                     "</soap:Envelope>")
        assert got[0].name == "soap:Envelope"


class TestWellFormedness:
    @pytest.mark.parametrize("bad", [
        "<a>",                      # unclosed
        "<a></b>",                  # mismatched
        "</a>",                     # end without start
        "<a/><b/>",                 # two roots
        "text only",                # no root
        "",                         # empty
        "<a x=1/>",                 # unquoted attribute
        '<a x="1" x="2"/>',         # duplicate attribute
        "<a><!-- unterminated</a>",
        "<a><![CDATA[open</a>",
        '<a x="<"/>',               # literal < in attribute
        "<a>&unknown;</a>",         # unknown entity
        "<1bad/>",                  # bad name start
    ])
    def test_rejects(self, bad):
        with pytest.raises(XmlSyntaxError):
            events(bad)

    def test_error_carries_location(self):
        try:
            events("<a>\n  <b></c>\n</a>")
        except XmlSyntaxError as error:
            assert error.line == 2
        else:  # pragma: no cover
            pytest.fail("expected XmlSyntaxError")


class _Recorder(ContentHandler):
    def __init__(self):
        self.calls = []

    def start_element(self, name, attrs):
        self.calls.append(("start", name, dict(attrs)))

    def end_element(self, name):
        self.calls.append(("end", name))

    def characters(self, text):
        self.calls.append(("chars", text))


class TestPushParse:
    def test_drives_handler(self):
        recorder = _Recorder()
        push_parse('<a x="1"><b>t</b></a>', recorder)
        assert recorder.calls == [
            ("start", "a", {"x": "1"}),
            ("start", "b", {}),
            ("chars", "t"),
            ("end", "b"),
            ("end", "a"),
        ]

    def test_default_handler_ignores_everything(self):
        push_parse("<a><b/>text</a>", ContentHandler())
