"""Random schema generators."""

import pytest

from repro.schema.generator import balanced_schema, random_schema


class TestBalancedSchema:
    def test_paper_sizes(self):
        # Table 5: height 2, fan-out 5 -> 31 nodes.
        assert len(balanced_schema(2, 5, seed=1)) == 31
        # Figures 10/11: 3 levels, fan-out 4 -> 85 nodes.
        assert len(balanced_schema(3, 4, seed=1)) == 85

    def test_deterministic_per_seed(self):
        first = balanced_schema(2, 3, seed=7)
        second = balanced_schema(2, 3, seed=7)
        assert first.sketch() == second.sketch()

    def test_seeds_differ(self):
        assert (
            balanced_schema(2, 3, seed=1, repeat_prob=0.5).sketch()
            != balanced_schema(2, 3, seed=2, repeat_prob=0.5).sketch()
        )

    def test_no_repeats_when_prob_zero(self):
        tree = balanced_schema(2, 3, repeat_prob=0.0, seed=0)
        assert all(
            not node.cardinality.repeated for node in tree.iter_nodes()
        )

    def test_root_is_always_one(self):
        tree = balanced_schema(1, 2, repeat_prob=1.0, seed=0)
        assert not tree.root.cardinality.repeated


class TestRandomSchema:
    def test_exact_node_count(self):
        for n_nodes in (1, 5, 31):
            assert len(random_schema(n_nodes, seed=3)) == n_nodes

    def test_fanout_bound(self):
        tree = random_schema(40, max_fanout=2, seed=5)
        assert all(
            len(node.children) <= 2 for node in tree.iter_nodes()
        )

    def test_deterministic(self):
        assert (
            random_schema(20, seed=9).sketch()
            == random_schema(20, seed=9).sketch()
        )

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            random_schema(0)
