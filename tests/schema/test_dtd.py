"""The DTD parser."""

import pytest

from repro.errors import DtdSyntaxError, SchemaError
from repro.schema.dtd import parse_dtd, serialize_dtd
from repro.schema.model import Cardinality
from repro.workloads.xmark import XMARK_DTD


class TestParseDtd:
    def test_sequence_with_suffixes(self):
        tree = parse_dtd("""
            <!ELEMENT a (b, c?, d*, e+)>
            <!ELEMENT b (#PCDATA)>
            <!ELEMENT c (#PCDATA)>
            <!ELEMENT d (#PCDATA)>
            <!ELEMENT e (#PCDATA)>
        """)
        cards = {
            child.name: child.cardinality
            for child in tree.root.children
        }
        assert cards == {
            "b": Cardinality.ONE,
            "c": Cardinality.OPT,
            "d": Cardinality.MANY,
            "e": Cardinality.PLUS,
        }

    def test_group_suffix(self):
        tree = parse_dtd(
            "<!ELEMENT a (b)*>\n<!ELEMENT b (#PCDATA)>"
        )
        assert tree.node("b").cardinality is Cardinality.MANY

    def test_empty_and_any_are_leaves(self):
        tree = parse_dtd(
            "<!ELEMENT a (b, c)>\n<!ELEMENT b EMPTY>\n<!ELEMENT c ANY>"
        )
        assert tree.node("b").is_leaf
        assert tree.node("c").is_leaf

    def test_undeclared_children_become_leaves(self):
        tree = parse_dtd("<!ELEMENT a (b)>")
        assert tree.node("b").is_leaf

    def test_attlist(self):
        tree = parse_dtd("""
            <!ELEMENT a (#PCDATA)>
            <!ATTLIST a id CDATA #REQUIRED featured CDATA #IMPLIED>
        """)
        assert tree.root.attributes == ["id", "featured"]

    def test_attlist_with_fixed_default(self):
        tree = parse_dtd("""
            <!ELEMENT a (#PCDATA)>
            <!ATTLIST a version CDATA #FIXED '1.0'>
        """)
        assert tree.root.attributes == ["version"]

    def test_comments_ignored(self):
        tree = parse_dtd("""
            <!-- heading -->
            <!ELEMENT a (b)>
            <!-- middle --> <!ELEMENT b (#PCDATA)>
        """)
        assert len(tree) == 2

    def test_root_inference(self):
        tree = parse_dtd("<!ELEMENT x (y)>\n<!ELEMENT y (#PCDATA)>")
        assert tree.root.name == "x"

    def test_explicit_root(self):
        tree = parse_dtd(
            "<!ELEMENT x (y)>\n<!ELEMENT y (#PCDATA)>", root="x"
        )
        assert tree.root.name == "x"

    def test_unknown_explicit_root_raises(self):
        with pytest.raises(SchemaError):
            parse_dtd("<!ELEMENT x (#PCDATA)>", root="nope")

    def test_alternation_rejected(self):
        with pytest.raises(DtdSyntaxError):
            parse_dtd("<!ELEMENT a (b | c)>")

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(DtdSyntaxError):
            parse_dtd("<!ELEMENT a (#PCDATA)>\n<!ELEMENT a (#PCDATA)>")

    def test_recursion_rejected(self):
        with pytest.raises(SchemaError):
            parse_dtd("<!ELEMENT a (b)>\n<!ELEMENT b (a)>")

    def test_garbage_rejected(self):
        with pytest.raises(DtdSyntaxError):
            parse_dtd("<!ELEMENT a (#PCDATA)> stray tokens")

    def test_empty_dtd_rejected(self):
        with pytest.raises(DtdSyntaxError):
            parse_dtd("   ")

    def test_two_roots_rejected(self):
        with pytest.raises(SchemaError):
            parse_dtd(
                "<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>"
            )


class TestXmarkDtd:
    def test_parses_to_expected_shape(self):
        tree = parse_dtd(XMARK_DTD)
        assert tree.root.name == "site"
        assert tree.node("item").cardinality is Cardinality.MANY
        assert tree.node("category").cardinality is Cardinality.PLUS
        assert tree.node("item").attributes == ["id", "featured"]
        assert len(tree) == 24

    def test_serialize_round_trip(self):
        tree = parse_dtd(XMARK_DTD)
        again = parse_dtd(serialize_dtd(tree))
        assert again.element_names() == tree.element_names()
        assert all(
            again.node(name).cardinality is tree.node(name).cardinality
            for name in tree.element_names()
        )
