"""Document and fragment-instance validation."""

import pytest

from repro.core.instance import ElementData, FragmentInstance, FragmentRow
from repro.schema.validate import validate_document, validate_instance
from repro.workloads.customer import fragment_customers
from repro.workloads.docgen import generate_document
from repro.workloads.xmark import generate_xmark_document
from repro.schema.generator import random_schema


class TestValidateDocument:
    def test_generated_documents_conform(self, customers_schema,
                                         customer_documents):
        for document in customer_documents:
            assert validate_document(customers_schema, document) == []

    def test_xmark_documents_conform(self, auction_schema):
        document = generate_xmark_document(30_000, seed=3)
        assert validate_document(auction_schema, document) == []

    def test_random_documents_conform(self):
        for seed in range(5):
            schema = random_schema(10, seed=seed, repeat_prob=0.5)
            document = generate_document(schema, seed=seed)
            assert validate_document(schema, document) == []

    def test_wrong_root(self, customers_schema):
        violations = validate_document(
            customers_schema, ElementData("Order", 1)
        )
        assert len(violations) == 1
        assert "root must be" in str(violations[0])

    def test_missing_required_child(self, customers_schema):
        customer = ElementData("Customer", 1)  # no CustName
        violations = validate_document(customers_schema, customer)
        assert any(
            "required child <CustName>" in str(v) for v in violations
        )

    def test_repeated_singleton_child(self, customers_schema):
        customer = ElementData("Customer", 1)
        customer.add_child(ElementData("CustName", 2, text="a"))
        customer.add_child(ElementData("CustName", 3, text="b"))
        violations = validate_document(customers_schema, customer)
        assert any("occurs 2 times" in str(v) for v in violations)

    def test_undeclared_child_and_attribute(self, customers_schema):
        customer = ElementData("Customer", 1, {"bogus": "x"})
        customer.add_child(ElementData("CustName", 2, text="a"))
        customer.add_child(ElementData("Mystery", 3))
        violations = validate_document(customers_schema, customer)
        messages = " | ".join(str(v) for v in violations)
        assert "undeclared attribute 'bogus'" in messages
        assert "<Mystery> is not declared" in messages

    def test_text_on_non_leaf(self, customers_schema):
        customer = ElementData("Customer", 1, text="stray")
        customer.add_child(ElementData("CustName", 2, text="a"))
        violations = validate_document(customers_schema, customer)
        assert any("non-leaf" in str(v) for v in violations)


class TestValidateInstance:
    def test_fragment_feeds_conform(self, customers_s,
                                    customer_documents):
        feeds = fragment_customers(customer_documents, customers_s)
        for instance in feeds.values():
            assert validate_instance(instance) == []

    def test_pruned_children_not_demanded(self, customers_s,
                                          customer_documents):
        # Line_Feature prunes Switch: rows lack Switch and that's fine.
        feeds = fragment_customers(customer_documents, customers_s)
        assert validate_instance(feeds["Line_Feature"]) == []

    def test_out_of_fragment_child_flagged(self, customers_s,
                                           customer_documents):
        feeds = fragment_customers(customer_documents, customers_s)
        instance = feeds["Line_Feature"].copy()
        line = instance.rows[0].data
        switch = ElementData("Switch", 99_999)
        switch.add_child(ElementData("SwitchID", 99_998, text="SW"))
        line.add_child(switch)
        violations = validate_instance(instance)
        assert any(
            "outside fragment" in str(v) for v in violations
        )

    def test_wrong_row_root_flagged(self, customers_s):
        fragment = customers_s.fragment("Order")
        instance = FragmentInstance(
            fragment, [FragmentRow(ElementData("Customer", 1), None)]
        )
        violations = validate_instance(instance)
        assert any("row root" in str(v) for v in violations)

    def test_combined_instances_still_conform(self, customers_s,
                                              customer_documents):
        feeds = fragment_customers(customer_documents, customers_s)
        combined = feeds["Order"].combine(feeds["Service"])
        assert validate_instance(combined) == []
