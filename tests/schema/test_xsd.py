"""Parsing WSDL-embedded XML Schema into schema trees."""

import pytest

from repro.errors import SchemaError
from repro.schema.model import Cardinality
from repro.schema.xsd import parse_xsd_element, parse_xsd_schema
from repro.workloads.customer import customer_info_wsdl, customer_schema
from repro.xmlkit.tree import Element, parse_tree


class TestFigure1Schema:
    def test_wsdl_types_parse_to_customer_schema(self):
        definitions = customer_info_wsdl()
        embedded = definitions.find_extension("schema")
        parsed = parse_xsd_schema(embedded)
        reference = customer_schema()
        assert parsed.element_names() == reference.element_names()
        for name in reference.element_names():
            assert parsed.node(name).cardinality is \
                reference.node(name).cardinality, name

    def test_agency_can_run_on_parsed_schema(self):
        """The full loop: WSDL text -> schema -> fragmentations ->
        negotiated program, without ever touching the DTD."""
        from repro.core.cost.estimates import StatisticsCatalog
        from repro.core.cost.model import CostModel
        from repro.core.fragmentation import Fragmentation
        from repro.services.agency import DiscoveryAgency
        from repro.wsdl.model import parse_wsdl, serialize_wsdl

        text = serialize_wsdl(customer_info_wsdl())
        embedded = parse_wsdl(text).find_extension("schema")
        schema = parse_xsd_schema(embedded)
        agency = DiscoveryAgency(schema)
        agency.register(
            "a", Fragmentation.most_fragmented(schema, "A")
        )
        agency.register(
            "b", Fragmentation.least_fragmented(schema, "B")
        )
        plan = agency.negotiate(
            "a", "b",
            probe=CostModel(StatisticsCatalog.synthetic(schema)),
        )
        plan.program.validate_placement(plan.placement)


class TestParsing:
    def test_min_max_occurs(self):
        declaration = parse_tree(
            '<element name="r"><sequence>'
            '<element name="one" type="string"/>'
            '<element name="opt" minOccurs="0" type="string"/>'
            '<element name="many" maxOccurs="unbounded"'
            ' minOccurs="0" type="string"/>'
            '<element name="plus" maxOccurs="unbounded"'
            ' minOccurs="2" type="string"/>'
            "</sequence></element>"
        )
        tree = parse_xsd_element(declaration)
        assert tree.node("one").cardinality is Cardinality.ONE
        assert tree.node("opt").cardinality is Cardinality.OPT
        assert tree.node("many").cardinality is Cardinality.MANY
        assert tree.node("plus").cardinality is Cardinality.PLUS

    def test_attributes_collected_id_parent_skipped(self):
        declaration = parse_tree(
            '<element name="r">'
            '<attribute name="ID" type="string"/>'
            '<attribute name="PARENT" type="string"/>'
            '<attribute name="kind" type="string"/>'
            "</element>"
        )
        tree = parse_xsd_element(declaration)
        assert tree.root.attributes == ["kind"]

    def test_elements_without_sequence_wrapper(self):
        declaration = parse_tree(
            '<element name="r"><element name="c" type="string"/>'
            "</element>"
        )
        tree = parse_xsd_element(declaration)
        assert tree.node("c").is_leaf

    def test_unsupported_constructs_rejected(self):
        for body in (
            '<element name="r"><choice/></element>',
            '<element name="r"><restriction/></element>',
            '<element name="r"><sequence><any/></sequence></element>',
        ):
            with pytest.raises(SchemaError):
                parse_xsd_element(parse_tree(body))

    def test_nameless_element_rejected(self):
        with pytest.raises(SchemaError, match="name"):
            parse_xsd_element(parse_tree("<element/>"))

    def test_schema_wrapper_validations(self):
        with pytest.raises(SchemaError):
            parse_xsd_schema(Element("notschema"))
        with pytest.raises(SchemaError, match="exactly one root"):
            parse_xsd_schema(parse_tree("<schema/>"))

    def test_wrong_top_level_element(self):
        with pytest.raises(SchemaError, match="element"):
            parse_xsd_element(Element("schema"))
