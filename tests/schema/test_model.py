"""Schema trees: lookups, ancestry, connectivity checks."""

import pytest

from repro.errors import SchemaError
from repro.schema.model import Cardinality, SchemaNode, SchemaTree


def small_tree() -> SchemaTree:
    root = SchemaNode("a", children=[
        SchemaNode("b", Cardinality.MANY, children=[
            SchemaNode("d"),
            SchemaNode("e", Cardinality.OPT),
        ]),
        SchemaNode("c", Cardinality.PLUS),
    ])
    return SchemaTree(root)


class TestCardinality:
    def test_repeated(self):
        assert Cardinality.MANY.repeated
        assert Cardinality.PLUS.repeated
        assert not Cardinality.ONE.repeated
        assert not Cardinality.OPT.repeated

    def test_optional(self):
        assert Cardinality.OPT.optional
        assert Cardinality.MANY.optional
        assert not Cardinality.PLUS.optional

    def test_from_suffix(self):
        assert Cardinality.from_suffix("") is Cardinality.ONE
        assert Cardinality.from_suffix("*") is Cardinality.MANY
        assert Cardinality.from_suffix("+") is Cardinality.PLUS
        assert Cardinality.from_suffix("?") is Cardinality.OPT
        with pytest.raises(SchemaError):
            Cardinality.from_suffix("!")


class TestSchemaTree:
    def test_lookup_and_membership(self):
        tree = small_tree()
        assert "d" in tree
        assert "zz" not in tree
        assert tree.node("b").cardinality is Cardinality.MANY
        with pytest.raises(SchemaError):
            tree.node("zz")

    def test_len_and_names_preorder(self):
        tree = small_tree()
        assert len(tree) == 5
        assert tree.element_names() == ["a", "b", "d", "e", "c"]

    def test_parents_and_depths(self):
        tree = small_tree()
        assert tree.parent_name("a") is None
        assert tree.parent_name("d") == "b"
        assert tree.depth("a") == 0
        assert tree.depth("d") == 2

    def test_ancestry(self):
        tree = small_tree()
        assert tree.is_ancestor("a", "d")
        assert tree.is_ancestor("b", "e")
        assert not tree.is_ancestor("d", "b")
        assert not tree.is_ancestor("c", "d")
        assert not tree.is_ancestor("a", "a")

    def test_path(self):
        tree = small_tree()
        assert tree.path("d") == ["a", "b", "d"]
        assert tree.path("a") == ["a"]

    def test_subtree_names(self):
        tree = small_tree()
        assert tree.subtree_names("b") == {"b", "d", "e"}
        assert tree.subtree_names("a") == {"a", "b", "c", "d", "e"}

    def test_duplicate_names_rejected(self):
        root = SchemaNode("a", children=[SchemaNode("b"),
                                         SchemaNode("b")])
        with pytest.raises(SchemaError):
            SchemaTree(root)

    def test_child_index_and_child(self):
        tree = small_tree()
        assert tree.node("a").child_index("c") == 1
        assert tree.node("a").child("b").name == "b"
        with pytest.raises(SchemaError):
            tree.node("a").child("zz")

    def test_is_connected(self):
        tree = small_tree()
        assert tree.is_connected({"b", "d"})
        assert tree.is_connected({"a"})
        assert not tree.is_connected({"d", "e"})  # two tops
        assert not tree.is_connected(set())

    def test_top_of(self):
        tree = small_tree()
        assert tree.top_of({"b", "d", "e"}) == "b"
        with pytest.raises(SchemaError):
            tree.top_of({"d", "c"})

    def test_has_repeated_below(self):
        tree = small_tree()
        assert tree.has_repeated_below("a", {"a", "b"})
        assert not tree.has_repeated_below("b", {"b", "d"})
        # The root itself being repeated does not matter.
        assert not tree.has_repeated_below("c", {"c"})

    def test_sketch_mentions_every_element(self):
        sketch = small_tree().sketch()
        for name in ("a", "b*", "c+", "d", "e?"):
            assert name in sketch
