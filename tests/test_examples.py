"""Every example script must run cleanly (examples never rot)."""

import os
import subprocess
import sys

import pytest

_EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
)

_EXPECTED_MARKERS = {
    "quickstart.py": ["negotiated program", "saves"],
    "customer_provisioning.py": ["Figure 5", "LINE_T"],
    "xmark_exchange.py": ["End-to-end breakdown", "DE saves"],
    "wsdl_negotiation.py": ["fragmentation", "Loading program"],
    "simulation_study.py": ["Figure 10", "Worst/Optimal"],
    "service_arguments.py": ["advisor recommends", "selected"],
}


@pytest.mark.parametrize("script", sorted(_EXPECTED_MARKERS))
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
        env={**os.environ, "REPRO_SCALE": "0.01"},
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for marker in _EXPECTED_MARKERS[script]:
        assert marker in completed.stdout, (
            f"{script} output missing {marker!r}"
        )


def test_every_example_is_covered():
    scripts = {
        name for name in os.listdir(_EXAMPLES_DIR)
        if name.endswith(".py")
    }
    assert scripts == set(_EXPECTED_MARKERS)
