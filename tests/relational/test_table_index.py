"""Row storage and indexes."""

import pytest

from repro.errors import TableError
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import ColumnType


@pytest.fixture
def table():
    return Table(TableSchema("t", [
        Column("id", ColumnType.INTEGER, nullable=False),
        Column("name", ColumnType.TEXT),
    ], primary_key="id"))


class TestTable:
    def test_insert_and_scan(self, table):
        table.insert([1, "a"])
        table.insert(["2", None])
        assert list(table.scan()) == [(1, "a"), (2, None)]

    def test_arity_check(self, table):
        with pytest.raises(TableError):
            table.insert([1])

    def test_not_null_check(self, table):
        with pytest.raises(TableError):
            table.insert([None, "x"])

    def test_bulk_load_leaves_indexes_stale(self, table):
        index = table.create_index("id")
        table.bulk_load([[1, "a"], [2, "b"]])
        assert not index.built
        assert table.build_indexes() == 1
        assert index.built
        assert index.lookup(2) == [1]

    def test_insert_maintains_indexes(self, table):
        index = table.create_index("name")
        table.insert([1, "x"])
        assert index.lookup("x") == [0]

    def test_truncate(self, table):
        table.create_index("id")
        table.bulk_load([[1, "a"]])
        table.truncate()
        assert len(table) == 0
        assert table.get_index("id").lookup(1) == []

    def test_duplicate_index_rejected(self, table):
        table.create_index("id")
        with pytest.raises(TableError):
            table.create_index("id")

    def test_unknown_index_kind(self, table):
        with pytest.raises(TableError):
            table.create_index("id", kind="btree")

    def test_column_values(self, table):
        table.bulk_load([[1, "a"], [2, "b"]])
        assert table.column_values("name") == ["a", "b"]

    def test_estimated_bytes(self, table):
        table.insert([1, "hello"])
        assert table.estimated_bytes() == 8 + 5


class TestHashIndex:
    def test_build_and_lookup(self):
        index = HashIndex("t", "c", 0)
        index.build([(1,), (2,), (1,)])
        assert index.lookup(1) == [0, 2]
        assert index.lookup(9) == []
        assert len(index) == 3


class TestSortedIndex:
    def test_order_and_range(self):
        index = SortedIndex("t", "c", 0)
        index.build([(5,), (1,), (None,), (3,)])
        assert list(index.row_ids_in_order()) == [1, 3, 0]
        assert index.range(2, 5) == [3, 0]
        assert index.range(None, 1) == [1]
        assert index.range(6, None) == []

    def test_incremental_add(self):
        index = SortedIndex("t", "c", 0)
        index.build([(2,)])
        index.add(5, (1,))
        assert list(index.row_ids_in_order()) == [5, 0]
        index.add(6, (None,))  # NULLs are not indexed
        assert len(index) == 2
