"""Property-based tests of the SQL engine against Python semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.engine import Database

_VALUES = st.one_of(
    st.none(),
    st.integers(min_value=-1_000, max_value=1_000),
)
_GROUPS = st.sampled_from(["a", "b", "c"])
_ROWS = st.lists(
    st.tuples(_GROUPS, _VALUES), min_size=0, max_size=40
)


def _fresh(rows):
    db = Database("prop")
    db.execute("CREATE TABLE t (g TEXT, v INTEGER)")
    db.load("t", [list(row) for row in rows])
    return db


@settings(max_examples=60, deadline=None)
@given(_ROWS)
def test_group_by_count_sum_match_python(rows):
    db = _fresh(rows)
    got = {
        row[0]: (row[1], row[2])
        for row in db.query(
            "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY g"
        )
    }
    expected = {}
    for group, value in rows:
        count, values = expected.get(group, (0, []))
        if value is not None:
            values = values + [value]
        expected[group] = (count + 1, values)
    assert got == {
        group: (count, sum(values) if values else None)
        for group, (count, values) in expected.items()
    }


@settings(max_examples=60, deadline=None)
@given(_ROWS)
def test_order_by_matches_sorted(rows):
    db = _fresh(rows)
    got = [row[0] for row in db.query(
        "SELECT v FROM t WHERE v IS NOT NULL ORDER BY v"
    )]
    assert got == sorted(
        value for _, value in rows if value is not None
    )


@settings(max_examples=60, deadline=None)
@given(_ROWS, st.integers(min_value=-1_000, max_value=1_000))
def test_where_filter_matches_python(rows, threshold):
    db = _fresh(rows)
    got = db.execute(
        f"SELECT COUNT(*) FROM t WHERE v >= {threshold}"
    ).scalar()
    assert got == sum(
        1 for _, value in rows
        if value is not None and value >= threshold
    )


@settings(max_examples=40, deadline=None)
@given(_ROWS)
def test_delete_then_count_zero(rows):
    db = _fresh(rows)
    removed = db.execute("DELETE FROM t").rowcount
    assert removed == len(rows)
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0


@settings(max_examples=40, deadline=None)
@given(_ROWS)
def test_update_is_total(rows):
    db = _fresh(rows)
    changed = db.execute("UPDATE t SET v = 0").rowcount
    assert changed == len(rows)
    if rows:
        assert db.query("SELECT MIN(v), MAX(v) FROM t") == [(0, 0)]


@settings(max_examples=40, deadline=None)
@given(_ROWS)
def test_index_equality_matches_scan(rows):
    db = _fresh(rows)
    db.execute("CREATE INDEX ON t (g)")
    for group in ("a", "b", "c"):
        indexed = db.execute(
            f"SELECT COUNT(*) FROM t WHERE g = '{group}'"
        ).scalar()
        assert indexed == sum(1 for g, _ in rows if g == group)
