"""Multi-document services (one XML document per customer, §1.1)."""

import pytest

from repro.relational.engine import Database
from repro.relational.frag_store import FragmentRelationMapper
from repro.relational.publisher import (
    publish_document,
    publish_document_set,
)
from repro.relational.shredder import shred_document, shred_documents
from repro.errors import RelationalError
from repro.xmlkit.tree import parse_tree


@pytest.fixture
def customer_store(customers_t, customer_documents):
    db = Database("sales")
    mapper = FragmentRelationMapper(customers_t)
    mapper.create_tables(db)
    for document in customer_documents:
        # Each customer is its own document; eids are globally unique
        # across the generator's output, so they can share tables.
        mapper.load_document(db, document)
    return db, mapper


class TestPublishDocumentSet:
    def test_one_document_per_customer(self, customer_store,
                                       customer_documents):
        db, mapper = customer_store
        reports = publish_document_set(db, mapper)
        assert len(reports) == len(customer_documents)
        for report in reports:
            root = parse_tree(report.document)
            assert root.name == "Customer"
            assert root.child("CustName") is not None

    def test_documents_partition_the_data(self, customer_store,
                                          customer_documents):
        db, mapper = customer_store
        reports = publish_document_set(db, mapper)
        published_elements = sum(
            report.rows_merged for report in reports
        )
        assert published_elements == sum(
            document.element_count()
            for document in customer_documents
        )

    def test_set_round_trips_through_shredder(self, customer_store,
                                              customers_t):
        db, mapper = customer_store
        reports = publish_document_set(db, mapper)
        target_db = Database("copy")
        target_mapper = FragmentRelationMapper(customers_t)
        target_mapper.create_tables(target_db)
        shredded = shred_documents(
            [report.document for report in reports], target_mapper
        )
        shredded.load_into(target_db)
        again = publish_document_set(target_db, target_mapper)
        assert sorted(r.document for r in again) == \
            sorted(r.document for r in reports)

    def test_single_calls_with_shared_eids_would_collide(
            self, customer_store, customers_t):
        """Regression: shredding two documents from eid 1 each mixes
        their PARENT references; shred_documents prevents it."""
        db, mapper = customer_store
        reports = publish_document_set(db, mapper)
        first = shred_document(reports[0].document, mapper)
        second = shred_document(reports[1].document, mapper)
        first_ids = {
            row[0]
            for rows in first.rows.values() for row in rows
        }
        second_ids = {
            row[0]
            for rows in second.rows.values() for row in rows
        }
        assert first_ids & second_ids  # the hazard exists...
        combined = shred_documents(
            [reports[0].document, reports[1].document], mapper
        )
        all_ids = [
            row[0]
            for rows in combined.rows.values() for row in rows
        ]
        assert len(all_ids) == len(set(all_ids))  # ...and is avoided

    def test_single_document_publish_rejects_sets(self,
                                                  customer_store):
        db, mapper = customer_store
        with pytest.raises(RelationalError, match="document_set"):
            publish_document(db, mapper)

    def test_empty_store_publishes_empty_set(self, customers_t):
        db = Database("empty")
        mapper = FragmentRelationMapper(customers_t)
        mapper.create_tables(db)
        assert publish_document_set(db, mapper) == []
