"""The SQL subset: lexer, parser, executor."""

import pytest

from repro.errors import SqlSyntaxError, TableError
from repro.relational.engine import Database
from repro.relational.sql.ast import Select
from repro.relational.sql.lexer import tokenize
from repro.relational.sql.parser import parse_sql


@pytest.fixture
def db():
    database = Database("test")
    database.execute(
        "CREATE TABLE customer (id INTEGER PRIMARY KEY, name TEXT,"
        " region TEXT)"
    )
    database.execute(
        "CREATE TABLE orders (id INTEGER PRIMARY KEY,"
        " custkey INTEGER, total REAL)"
    )
    database.execute(
        "INSERT INTO customer VALUES (1, 'acme', 'east'),"
        " (2, 'globex', 'west'), (3, 'initech', 'east')"
    )
    database.execute(
        "INSERT INTO orders VALUES (10, 1, 99.5), (11, 1, 15.0),"
        " (12, 2, 42.0), (13, NULL, 7.0)"
    )
    return database


class TestLexer:
    def test_tokens(self):
        kinds = [token.kind for token in tokenize("SELECT a, 'x' <= 5")]
        assert kinds == ["ident", "ident", "symbol", "string",
                         "symbol", "number", "end"]

    def test_string_escaping(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- comment\n a")
        assert [t.text for t in tokens[:2]] == ["SELECT", "a"]

    def test_negative_number_in_value_position(self):
        tokens = tokenize("x = -5")
        assert tokens[2].kind == "number"
        assert tokens[2].text == "-5"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'open")

    def test_stray_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")


class TestParser:
    def test_select_shape(self):
        statement = parse_sql(
            "SELECT a, t.b FROM t JOIN u ON t.a = u.fk "
            "WHERE a >= 2 AND u.b = 'x' ORDER BY a DESC LIMIT 3"
        )
        assert isinstance(statement, Select)
        assert len(statement.items) == 2
        assert len(statement.joins) == 1
        assert len(statement.where) == 2
        assert statement.order_by[0][1] is False  # DESC
        assert statement.limit == 3
        assert not statement.is_aggregate

    def test_aggregate_shape(self):
        statement = parse_sql(
            "SELECT g, COUNT(*) AS n, SUM(v) FROM t GROUP BY g"
        )
        assert statement.is_aggregate
        assert [item.output_name() for item in statement.items] == [
            "g", "n", "sum_v",
        ]
        assert len(statement.group_by) == 1

    @pytest.mark.parametrize("bad", [
        "SELECT",
        "SELECT FROM t",
        "SELECT * FROM",
        "SELECT * FROM t WHERE",
        "SELECT * FROM t WHERE a ==",
        "INSERT INTO t",
        "CREATE TABLE t ()",
        "SELECT * FROM t extra garbage (",
        "DELETE t",
    ])
    def test_rejects(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse_sql(bad)

    def test_trailing_semicolon_ok(self):
        parse_sql("SELECT * FROM t;")


class TestExecutor:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM customer")
        assert result.columns == ["id", "name", "region"]
        assert len(result.rows) == 3

    def test_projection(self, db):
        rows = db.query("SELECT name FROM customer ORDER BY name")
        assert rows == [("acme",), ("globex",), ("initech",)]

    def test_where_filters(self, db):
        rows = db.query(
            "SELECT id FROM customer WHERE region = 'east' AND id > 1"
        )
        assert rows == [(3,)]

    def test_comparison_operators(self, db):
        assert len(db.query("SELECT id FROM orders WHERE total >= 42")) \
            == 2
        assert len(db.query("SELECT id FROM orders WHERE total != 7.0")) \
            == 3

    def test_null_never_matches(self, db):
        rows = db.query("SELECT id FROM orders WHERE custkey = 1")
        assert {row[0] for row in rows} == {10, 11}
        # Row 13 has NULL custkey and must not appear anywhere.
        rows = db.query("SELECT id FROM orders WHERE custkey != 1")
        assert {row[0] for row in rows} == {12}

    def test_is_null(self, db):
        assert db.query(
            "SELECT id FROM orders WHERE custkey IS NULL"
        ) == [(13,)]
        assert len(db.query(
            "SELECT id FROM orders WHERE custkey IS NOT NULL"
        )) == 3

    def test_join(self, db):
        rows = db.query(
            "SELECT name, total FROM customer "
            "JOIN orders ON customer.id = orders.custkey "
            "ORDER BY total"
        )
        assert rows == [
            ("acme", 15.0), ("globex", 42.0), ("acme", 99.5),
        ]

    def test_join_with_aliases(self, db):
        rows = db.query(
            "SELECT c.name FROM customer AS c "
            "JOIN orders o ON c.id = o.custkey WHERE o.total > 50"
        )
        assert rows == [("acme",)]

    def test_count_star(self, db):
        assert db.execute(
            "SELECT COUNT(*) FROM orders WHERE total < 50"
        ).scalar() == 3

    def test_order_by_multiple(self, db):
        rows = db.query(
            "SELECT region, name FROM customer "
            "ORDER BY region, name DESC"
        )
        assert rows == [
            ("east", "initech"), ("east", "acme"), ("west", "globex"),
        ]

    def test_limit(self, db):
        assert len(db.query("SELECT * FROM orders LIMIT 2")) == 2

    def test_delete_with_where(self, db):
        result = db.execute("DELETE FROM orders WHERE custkey = 1")
        assert result.rowcount == 2
        assert db.row_count("orders") == 2

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM orders").rowcount == 4
        assert db.row_count("orders") == 0

    def test_index_assisted_equality(self, db):
        db.execute("CREATE INDEX ON customer (region)")
        rows = db.query(
            "SELECT name FROM customer WHERE region = 'east' "
            "ORDER BY name"
        )
        assert rows == [("acme",), ("initech",)]
        # And the statement can be re-executed (no AST mutation).
        rows2 = db.query(
            "SELECT name FROM customer WHERE region = 'east' "
            "ORDER BY name"
        )
        assert rows2 == rows

    def test_sorted_index_creation(self, db):
        db.execute("CREATE SORTED INDEX ON orders (total)")
        index = db.table("orders").get_index("total", "sorted")
        assert index is not None

    def test_ambiguous_column_rejected(self, db):
        with pytest.raises(TableError, match="ambiguous"):
            db.query(
                "SELECT id FROM customer "
                "JOIN orders ON customer.id = orders.custkey"
            )

    def test_unknown_table_and_column(self, db):
        with pytest.raises(TableError):
            db.query("SELECT * FROM nope")
        with pytest.raises(TableError):
            db.query("SELECT nope FROM customer")

    def test_create_duplicate_table_rejected(self, db):
        with pytest.raises(TableError):
            db.execute("CREATE TABLE customer (a INTEGER)")

    def test_two_primary_keys_rejected(self, db):
        with pytest.raises(TableError):
            db.execute(
                "CREATE TABLE t2 (a INTEGER PRIMARY KEY,"
                " b INTEGER PRIMARY KEY)"
            )


class TestDatabase:
    def test_table_names(self, db):
        assert db.table_names() == ["customer", "orders"]

    def test_drop_table(self, db):
        db.drop_table("orders")
        assert not db.has_table("orders")
        with pytest.raises(TableError):
            db.drop_table("orders")

    def test_totals(self, db):
        assert db.total_rows() == 7
        assert db.estimated_bytes() > 0

    def test_load_bulk(self, db):
        db.load("orders", [[20, 3, 1.0], [21, 3, 2.0]])
        assert db.row_count("orders") == 6
        assert db.build_all_indexes() == 0  # no indexes yet


class TestColumnListInsert:
    def test_partial_columns_fill_nulls(self, db):
        db.execute(
            "INSERT INTO customer (id, name) VALUES (9, 'ninth')"
        )
        assert db.query(
            "SELECT name, region FROM customer WHERE id = 9"
        ) == [("ninth", None)]

    def test_reordered_columns(self, db):
        db.execute(
            "INSERT INTO customer (region, id, name) VALUES"
            " ('north', 10, 'tenth')"
        )
        assert db.query(
            "SELECT id, name, region FROM customer WHERE id = 10"
        ) == [(10, "tenth", "north")]

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(TableError):
            db.execute("INSERT INTO customer (id, name) VALUES (1)")

    def test_duplicate_column_rejected(self, db):
        with pytest.raises(TableError):
            db.execute(
                "INSERT INTO customer (id, id) VALUES (1, 2)"
            )

    def test_not_null_still_enforced(self, db):
        db.execute(
            "CREATE TABLE strict (k INTEGER NOT NULL, v TEXT)"
        )
        with pytest.raises(TableError):
            db.execute("INSERT INTO strict (v) VALUES ('x')")
