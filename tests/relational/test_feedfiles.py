"""ASCII feed files (shred-to-files / SQL LOAD)."""

import pytest

from repro.errors import RelationalError
from repro.relational.engine import Database
from repro.relational.feedfiles import (
    dump_database,
    dump_table,
    load_database,
    load_table,
)
from repro.relational.frag_store import FragmentRelationMapper
from repro.relational.publisher import publish_document


@pytest.fixture
def db():
    database = Database("src")
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, txt TEXT, val REAL)"
    )
    database.execute(
        "INSERT INTO t VALUES (1, 'plain', 2.5),"
        " (2, NULL, NULL), (3, 'tab\tand\nnewline \\\\ slash', 0.0)"
    )
    return database


class TestRoundTrip:
    def test_table_round_trip(self, db, tmp_path):
        path = str(tmp_path / "t.feed")
        assert dump_table(db.table("t"), path) == 3
        fresh = Database("dst")
        fresh.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, txt TEXT,"
            " val REAL)"
        )
        assert load_table(fresh, "t", path) == 3
        # TEXT round-trips exactly (including the escaped values);
        # numerics come back as their typed values through coercion.
        assert fresh.query("SELECT txt FROM t ORDER BY id") == \
            db.query("SELECT txt FROM t ORDER BY id")
        assert fresh.query("SELECT val FROM t ORDER BY id") == \
            db.query("SELECT val FROM t ORDER BY id")

    def test_database_round_trip(self, db, tmp_path):
        db.execute("CREATE TABLE u (k INTEGER)")
        db.execute("INSERT INTO u VALUES (9)")
        counts = dump_database(db, str(tmp_path))
        assert counts == {"t": 3, "u": 1}
        fresh = Database("dst")
        fresh.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, txt TEXT,"
            " val REAL)"
        )
        fresh.execute("CREATE TABLE u (k INTEGER)")
        assert load_database(fresh, str(tmp_path)) == 4

    def test_fragment_store_survives_files(self, auction_mf,
                                           auction_document, tmp_path):
        source_db = Database("A")
        mapper = FragmentRelationMapper(auction_mf)
        mapper.create_tables(source_db)
        mapper.load_document(source_db, auction_document)
        reference = publish_document(source_db, mapper).document

        dump_database(source_db, str(tmp_path))
        restored = Database("B")
        restore_mapper = FragmentRelationMapper(auction_mf)
        restore_mapper.create_tables(restored)
        load_database(restored, str(tmp_path))
        assert publish_document(
            restored, restore_mapper
        ).document == reference


class TestErrors:
    def test_header_mismatch(self, db, tmp_path):
        path = str(tmp_path / "t.feed")
        dump_table(db.table("t"), path)
        fresh = Database("dst")
        fresh.execute("CREATE TABLE t (other INTEGER)")
        with pytest.raises(RelationalError, match="header"):
            load_table(fresh, "t", path)

    def test_ragged_row(self, db, tmp_path):
        path = tmp_path / "t.feed"
        path.write_text("id\ttxt\tval\n1\tonly-two\n")
        with pytest.raises(RelationalError, match="fields"):
            load_table(db, "t", str(path))

    def test_missing_feed_file(self, db, tmp_path):
        with pytest.raises(RelationalError, match="no feed file"):
            load_database(db, str(tmp_path))
