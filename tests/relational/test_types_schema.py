"""Column types and table schemas."""

import pytest

from repro.errors import TableError
from repro.relational.schema import Column, TableSchema
from repro.relational.types import ColumnType


class TestColumnType:
    def test_aliases(self):
        assert ColumnType.from_sql("INT") is ColumnType.INTEGER
        assert ColumnType.from_sql("varchar") is ColumnType.TEXT
        assert ColumnType.from_sql("Double") is ColumnType.REAL

    def test_unknown_type(self):
        with pytest.raises(TableError):
            ColumnType.from_sql("BLOB")

    def test_coerce_integer(self):
        assert ColumnType.INTEGER.coerce("42") == 42
        assert ColumnType.INTEGER.coerce(7.0) == 7
        assert ColumnType.INTEGER.coerce(None) is None
        with pytest.raises(TableError):
            ColumnType.INTEGER.coerce("abc")
        with pytest.raises(TableError):
            ColumnType.INTEGER.coerce(True)

    def test_coerce_text_and_real(self):
        assert ColumnType.TEXT.coerce(5) == "5"
        assert ColumnType.REAL.coerce("2.5") == 2.5
        with pytest.raises(TableError):
            ColumnType.REAL.coerce("x")


class TestTableSchema:
    def make(self):
        return TableSchema("t", [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("Name", ColumnType.TEXT),
        ], primary_key="id")

    def test_positions_case_insensitive(self):
        schema = self.make()
        assert schema.position("ID") == 0
        assert schema.position("name") == 1
        assert schema.has_column("NAME")
        assert not schema.has_column("zz")
        with pytest.raises(TableError):
            schema.position("zz")

    def test_column_names_preserve_case(self):
        assert self.make().column_names() == ["id", "Name"]

    def test_duplicate_columns_rejected(self):
        with pytest.raises(TableError):
            TableSchema("t", [
                Column("a", ColumnType.TEXT),
                Column("A", ColumnType.TEXT),
            ])

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(TableError):
            TableSchema("t", [Column("a", ColumnType.TEXT)],
                        primary_key="b")

    def test_no_columns_rejected(self):
        with pytest.raises(TableError):
            TableSchema("t", [])
