"""EXPLAIN plan descriptions."""

import pytest

from repro.errors import SqlSyntaxError
from repro.relational.engine import Database


@pytest.fixture
def db():
    database = Database("x")
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, g TEXT, v REAL)"
    )
    database.execute("CREATE TABLE u (fk INTEGER, w REAL)")
    database.execute("INSERT INTO t VALUES (1, 'a', 1.0), (2, 'b', 2.0)")
    return database


class TestExplain:
    def test_seq_scan_and_project(self, db):
        plan = db.explain("SELECT * FROM t")
        assert "seq scan t [2 rows]" in plan
        assert "project (*)" in plan

    def test_index_lookup_when_available(self, db):
        assert "seq scan" in db.explain("SELECT * FROM t WHERE g = 'a'")
        db.execute("CREATE INDEX ON t (g)")
        plan = db.explain("SELECT * FROM t WHERE g = 'a'")
        assert "index lookup t using hash(g)" in plan

    def test_residual_filter_counted(self, db):
        db.execute("CREATE INDEX ON t (g)")
        plan = db.explain(
            "SELECT * FROM t WHERE g = 'a' AND v > 0"
        )
        assert "filter (1 predicate)" in plan

    def test_join_and_aggregate_and_sort(self, db):
        plan = db.explain(
            "SELECT g, SUM(v) AS s FROM t JOIN u ON t.id = u.fk "
            "WHERE v > 1 GROUP BY g ORDER BY s DESC LIMIT 5"
        )
        assert "hash join build=u" in plan
        assert "hash aggregate group by (g)" in plan
        assert "sort (s DESC)" in plan
        assert "limit 5" in plan
        assert "project (g, s)" in plan

    def test_whole_table_aggregate(self, db):
        plan = db.explain("SELECT COUNT(*) FROM t")
        assert "aggregate (single group)" in plan

    def test_join_disables_index_lookup(self, db):
        db.execute("CREATE INDEX ON t (g)")
        plan = db.explain(
            "SELECT w FROM t JOIN u ON t.id = u.fk WHERE g = 'a'"
        )
        assert "seq scan" in plan

    def test_only_select_supported(self, db):
        with pytest.raises(SqlSyntaxError):
            db.explain("DELETE FROM t")

    def test_plan_matches_execution_semantics(self, db):
        # The index-candidate logic must mirror the executor: a
        # qualified column from another alias cannot use the index.
        db.execute("CREATE INDEX ON t (g)")
        plan = db.explain(
            "SELECT * FROM t AS a WHERE a.g = 'a'"
        )
        assert "index lookup" in plan
