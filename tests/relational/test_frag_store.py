"""Fragment-to-relation mapping: layouts, load, scan round trips."""

import pytest

from repro.errors import RelationalError
from repro.core.fragment import Fragment
from repro.core.fragmentation import Fragmentation
from repro.core.instance import FragmentInstance, FragmentRow
from repro.relational.engine import Database
from repro.relational.frag_store import FragmentRelationMapper
from repro.workloads.customer import fragment_customers
from repro.xmlkit.writer import serialize


@pytest.fixture
def lf_store(auction_lf):
    db = Database("store")
    mapper = FragmentRelationMapper(auction_lf)
    mapper.create_tables(db)
    return db, mapper


class TestLayout:
    def test_tables_created_with_expected_columns(self, lf_store,
                                                  auction_lf):
        db, mapper = lf_store
        item = auction_lf.fragment_of("item")
        table = db.table(mapper.table_name(item))
        names = table.schema.column_names()
        assert names[0] == "id"
        assert names[1] == "parent"
        assert "location" in names           # leaf text column
        assert "item_id" in names            # XML attribute column
        assert "item_featured" in names
        assert table.schema.primary_key == "id"

    def test_non_flat_fragment_rejected(self, customers_s):
        with pytest.raises(RelationalError, match="flat"):
            FragmentRelationMapper(customers_s)

    def test_foreign_fragment_rejected(self, lf_store,
                                       customers_schema):
        _, mapper = lf_store
        foreign = Fragment(customers_schema, ["Order"])
        with pytest.raises(RelationalError):
            mapper.layout_for(foreign)

    def test_internal_eid_columns(self, auction_lf, lf_store):
        db, mapper = lf_store
        site = auction_lf.root_fragment()
        names = db.table(mapper.table_name(site)).schema.column_names()
        # Internal one-to-one elements keep their keys.
        assert "regions_eid" in names
        assert "africa_eid" in names


class TestLoadAndScan:
    def test_document_round_trip(self, lf_store, auction_lf,
                                 auction_document):
        db, mapper = lf_store
        loaded = mapper.load_document(db, auction_document)
        assert loaded == db.total_rows()
        item_fragment = auction_lf.fragment_of("item")
        instance = mapper.scan_fragment(db, item_fragment)
        expected_items = sum(
            1 for node in auction_document.iter_all()
            if node.name == "item"
        )
        assert instance.row_count() == expected_items

    def test_scan_preserves_content(self, lf_store, auction_lf,
                                    auction_document):
        db, mapper = lf_store
        mapper.load_document(db, auction_document)
        item_fragment = auction_lf.fragment_of("item")
        instance = mapper.scan_fragment(db, item_fragment)
        originals = {
            node.eid: node
            for node in auction_document.iter_all()
            if node.name == "item"
        }
        for row in instance.rows:
            original = originals[row.eid]
            assert serialize(
                row.data.to_xml(auction_lf.schema)
            ) == serialize(original.to_xml(auction_lf.schema))

    def test_scan_is_sorted_feed(self, lf_store, auction_lf,
                                 auction_document):
        db, mapper = lf_store
        mapper.load_document(db, auction_document)
        instance = mapper.scan_fragment(
            db, auction_lf.fragment_of("item")
        )
        keys = [(row.parent or 0, row.eid) for row in instance.rows]
        assert keys == sorted(keys)

    def test_load_instance(self, customers_schema, customers_t,
                           customer_documents):
        db = Database("t")
        mapper = FragmentRelationMapper(customers_t)
        mapper.create_tables(db)
        feeds = fragment_customers(customer_documents, customers_t)
        for name, instance in feeds.items():
            mapper.load_instance(
                db, customers_t.fragment(name), instance
            )
        assert db.total_rows() == sum(
            instance.row_count() for instance in feeds.values()
        )

    def test_truncate_all(self, lf_store, auction_document):
        db, mapper = lf_store
        mapper.load_document(db, auction_document)
        mapper.truncate_all(db)
        assert db.total_rows() == 0

    def test_create_indexes_counts(self, lf_store, auction_document):
        db, mapper = lf_store
        mapper.load_document(db, auction_document)
        built = mapper.create_indexes(db)
        assert built == 2 * len(mapper.layouts)  # id + parent each
        # Idempotent second call builds nothing new.
        assert mapper.create_indexes(db) == 0

    def test_optional_attribute_null(self, lf_store, auction_lf,
                                     auction_document):
        db, mapper = lf_store
        mapper.load_document(db, auction_document)
        item = auction_lf.fragment_of("item")
        table = db.table(mapper.table_name(item))
        featured = table.column_values("item_featured")
        assert any(value is None for value in featured)
        assert any(value == "yes" for value in featured)
