"""Aggregation, GROUP BY and UPDATE in the SQL subset."""

import pytest

from repro.errors import SqlSyntaxError, TableError
from repro.relational.engine import Database


@pytest.fixture
def db():
    database = Database("agg")
    database.execute(
        "CREATE TABLE charges (custkey INTEGER, line TEXT, mrc REAL)"
    )
    database.execute(
        "INSERT INTO charges VALUES"
        " (1, 'a', 10.0), (1, 'b', 20.0), (2, 'c', 5.0),"
        " (2, 'd', NULL), (3, 'e', 7.5)"
    )
    return database


class TestAggregates:
    def test_group_by_with_count_and_sum(self, db):
        rows = db.query(
            "SELECT custkey, COUNT(*) AS n, SUM(mrc) AS total "
            "FROM charges GROUP BY custkey ORDER BY custkey"
        )
        assert rows == [(1, 2, 30.0), (2, 2, 5.0), (3, 1, 7.5)]

    def test_count_column_skips_nulls(self, db):
        rows = db.query(
            "SELECT custkey, COUNT(mrc) FROM charges "
            "GROUP BY custkey ORDER BY custkey"
        )
        assert rows == [(1, 2), (2, 1), (3, 1)]

    def test_min_max_avg(self, db):
        result = db.execute(
            "SELECT MIN(mrc), MAX(mrc), AVG(mrc) FROM charges"
        )
        assert result.rows == [(5.0, 20.0, pytest.approx(10.625))]
        assert result.columns == ["min_mrc", "max_mrc", "avg_mrc"]

    def test_whole_table_aggregate_on_empty_input(self, db):
        db.execute("DELETE FROM charges")
        rows = db.query("SELECT COUNT(*), SUM(mrc) FROM charges")
        assert rows == [(0, None)]

    def test_group_on_empty_input_yields_no_groups(self, db):
        db.execute("DELETE FROM charges")
        rows = db.query(
            "SELECT custkey, COUNT(*) FROM charges GROUP BY custkey"
        )
        assert rows == []

    def test_order_by_aggregate_alias(self, db):
        rows = db.query(
            "SELECT custkey, SUM(mrc) AS total FROM charges "
            "GROUP BY custkey ORDER BY total DESC"
        )
        assert [row[0] for row in rows] == [1, 3, 2]

    def test_non_grouped_column_rejected(self, db):
        with pytest.raises(TableError, match="GROUP BY"):
            db.query(
                "SELECT line, COUNT(*) FROM charges GROUP BY custkey"
            )

    def test_order_by_non_output_rejected_for_aggregates(self, db):
        with pytest.raises(TableError, match="output column"):
            db.query(
                "SELECT custkey, COUNT(*) FROM charges "
                "GROUP BY custkey ORDER BY mrc"
            )

    def test_where_applies_before_grouping(self, db):
        rows = db.query(
            "SELECT custkey, COUNT(*) FROM charges "
            "WHERE mrc > 6 GROUP BY custkey ORDER BY custkey"
        )
        assert rows == [(1, 2), (3, 1)]

    def test_aggregate_over_join(self, db):
        db.execute("CREATE TABLE names (custkey INTEGER, name TEXT)")
        db.execute(
            "INSERT INTO names VALUES (1, 'acme'), (2, 'globex'),"
            " (3, 'initech')"
        )
        rows = db.query(
            "SELECT name, SUM(mrc) AS total FROM charges "
            "JOIN names ON charges.custkey = names.custkey "
            "GROUP BY name ORDER BY name"
        )
        assert rows == [
            ("acme", 30.0), ("globex", 5.0), ("initech", 7.5),
        ]

    def test_count_star_without_parens_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.query("SELECT COUNT * FROM charges")


class TestUpdate:
    def test_update_with_where(self, db):
        result = db.execute(
            "UPDATE charges SET mrc = 1.0 WHERE custkey = 1"
        )
        assert result.rowcount == 2
        assert db.query(
            "SELECT SUM(mrc) FROM charges WHERE custkey = 1"
        ) == [(2.0,)]

    def test_update_all_rows(self, db):
        assert db.execute(
            "UPDATE charges SET line = 'x'"
        ).rowcount == 5

    def test_update_multiple_columns(self, db):
        db.execute(
            "UPDATE charges SET line = 'z', mrc = 0.0 "
            "WHERE custkey = 3"
        )
        assert db.query(
            "SELECT line, mrc FROM charges WHERE custkey = 3"
        ) == [("z", 0.0)]

    def test_update_maintains_indexes(self, db):
        db.execute("CREATE INDEX ON charges (line)")
        db.execute("UPDATE charges SET line = 'w' WHERE custkey = 2")
        rows = db.query("SELECT custkey FROM charges WHERE line = 'w'")
        assert {row[0] for row in rows} == {2}

    def test_update_type_coercion(self, db):
        db.execute("UPDATE charges SET mrc = 3 WHERE custkey = 3")
        assert db.query(
            "SELECT mrc FROM charges WHERE custkey = 3"
        ) == [(3.0,)]
