"""Publishing (merge & tag) and shredding (stack-based SAX)."""

import pytest

from repro.errors import RelationalError, SchemaError
from repro.relational.engine import Database
from repro.relational.frag_store import FragmentRelationMapper
from repro.relational.publisher import publish_document
from repro.relational.shredder import shred_document
from repro.xmlkit.tree import parse_tree


@pytest.fixture
def mf_store(auction_mf, auction_document):
    db = Database("S")
    mapper = FragmentRelationMapper(auction_mf)
    mapper.create_tables(db)
    mapper.load_document(db, auction_document)
    return db, mapper


class TestPublisher:
    def test_document_matches_source(self, mf_store, auction_document,
                                     auction_schema):
        db, mapper = mf_store
        report = publish_document(db, mapper)
        published = parse_tree(report.document)
        assert published.name == "site"
        # Same number of items as the original document.
        count = sum(
            1 for node in published.iter() if node.name == "item"
        )
        expected = sum(
            1 for node in auction_document.iter_all()
            if node.name == "item"
        )
        assert count == expected

    def test_report_metrics(self, mf_store):
        db, mapper = mf_store
        report = publish_document(db, mapper)
        assert report.bytes == len(report.document)
        assert report.fragments_queried == len(mapper.layouts)
        assert report.rows_merged == db.total_rows()

    def test_publish_from_mf_equals_publish_from_lf(
            self, mf_store, auction_lf, auction_document):
        db_mf, mapper_mf = mf_store
        db_lf = Database("S2")
        mapper_lf = FragmentRelationMapper(auction_lf)
        mapper_lf.create_tables(db_lf)
        mapper_lf.load_document(db_lf, auction_document)
        assert publish_document(db_mf, mapper_mf).document == \
            publish_document(db_lf, mapper_lf).document

    def test_empty_store_rejected(self, auction_mf):
        db = Database("empty")
        mapper = FragmentRelationMapper(auction_mf)
        mapper.create_tables(db)
        with pytest.raises(RelationalError, match="root"):
            publish_document(db, mapper)

    def test_columnar_publish_is_identical(self, mf_store):
        db, mapper = mf_store
        row = publish_document(db, mapper)
        for batch_rows in (1, 7, 10 ** 9):
            columnar = publish_document(
                db, mapper, columnar=True, batch_rows=batch_rows
            )
            assert columnar.document == row.document
            assert columnar.rows_merged == row.rows_merged


class TestShredder:
    def test_shred_tuple_counts(self, mf_store, auction_lf):
        db, mapper_mf = mf_store
        document = publish_document(db, mapper_mf).document
        mapper_lf = FragmentRelationMapper(auction_lf)
        result = shred_document(document, mapper_lf)
        # One tuple per fragment-root occurrence.
        items = result.rows[
            mapper_lf.table_name(auction_lf.fragment_of("item"))
        ]
        categories = result.rows[
            mapper_lf.table_name(auction_lf.fragment_of("category"))
        ]
        assert len(items) > 0 and len(categories) > 0
        assert result.tuple_count == len(items) + len(categories) + 1

    def test_elements_parsed_counts_all(self, mf_store, auction_lf,
                                        auction_document):
        db, mapper_mf = mf_store
        document = publish_document(db, mapper_mf).document
        result = shred_document(
            document, FragmentRelationMapper(auction_lf)
        )
        assert result.elements_parsed == \
            auction_document.element_count()

    def test_load_into_then_republish_identical(
            self, mf_store, auction_lf):
        db, mapper_mf = mf_store
        document = publish_document(db, mapper_mf).document
        target_db = Database("T")
        mapper_lf = FragmentRelationMapper(auction_lf)
        mapper_lf.create_tables(target_db)
        shredded = shred_document(document, mapper_lf)
        loaded = shredded.load_into(target_db)
        assert loaded == shredded.tuple_count
        assert publish_document(target_db, mapper_lf).document == \
            document

    def test_columnar_load_matches_row_load(self, mf_store,
                                            auction_lf):
        db, mapper_mf = mf_store
        document = publish_document(db, mapper_mf).document
        mapper_lf = FragmentRelationMapper(auction_lf)
        shredded = shred_document(document, mapper_lf)

        row_db = Database("T-row")
        mapper_lf.create_tables(row_db)
        row_loaded = shredded.load_into(row_db)

        for batch_rows in (1, 7, 10 ** 9):
            columnar_db = Database(f"T-col-{batch_rows}")
            mapper_lf.create_tables(columnar_db)
            loaded = shredded.load_into_columnar(
                columnar_db, mapper_lf, batch_rows
            )
            assert loaded == row_loaded == shredded.tuple_count
            for layout in mapper_lf.layouts.values():
                assert list(
                    columnar_db.table(layout.table_name).scan()
                ) == list(row_db.table(layout.table_name).scan())

    def test_columnar_batches_respect_batch_rows(self, mf_store,
                                                 auction_lf):
        db, mapper_mf = mf_store
        document = publish_document(db, mapper_mf).document
        mapper_lf = FragmentRelationMapper(auction_lf)
        shredded = shred_document(document, mapper_lf)
        batches = list(shredded.column_batches(mapper_lf, 8))
        assert all(batch.row_count() <= 8 for batch in batches)
        assert sum(batch.row_count() for batch in batches) == \
            shredded.tuple_count
        with pytest.raises(ValueError, match="batch_rows"):
            next(shredded.column_batches(mapper_lf, 0))

    def test_unknown_element_rejected(self, auction_lf):
        mapper = FragmentRelationMapper(auction_lf)
        with pytest.raises(SchemaError):
            shred_document("<site><bogus/></site>", mapper)

    def test_attribute_values_captured(self, mf_store, auction_lf):
        db, mapper_mf = mf_store
        document = publish_document(db, mapper_mf).document
        mapper_lf = FragmentRelationMapper(auction_lf)
        result = shred_document(document, mapper_lf)
        item_layout = mapper_lf.layouts[
            auction_lf.fragment_of("item").name
        ]
        position = [
            index for index, spec in enumerate(item_layout.specs)
            if spec.name == "item_id"
        ][0]
        ids = {
            row[position]
            for row in result.rows[item_layout.table_name]
        }
        assert any(value and value.startswith("item") for value in ids)
