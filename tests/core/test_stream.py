"""RowBatch / FragmentStream / ResidencyMeter: the batch dataplane units."""

import pytest

from repro.errors import OperationError
from repro.core.stream import (
    DEFAULT_BATCH_ROWS,
    FragmentStream,
    ResidencyMeter,
    RowBatch,
)
from repro.workloads.customer import fragment_customers


@pytest.fixture
def order_feed(customers_s, customer_documents):
    return fragment_customers(customer_documents, customers_s)["Order"]


class TestRowBatch:
    def test_sizes_partition_the_instance(self, order_feed):
        batches = list(FragmentStream.from_instance(order_feed, 2))
        assert sum(b.row_count() for b in batches) == \
            order_feed.row_count()
        assert sum(b.estimated_size() for b in batches) == \
            order_feed.estimated_size()
        assert sum(b.feed_size() for b in batches) == \
            order_feed.feed_size()

    def test_to_instance_shares_rows(self, order_feed):
        batch = RowBatch(order_feed.fragment, order_feed.rows, 0)
        instance = batch.to_instance()
        assert instance.fragment is order_feed.fragment
        assert instance.rows == batch.rows
        assert all(
            mine is theirs
            for mine, theirs in zip(instance.rows, batch.rows)
        )


class TestFragmentStream:
    def test_rebatching_preserves_row_order(self, order_feed):
        stream = FragmentStream.from_instance(order_feed, 3)
        batches = list(stream)
        assert [b.seq for b in batches] == list(range(len(batches)))
        assert all(b.row_count() <= 3 for b in batches)
        flattened = [row for b in batches for row in b.rows]
        assert flattened == order_feed.rows

    def test_batch_rows_one(self, order_feed):
        batches = list(FragmentStream.from_instance(order_feed, 1))
        assert len(batches) == order_feed.row_count()
        assert all(b.row_count() == 1 for b in batches)

    def test_default_batch_size(self, order_feed):
        stream = FragmentStream.from_instance(order_feed)
        assert DEFAULT_BATCH_ROWS >= 1
        assert stream.materialize().rows == order_feed.rows

    def test_single_use(self, order_feed):
        stream = FragmentStream.from_instance(order_feed, 2)
        list(stream)
        with pytest.raises(OperationError, match="already consumed"):
            iter(stream)
        with pytest.raises(OperationError, match="already consumed"):
            stream.materialize()

    def test_invalid_batch_rows(self, order_feed):
        with pytest.raises(OperationError, match="batch_rows"):
            FragmentStream.from_instance(order_feed, 0)

    def test_copy_rows_isolates_the_original(self, order_feed):
        stream = FragmentStream.from_instance(
            order_feed, 2, copy_rows=True
        )
        for batch in stream:
            for row in batch.rows:
                row.data.text = "mutated"
        assert all(row.data.text != "mutated" for row in order_feed.rows)

    def test_map_batches(self, order_feed):
        stream = FragmentStream.from_instance(order_feed, 2)
        mapped = stream.map_batches(
            lambda b: RowBatch(b.fragment, b.rows[:1], b.seq)
        )
        assert all(b.row_count() == 1 for b in mapped)


class TestResidencyMeter:
    def test_peaks_track_the_high_water_mark(self):
        meter = ResidencyMeter()
        meter.acquire(10, 100)
        meter.acquire(5, 50)
        meter.release(10, 100)
        meter.acquire(2, 20)
        assert meter.peak_rows == 15
        assert meter.peak_bytes == 150
        assert meter.resident_rows == 7

    def test_starts_empty(self):
        meter = ResidencyMeter()
        assert meter.peak_rows == 0
        assert meter.peak_bytes == 0
        assert meter.resident_rows == 0
