"""Fragment instances: element data, combine, split, XML views."""

import pytest

from repro.errors import OperationError
from repro.core.fragment import Fragment
from repro.core.instance import ElementData, FragmentInstance, FragmentRow
from repro.workloads.customer import fragment_customers
from repro.xmlkit.writer import serialize


def whole_instance(schema, documents):
    whole = Fragment.whole(schema)
    return FragmentInstance(
        whole, [FragmentRow(document, None) for document in documents]
    )


class TestElementData:
    def test_add_child_groups_by_name(self):
        parent = ElementData("a", 1)
        parent.add_child(ElementData("b", 2))
        parent.add_child(ElementData("b", 3))
        parent.add_child(ElementData("c", 4))
        assert [child.eid for child in parent.child_list("b")] == [2, 3]
        assert parent.child_list("missing") == []

    def test_iter_all_counts(self, customer_documents):
        document = customer_documents[0]
        assert document.element_count() == len(list(document.iter_all()))

    def test_occurrences_of(self, customer_documents):
        document = customer_documents[0]
        lines = list(document.occurrences_of("Line"))
        assert lines
        assert all(node.name == "Line" for node in lines)

    def test_copy_is_deep(self):
        parent = ElementData("a", 1, {"k": "v"})
        parent.add_child(ElementData("b", 2, text="t"))
        clone = parent.copy()
        clone.child_list("b")[0].text = "changed"
        clone.attrs["k"] = "other"
        assert parent.child_list("b")[0].text == "t"
        assert parent.attrs["k"] == "v"

    def test_estimated_size_monotone(self):
        small = ElementData("a", 1)
        big = ElementData("a", 1, text="x" * 100)
        assert big.estimated_size() > small.estimated_size()

    def test_to_xml_orders_children_by_schema(self, customers_schema):
        line = ElementData("Line", 1)
        # Insert children in the "wrong" order.
        line.add_child(ElementData("Switch", 3))
        line.add_child(ElementData("TelNo", 2, text="555"))
        xml = line.to_xml(customers_schema)
        assert [child.name for child in xml.children] == [
            "TelNo", "Switch",
        ]

    def test_to_xml_exposes_id_parent(self, customers_schema):
        order = ElementData("Order", 9)
        xml = order.to_xml(customers_schema, expose=(4,))
        assert xml.attrs["ID"] == "9"
        assert xml.attrs["PARENT"] == "4"
        root_xml = order.to_xml(customers_schema, expose=(None,))
        assert root_xml.attrs["PARENT"] == ""


class TestCombine:
    def test_combine_attaches_under_matching_parent(
            self, customers_schema, customers_s, customer_documents):
        feeds = fragment_customers(customer_documents, customers_s)
        order = feeds["Order"]
        service = feeds["Service"]
        combined = order.combine(service)
        assert combined.fragment.elements == {
            "Order", "Service", "ServiceName",
        }
        # Every order now carries exactly one service.
        for row in combined.rows:
            assert len(row.data.child_list("Service")) == 1

    def test_combine_row_counts_preserved(
            self, customers_s, customer_documents):
        feeds = fragment_customers(customer_documents, customers_s)
        orders_before = feeds["Order"].row_count()
        combined = feeds["Order"].combine(feeds["Service"])
        assert combined.row_count() == orders_before

    def test_orphan_child_rows_raise(self, customers_schema):
        order_fragment = Fragment(customers_schema, ["Order"])
        service_fragment = Fragment(
            customers_schema, ["Service", "ServiceName"]
        )
        orders = FragmentInstance(
            order_fragment,
            [FragmentRow(ElementData("Order", 1), None)],
        )
        services = FragmentInstance(
            service_fragment,
            [FragmentRow(ElementData("Service", 2), 999)],  # no parent 999
        )
        with pytest.raises(OperationError, match="missing parents"):
            orders.combine(services)

    def test_unrelated_fragments_raise(self, customers_schema):
        customer = FragmentInstance(
            Fragment(customers_schema, ["Customer", "CustName"])
        )
        line = FragmentInstance(
            Fragment(customers_schema, ["Line", "TelNo"])
        )
        with pytest.raises(OperationError):
            customer.combine(line)


class TestSplit:
    def test_split_produces_partition_instances(
            self, customers_schema, customer_documents):
        instance = whole_instance(customers_schema, customer_documents)
        total_elements = instance.element_count()
        pieces = instance.split([
            Fragment(customers_schema, ["Customer", "CustName"]),
            Fragment.full_subtree(customers_schema, "Order"),
        ])
        assert sum(piece.element_count() for piece in pieces) == \
            total_elements

    def test_split_sets_parent_references(
            self, customers_schema, customer_documents):
        instance = whole_instance(customers_schema, customer_documents)
        customer_piece, order_piece = instance.split([
            Fragment(customers_schema, ["Customer", "CustName"]),
            Fragment.full_subtree(customers_schema, "Order"),
        ])
        customer_eids = {row.eid for row in customer_piece}
        assert all(
            row.parent in customer_eids for row in order_piece
        )

    def test_split_combine_inverse(
            self, customers_schema, customer_documents):
        instance = whole_instance(customers_schema, customer_documents)
        reference = instance.copy()
        pieces = instance.split([
            Fragment(
                customers_schema,
                [name for name in customers_schema.element_names()
                 if name not in ("Feature", "FeatureID")],
            ),
            Fragment(customers_schema, ["Feature", "FeatureID"]),
        ])
        rebuilt = pieces[0].combine(pieces[1])
        original = [serialize(doc) for doc in reference.to_xml_documents()]
        roundtrip = [serialize(doc) for doc in rebuilt.to_xml_documents()]
        assert original == roundtrip

    def test_split_requires_partition(self, customers_schema,
                                      customer_documents):
        instance = whole_instance(customers_schema, customer_documents)
        with pytest.raises(OperationError):
            instance.split([
                Fragment(customers_schema, ["Customer", "CustName"]),
            ])


class TestInstanceViews:
    def test_sort_orders_by_parent_then_id(self, customers_schema):
        fragment = Fragment(customers_schema, ["Order"])
        instance = FragmentInstance(fragment, [
            FragmentRow(ElementData("Order", 5), 2),
            FragmentRow(ElementData("Order", 3), 1),
            FragmentRow(ElementData("Order", 4), 1),
        ])
        instance.sort()
        assert [(row.parent, row.eid) for row in instance] == [
            (1, 3), (1, 4), (2, 5),
        ]

    def test_sort_null_parents_precede_eid_zero_parent(
            self, customers_schema):
        # Regression: keying the sort on ``row.parent or 0`` collapsed
        # PARENT=None with PARENT=0, so root rows interleaved with the
        # children of a real eid-0 parent instead of leading the feed
        # (SQL sorts NULLs first).
        fragment = Fragment(customers_schema, ["Order"])
        instance = FragmentInstance(fragment, [
            FragmentRow(ElementData("Order", 2), 0),
            FragmentRow(ElementData("Order", 9), None),
            FragmentRow(ElementData("Order", 1), 0),
            FragmentRow(ElementData("Order", 8), None),
        ])
        instance.sort()
        assert [(row.parent, row.eid) for row in instance] == [
            (None, 8), (None, 9), (0, 1), (0, 2),
        ]

    def test_to_xml_documents_one_per_row(self, customers_s,
                                          customer_documents):
        feeds = fragment_customers(customer_documents, customers_s)
        orders = feeds["Order"]
        docs = orders.to_xml_documents()
        assert len(docs) == orders.row_count()
        assert all(doc.attrs["ID"] for doc in docs)

    def test_feed_size_below_xml_size(self, customers_s,
                                      customer_documents):
        feeds = fragment_customers(customer_documents, customers_s)
        for instance in feeds.values():
            assert instance.feed_size() <= instance.estimated_size() * 1.2

    def test_map_rows(self, customers_schema):
        fragment = Fragment(customers_schema, ["Order"])
        instance = FragmentInstance(fragment, [
            FragmentRow(ElementData("Order", 1), None),
        ])
        mapped = instance.map_rows(
            lambda row: FragmentRow(row.data, 42)
        )
        assert mapped.rows[0].parent == 42
        assert instance.rows[0].parent is None
