"""Property-based tests on the core invariants.

* ``Split`` then ``Combine`` reconstructs the original instance for any
  random schema, any random document and any random valid
  fragmentation — the paper's operations are lossless inverses.
* Split pieces always partition the element occurrences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fragment import Fragment
from repro.core.fragmentation import Fragmentation
from repro.core.instance import FragmentInstance, FragmentRow
from repro.schema.generator import random_schema
from repro.sim.random_fragmentation import random_fragmentation
from repro.workloads.docgen import generate_document
from repro.xmlkit.writer import serialize

import random


@st.composite
def schema_doc_fragmentation(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=14))
    schema_seed = draw(st.integers(min_value=0, max_value=10_000))
    doc_seed = draw(st.integers(min_value=0, max_value=10_000))
    schema = random_schema(n_nodes, seed=schema_seed, repeat_prob=0.4)
    document = generate_document(schema, seed=doc_seed)
    n_fragments = draw(st.integers(min_value=2, max_value=n_nodes))
    fragmentation = random_fragmentation(
        schema,
        n_fragments=n_fragments,
        rng=random.Random(draw(st.integers(0, 10_000))),
    )
    return schema, document, fragmentation


def _serialized(instance):
    return sorted(
        serialize(doc, indent=None)
        for doc in instance.to_xml_documents()
    )


@settings(max_examples=60, deadline=None)
@given(schema_doc_fragmentation())
def test_split_then_combine_is_identity(case):
    schema, document, fragmentation = case
    whole = Fragment.whole(schema)
    instance = FragmentInstance(
        whole, [FragmentRow(document, None)]
    )
    reference = _serialized(instance.copy())

    pieces = instance.split(list(fragmentation.fragments))
    by_name = {piece.fragment.name: piece for piece in pieces}

    # Re-combine child fragments into their parents, deepest first.
    ordered = sorted(
        fragmentation.fragments,
        key=lambda fragment: -schema.depth(fragment.root_name),
    )
    current = {piece.fragment.name: piece for piece in pieces}
    for fragment in ordered:
        if fragment is fragmentation.root_fragment():
            continue
        # Find the current instance containing the parent element.
        parent_element = fragment.parent_element()
        owner_name = next(
            name for name, piece in current.items()
            if parent_element in piece.fragment.elements
        )
        child = current.pop(fragment.name)
        current[owner_name] = current[owner_name].combine(child)

    (rebuilt,) = current.values()
    assert _serialized(rebuilt) == reference


@settings(max_examples=60, deadline=None)
@given(schema_doc_fragmentation())
def test_split_partitions_element_occurrences(case):
    schema, document, fragmentation = case
    whole = Fragment.whole(schema)
    total = document.element_count()
    instance = FragmentInstance(whole, [FragmentRow(document, None)])
    pieces = instance.split(list(fragmentation.fragments))
    assert sum(piece.element_count() for piece in pieces) == total
    # Row counts: one row per occurrence of each fragment root.
    for piece in pieces:
        root = piece.fragment.root_name
        expected = sum(
            1 for node in document.iter_all() if node.name == root
        )
        assert piece.row_count() == expected


@settings(max_examples=40, deadline=None)
@given(schema_doc_fragmentation())
def test_fragmentation_validity_holds_for_random_samples(case):
    schema, _, fragmentation = case
    # Constructing the Fragmentation already validates Definition 3.4;
    # re-validate structural facts directly.
    covered = set()
    for fragment in fragmentation:
        assert not (covered & fragment.elements)
        covered |= fragment.elements
    assert covered == set(schema.element_names())
