"""The four primitive operations as DAG nodes."""

import pytest

from repro.errors import OperationError
from repro.core.fragment import Fragment
from repro.core.ops import Combine, Location, Scan, Split, Write


class TestLocation:
    def test_other(self):
        assert Location.SOURCE.other() is Location.TARGET
        assert Location.TARGET.other() is Location.SOURCE

    def test_values(self):
        assert Location.SOURCE.value == "S"
        assert Location.TARGET.value == "T"


class TestNodes:
    def test_scan_ports(self, customers_schema):
        fragment = Fragment(customers_schema, ["Order"])
        scan = Scan(fragment)
        assert scan.fragment is fragment
        assert scan.outputs == (fragment,)
        assert scan.kind == "scan"

    def test_combine_ports(self, customers_schema):
        order = Fragment(customers_schema, ["Order"])
        service = Fragment(customers_schema, ["Service", "ServiceName"])
        combine = Combine(order, service)
        assert combine.parent_fragment is order
        assert combine.child_fragment is service
        assert combine.result.elements == order.elements | \
            service.elements

    def test_combine_validates_relation(self, customers_schema):
        customer = Fragment(customers_schema, ["Customer", "CustName"])
        line = Fragment(customers_schema, ["Line", "TelNo"])
        with pytest.raises(OperationError):
            Combine(customer, line)

    def test_split_ports(self, customers_schema):
        fragment = Fragment(
            customers_schema, ["Line", "TelNo", "Feature", "FeatureID"]
        )
        pieces = fragment.split_into(
            [["Line", "TelNo"], ["Feature", "FeatureID"]]
        )
        split = Split(fragment, pieces)
        assert split.pieces == tuple(pieces)
        assert split.inputs == (fragment,)

    def test_split_validates_partition(self, customers_schema):
        fragment = Fragment(customers_schema, ["Line", "TelNo"])
        bad_piece = Fragment(customers_schema, ["Line"])
        with pytest.raises(OperationError):
            Split(fragment, [bad_piece])

    def test_write_ports(self, customers_schema):
        fragment = Fragment(customers_schema, ["Order"])
        write = Write(fragment)
        assert write.fragment is fragment
        assert write.outputs == ()

    def test_labels(self, customers_schema):
        order = Fragment(customers_schema, ["Order"])
        service = Fragment(customers_schema, ["Service", "ServiceName"])
        assert Scan(order).label() == "Scan(Order)"
        assert Combine(order, service).label() == \
            "Combine(Order, Service_ServiceName)"

    def test_op_ids_unique(self, customers_schema):
        fragment = Fragment(customers_schema, ["Order"])
        ids = {Scan(fragment).op_id for _ in range(10)}
        assert len(ids) == 10

    def test_repr_includes_location(self, customers_schema):
        scan = Scan(Fragment(customers_schema, ["Order"]),
                    Location.SOURCE)
        assert "@S" in repr(scan)
