"""Fragmentations and validity (Definitions 3.3/3.4)."""

import pytest

from repro.errors import FragmentationError
from repro.core.fragment import Fragment
from repro.core.fragmentation import Fragmentation


class TestValidity:
    def test_valid_t_fragmentation(self, customers_t):
        names = {fragment.name for fragment in customers_t}
        assert names == {
            "Customer", "Order_Service", "Line_Switch", "Feature",
        }

    def test_overlap_rejected(self, customers_schema):
        with pytest.raises(FragmentationError) as excinfo:
            Fragmentation(customers_schema, [
                Fragment.whole(customers_schema),
                Fragment.single(customers_schema, "Order"),
            ])
        assert "Definition 3.4" in str(excinfo.value)

    def test_incomplete_rejected(self, customers_schema):
        with pytest.raises(FragmentationError) as excinfo:
            Fragmentation(customers_schema, [
                Fragment(customers_schema, ["Customer", "CustName"]),
            ])
        assert "does not cover" in str(excinfo.value)

    def test_empty_rejected(self, customers_schema):
        with pytest.raises(FragmentationError):
            Fragmentation(customers_schema, [])

    def test_duplicate_names_rejected(self, customers_schema):
        with pytest.raises(FragmentationError):
            Fragmentation(customers_schema, [
                Fragment(customers_schema, ["Customer", "CustName"],
                         "same"),
                Fragment.full_subtree(customers_schema, "Order", "same"),
            ])


class TestConstructors:
    def test_most_fragmented(self, customers_schema):
        mf = Fragmentation.most_fragmented(customers_schema)
        assert len(mf) == len(customers_schema)
        assert all(len(fragment) == 1 for fragment in mf)

    def test_least_fragmented_boundaries_at_repeats(self,
                                                    customers_schema):
        lf = Fragmentation.least_fragmented(customers_schema)
        roots = {fragment.root_name for fragment in lf}
        assert roots == {"Customer", "Order", "Line", "Feature"}

    def test_from_roots_must_include_schema_root(self,
                                                 customers_schema):
        with pytest.raises(FragmentationError):
            Fragmentation.from_roots(customers_schema, ["Order"])

    def test_from_roots_assignment(self, customers_schema):
        fragmentation = Fragmentation.from_roots(
            customers_schema, ["Customer", "Line"]
        )
        top = fragmentation.fragment_of("Service")
        assert top.root_name == "Customer"
        assert fragmentation.fragment_of("SwitchID").root_name == "Line"

    def test_whole_document(self, customers_schema):
        whole = Fragmentation.whole_document(customers_schema)
        assert len(whole) == 1
        assert whole.root_fragment().elements == frozenset(
            customers_schema.element_names()
        )


class TestNavigation:
    def test_fragment_lookup(self, customers_t):
        assert customers_t.fragment("Feature").root_name == "Feature"
        with pytest.raises(FragmentationError):
            customers_t.fragment("Nope")
        assert "Feature" in customers_t
        assert "Nope" not in customers_t

    def test_fragment_of(self, customers_t):
        assert customers_t.fragment_of("ServiceName").name == \
            "Order_Service"
        with pytest.raises(FragmentationError):
            customers_t.fragment_of("Nope")

    def test_parent_fragment(self, customers_t):
        feature = customers_t.fragment("Feature")
        parent = customers_t.parent_fragment(feature)
        assert parent.name == "Line_Switch"
        root = customers_t.root_fragment()
        assert customers_t.parent_fragment(root) is None

    def test_child_fragments(self, customers_t):
        root = customers_t.root_fragment()
        children = {
            fragment.name
            for fragment in customers_t.child_fragments(root)
        }
        assert children == {"Order_Service"}

    def test_fragment_tree_is_consistent(self, auction_lf):
        # Every non-root fragment's parent is a fragment of the set.
        for fragment in auction_lf:
            parent = auction_lf.parent_fragment(fragment)
            if fragment is auction_lf.root_fragment():
                assert parent is None
            else:
                assert parent in list(auction_lf)

    def test_flat_storable(self, customers_s, customers_t, auction_mf,
                           auction_lf):
        assert customers_t.is_flat_storable()
        assert auction_mf.is_flat_storable()
        assert auction_lf.is_flat_storable()
        # S has the denormalized Line_Feature fragment.
        assert not customers_s.is_flat_storable()

    def test_iteration_sorted_by_depth(self, customers_t):
        depths = [
            customers_t.schema.depth(fragment.root_name)
            for fragment in customers_t
        ]
        assert depths == sorted(depths)

    def test_repr_mentions_fragments(self, customers_t):
        assert "Order_Service" in repr(customers_t)


class TestXmarkFragmentations:
    def test_mf_one_per_element(self, auction_mf, auction_schema):
        assert len(auction_mf) == len(auction_schema)

    def test_lf_exactly_three(self, auction_lf):
        # Section 5: SITE_..., ITEM_..., CATEGORY_... — three fragments.
        assert len(auction_lf) == 3
        roots = {fragment.root_name for fragment in auction_lf}
        assert roots == {"site", "item", "category"}

    def test_lf_item_fragment_contents(self, auction_lf):
        item = auction_lf.fragment_of("item")
        assert item.elements == {
            "item", "location", "quantity", "iname", "payment",
            "idescription", "shipping", "mailbox",
        }
