"""The columnar dataplane core: layouts, batches, sizes, converters."""

import pytest

from repro.errors import OperationError
from repro.core.columnar import ColumnBatch, ColumnLayout, layout_of
from repro.core.fragment import Fragment
from repro.core.fragmentation import Fragmentation
from repro.core.instance import (
    row_estimated_size,
    row_feed_size,
)
from repro.core.stream import RowBatch
from repro.services.endpoint import RelationalEndpoint
from repro.xmlkit.writer import serialize


def _docs(fragment, rows):
    """Rows as exchanged XML documents (ID/PARENT exposed)."""
    return [
        serialize(row.data.to_xml(
            fragment.schema, expose=(row.parent,)
        ))
        for row in rows
    ]


@pytest.fixture(scope="module")
def mf_endpoint(auction_mf, auction_document):
    endpoint = RelationalEndpoint("columnar-src", auction_mf)
    endpoint.load_document(auction_document)
    return endpoint


@pytest.fixture(scope="module")
def item_rows(mf_endpoint, auction_mf):
    fragment = next(
        fragment for fragment in auction_mf
        if fragment.root_name == "item"
    )
    instance = mf_endpoint.scan(fragment)
    assert len(instance.rows) > 10
    return fragment, instance.rows


class TestColumnLayout:
    def test_id_and_parent_lead(self, auction_mf):
        for fragment in auction_mf:
            layout = layout_of(fragment)
            assert layout.specs[0].name == "id"
            assert layout.specs[0].role == "id"
            assert layout.specs[1].name == "parent"
            assert layout.specs[1].role == "parent"

    def test_positions_match_specs(self, auction_mf):
        layout = layout_of(next(iter(auction_mf)))
        for index, spec in enumerate(layout.specs):
            assert layout.positions[spec.name] == index

    def test_eid_column_of_root_is_id(self, auction_mf):
        for fragment in auction_mf:
            layout = layout_of(fragment)
            assert layout.eid_column(fragment.root_name) == "id"

    def test_layouts_are_cached(self, auction_mf):
        fragment = next(iter(auction_mf))
        assert layout_of(fragment) is layout_of(fragment)

    def test_non_flat_fragment_rejected(self, auction_schema):
        whole = Fragmentation.whole_document(auction_schema)
        with pytest.raises(OperationError, match="flat"):
            ColumnLayout(whole.root_fragment())

    def test_matches_relational_table_layout(self, mf_endpoint,
                                             auction_mf):
        """The dataplane layout IS the table layout: same specs in the
        same order (what makes columnar scan/write straight slices)."""
        for fragment in auction_mf:
            table_layout = mf_endpoint.mapper.layout_for(fragment)
            assert [
                (s.name, s.role, s.element, s.attribute)
                for s in layout_of(fragment).specs
            ] == [
                (s.name, s.role, s.element, s.attribute)
                for s in table_layout.specs
            ]


class TestRoundTrip:
    def test_rows_survive_the_columnar_round_trip(self, item_rows):
        fragment, rows = item_rows
        batch = ColumnBatch.from_rows(fragment, rows, 0)
        rebuilt = batch.rows
        assert [row.parent for row in rebuilt] == \
            [row.parent for row in rows]
        assert _docs(fragment, rebuilt) == _docs(fragment, rows)

    def test_from_row_batch_keeps_seq(self, item_rows):
        fragment, rows = item_rows
        batch = ColumnBatch.from_row_batch(RowBatch(fragment, rows, 7))
        assert batch.seq == 7
        assert batch.row_count() == len(rows)

    def test_null_id_rejected(self, item_rows):
        fragment, rows = item_rows
        batch = ColumnBatch.from_rows(fragment, rows[:2], 0)
        batch.columns[0][0] = None
        with pytest.raises(OperationError, match="NULL id"):
            _ = batch.rows

    def test_width_mismatch_rejected(self, item_rows):
        fragment, _ = item_rows
        with pytest.raises(OperationError, match="columns"):
            ColumnBatch(fragment, [[1], [None]], 0)


class TestSlicing:
    def test_slice_is_zero_copy(self, item_rows):
        fragment, rows = item_rows
        batch = ColumnBatch.from_rows(fragment, rows, 0)
        view = batch.slice(3, 9)
        assert view.columns is batch.columns
        assert view.row_count() == 6
        assert view.column("id") == batch.column("id")[3:9]

    def test_full_range_column_is_shared(self, item_rows):
        fragment, rows = item_rows
        batch = ColumnBatch.from_rows(fragment, rows, 0)
        assert batch.column("id") is batch.columns[0]

    def test_slice_rows_match(self, item_rows):
        fragment, rows = item_rows
        batch = ColumnBatch.from_rows(fragment, rows, 0)
        view = batch.slice(2, 5)
        assert _docs(fragment, view.rows) == _docs(fragment, rows[2:5])

    def test_out_of_range_slice_rejected(self, item_rows):
        fragment, rows = item_rows
        batch = ColumnBatch.from_rows(fragment, rows, 0)
        with pytest.raises(OperationError, match="out of range"):
            batch.slice(0, len(rows) + 1)


class TestSizes:
    """Column-wise accounting must agree with the per-row formulas
    exactly — that is what keeps meters and channels dataplane-blind."""

    def test_estimated_size_matches_row_formula(self, item_rows):
        fragment, rows = item_rows
        batch = ColumnBatch.from_rows(fragment, rows, 0)
        assert batch.estimated_size() == \
            sum(row_estimated_size(row) for row in rows)

    def test_feed_size_matches_row_formula(self, item_rows):
        fragment, rows = item_rows
        batch = ColumnBatch.from_rows(fragment, rows, 0)
        assert batch.feed_size() == \
            sum(row_feed_size(row) for row in rows)

    def test_row_sizes_match_row_formula(self, item_rows):
        fragment, rows = item_rows
        batch = ColumnBatch.from_rows(fragment, rows, 0)
        assert batch.row_sizes() == \
            [row_estimated_size(row) for row in rows]

    def test_column_sizes_sum_to_estimated(self, item_rows):
        fragment, rows = item_rows
        batch = ColumnBatch.from_rows(fragment, rows, 0)
        assert (sum(batch.column_sizes().values())
                + 24 * batch.row_count()) == batch.estimated_size()

    def test_slice_sizes_are_slice_local(self, item_rows):
        fragment, rows = item_rows
        batch = ColumnBatch.from_rows(fragment, rows, 0)
        view = batch.slice(0, 4)
        assert view.estimated_size() == \
            sum(row_estimated_size(row) for row in rows[:4])


class TestColumnarScan:
    def test_scan_columns_match_scan_rows(self, mf_endpoint,
                                          auction_mf):
        """The native columnar scan and the tree-building row scan
        must normalize to identical cells for every fragment."""
        for fragment in auction_mf:
            via_rows = ColumnBatch.from_rows(
                fragment, mf_endpoint.scan(fragment).rows, 0
            )
            columnar = list(mf_endpoint.mapper.scan_fragment_columns(
                mf_endpoint.db, fragment, batch_rows=10 ** 9
            ))
            assert len(columnar) == 1
            assert columnar[0].columns == via_rows.columns

    def test_row_tuples_are_layout_ordered(self, item_rows):
        fragment, rows = item_rows
        batch = ColumnBatch.from_rows(fragment, rows[:3], 0)
        tuples = batch.row_tuples()
        layout = layout_of(fragment)
        assert len(tuples) == 3
        assert all(len(entry) == len(layout.specs) for entry in tuples)
        assert [entry[0] for entry in tuples] == batch.column("id")
