"""Mappings between fragmentations (Definition 3.5)."""

import pytest

from repro.errors import MappingError
from repro.core.fragmentation import Fragmentation
from repro.core.mapping import derive_mapping
from repro.workloads.customer import customer_schema, s_fragmentation, \
    t_fragmentation


class TestDeriveMapping:
    def test_entry_per_target_fragment(self, customers_s, customers_t):
        mapping = derive_mapping(customers_s, customers_t)
        assert {entry.target.name for entry in mapping.entries} == {
            fragment.name for fragment in customers_t
        }

    def test_identity_entry(self, customers_s, customers_t):
        mapping = derive_mapping(customers_s, customers_t)
        assert mapping.entry_for("Customer").is_identity

    def test_combine_entry(self, customers_s, customers_t):
        mapping = derive_mapping(customers_s, customers_t)
        entry = mapping.entry_for("Order_Service")
        assert {fragment.name for fragment in entry.sources} == {
            "Order", "Service",
        }
        assert not entry.is_identity

    def test_split_requirements(self, customers_s, customers_t):
        mapping = derive_mapping(customers_s, customers_t)
        requirements = mapping.split_requirements()
        # Only the denormalized Line_Feature needs splitting (Fig. 5).
        assert set(requirements) == {"Line_Feature"}
        parts = requirements["Line_Feature"]
        assert sorted(sorted(part) for part in parts) == [
            ["Feature", "FeatureID"], ["Line", "TelNo"],
        ]

    def test_contributions_partition_targets(self, customers_s,
                                             customers_t):
        mapping = derive_mapping(customers_s, customers_t)
        for entry in mapping.entries:
            union = set()
            total = 0
            for part in entry.contributions.values():
                union |= part
                total += len(part)
            assert union == set(entry.target.elements)
            assert total == len(entry.target.elements)

    def test_unknown_target_raises(self, customers_s, customers_t):
        mapping = derive_mapping(customers_s, customers_t)
        with pytest.raises(MappingError):
            mapping.entry_for("Nope")

    def test_different_schemas_rejected(self, customers_s,
                                        auction_lf):
        with pytest.raises(MappingError):
            derive_mapping(customers_s, auction_lf)

    def test_reparsed_schema_accepted(self, customers_s, customers_t):
        # Remote systems re-parse the agreed schema document, so the
        # target fragmentation arrives over a distinct but structurally
        # identical SchemaTree.  derive_mapping must treat it as the
        # same schema (fingerprint match), like DiscoveryAgency does.
        reparsed_schema = customer_schema()  # a distinct tree object
        assert reparsed_schema is not customers_s.schema
        reparsed = t_fragmentation(reparsed_schema)
        mapping = derive_mapping(customers_s, reparsed)
        same_tree = derive_mapping(customers_s, customers_t)
        assert {entry.target.name for entry in mapping.entries} == {
            entry.target.name for entry in same_tree.entries
        }
        assert mapping.split_requirements() == \
            same_tree.split_requirements()

    def test_whole_document_to_t_is_pure_split(self, customers_schema,
                                               customers_t):
        whole = Fragmentation.whole_document(customers_schema)
        mapping = derive_mapping(whole, customers_t)
        requirements = mapping.split_requirements()
        assert len(requirements) == 1
        (parts,) = requirements.values()
        assert len(parts) == len(customers_t)

    def test_identity_mapping_everywhere(self, customers_t):
        mapping = derive_mapping(customers_t, customers_t)
        assert all(entry.is_identity for entry in mapping.entries)
        assert not mapping.split_requirements()

    def test_mf_to_lf_no_splits(self, auction_mf, auction_lf):
        mapping = derive_mapping(auction_mf, auction_lf)
        assert not mapping.split_requirements()

    def test_lf_to_mf_all_splits(self, auction_mf, auction_lf):
        mapping = derive_mapping(auction_lf, auction_mf)
        requirements = mapping.split_requirements()
        # Every multi-element LF fragment must split.
        assert set(requirements) == {
            fragment.name for fragment in auction_lf if len(fragment) > 1
        }
