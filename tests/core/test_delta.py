"""Delta computation: version stamps, tombstones, contribution
closure, and the filtered source/merge target views."""

import pytest

from repro.errors import EndpointError
from repro.core.delta import (
    DeltaSet,
    DeltaSourceView,
    DeltaTargetView,
    VersionLog,
    compute_delta,
    instance_digest,
)
from repro.core.instance import ElementData, FragmentInstance, FragmentRow
from repro.services.endpoint import InMemoryEndpoint, RelationalEndpoint
from repro.workloads.customer import fragment_customers
from repro.workloads.mutate import mutate_endpoint


def _rows(eids, parent=None):
    return [
        FragmentRow(ElementData("Order", eid), parent) for eid in eids
    ]


class TestVersionLog:
    def test_bump_is_monotone(self):
        log = VersionLog()
        assert log.current == 0
        assert [log.bump(), log.bump(), log.bump()] == [1, 2, 3]

    def test_stamp_defaults_to_current(self):
        log = VersionLog()
        log.bump()
        log.bump()
        assert log.stamp("F", 7) == 2
        assert log.version_of("F", 7) == 2
        assert log.version_of("F", 8) == 0
        assert log.version_of("G", 7) == 0

    def test_stamp_rows_writes_feed_versions(self):
        log = VersionLog()
        log.bump()
        log.stamp("Order", 2)
        rows = _rows([1, 2, 3])
        log.stamp_rows("Order", rows)
        assert [row.version for row in rows] == [0, 1, 0]

    def test_record_delete_keeps_occurrences(self):
        log = VersionLog()
        log.bump()
        data = ElementData("Order", 4)
        data.add_child(ElementData("OrderDate", 5))
        log.stamp("Order", 4)
        tombstone = log.record_delete(
            "Order", FragmentRow(data, 9), version=log.bump()
        )
        assert tombstone.version == 2
        assert tombstone.eid == 4
        assert tombstone.parent == 9
        assert tombstone.occurrences == (
            (4, "Order"), (5, "OrderDate"),
        )
        # The stamp died with the row.
        assert log.version_of("Order", 4) == 0

    def test_tombstones_since_filters_by_version(self):
        log = VersionLog()
        early = log.bump()
        log.record_delete("F", _rows([1])[0], version=early)
        late = log.bump()
        log.record_delete("F", _rows([2])[0], version=late)
        assert [t.eid for t in log.tombstones_since(0)] == [1, 2]
        assert [t.eid for t in log.tombstones_since(early)] == [2]
        assert log.tombstones_since(late) == []


class TestComputeDelta:
    @pytest.fixture
    def versioned_mf(self, auction_mf, auction_document):
        source = RelationalEndpoint("delta-mf", auction_mf)
        source.load_document(auction_document)
        source.enable_versioning()
        return source

    def test_requires_version_log(self, versioned_mf, auction_mf,
                                  auction_lf):
        bare = InMemoryEndpoint("unversioned")
        with pytest.raises(EndpointError, match="no version log"):
            compute_delta(bare, list(auction_mf), list(auction_lf), 0)

    def test_no_changes_is_empty(self, versioned_mf, auction_mf,
                                 auction_lf):
        delta = compute_delta(
            versioned_mf, list(auction_mf), list(auction_lf),
            versioned_mf.versions.current,
        )
        assert delta.is_empty()
        assert delta.changed_rows == 0
        assert delta.shipped_rows == 0
        assert delta.total_rows == sum(
            versioned_mf.scan(fragment).row_count()
            for fragment in auction_mf
        )

    def test_closure_covers_every_affected_target(
            self, versioned_mf, auction_mf, auction_lf):
        since = versioned_mf.versions.current
        report = mutate_endpoint(versioned_mf, 0.1, seed=11)
        delta = compute_delta(
            versioned_mf, list(auction_mf), list(auction_lf), since
        )
        assert delta.changed_rows == report.updated
        assert delta.shipped_rows >= delta.changed_rows
        assert delta.high == versioned_mf.versions.current
        # The closure invariant: re-derive the contribution graph and
        # check every affected target row's contributors all ship —
        # otherwise a dataplane would see a combine orphan.
        target_roots = {
            fragment.root_name: fragment.name
            for fragment in auction_lf
        }
        shipped = {
            (name, eid)
            for name, eids in delta.ship.items() for eid in eids
        }
        affected = {
            (name, eid)
            for name, eids in delta.affected.items() for eid in eids
        }
        element_of, parent_of, rows = {}, {}, []
        for fragment in auction_mf:
            for row in versioned_mf.scan(fragment).rows:
                rows.append((fragment.name, row))
                parent_of[row.data.eid] = row.parent
                for node in row.data.iter_all():
                    element_of[node.eid] = node.name
                    for group in node.children.values():
                        for child in group:
                            parent_of[child.eid] = node.eid

        def target_of(eid):
            cursor = eid
            while element_of[cursor] not in target_roots:
                cursor = parent_of[cursor]
            return target_roots[element_of[cursor]], cursor

        for name, row in rows:
            targets = {
                target_of(node.eid) for node in row.data.iter_all()
            }
            if targets & affected:
                assert (name, row.eid) in shipped
                assert targets <= affected

    def test_coarse_delete_tombstones_target_rows(
            self, auction_lf, auction_mf, auction_document):
        source = RelationalEndpoint("delta-lf", auction_lf)
        source.load_document(auction_document)
        source.enable_versioning()
        since = source.versions.current
        report = mutate_endpoint(
            source, 0.0, seed=5, delete_fraction=0.05
        )
        assert report.deleted > 0
        delta = compute_delta(
            source, list(auction_lf), list(auction_mf), since
        )
        # Deleting a coarse LF row kills the fine MF target rows that
        # were rooted inside it.
        assert delta.deleted_rows > 0
        # A deleted target row is never also merged.
        for name, doomed in delta.deletes.items():
            assert not doomed & delta.affected.get(name, set())


class TestDeltaViews:
    @pytest.fixture
    def order_feed(self, customers_s, customer_documents):
        return fragment_customers(
            customer_documents, customers_s
        )["Order"]

    def test_source_view_filters_preserving_order(self, customers_s,
                                                  order_feed):
        endpoint = InMemoryEndpoint("m")
        endpoint.put(order_feed)
        fragment = customers_s.fragment("Order")
        keep = {row.eid for row in order_feed.rows[::2]}
        view = DeltaSourceView(
            endpoint, DeltaSet(0, 1, ship={"Order": keep})
        )
        scanned = view.scan(fragment)
        assert [row.eid for row in scanned] == [
            row.eid for row in endpoint.scan(fragment)
            if row.eid in keep
        ]
        streamed = [
            row.eid
            for batch in view.scan_stream(fragment, 2)
            for row in batch.rows
        ]
        assert streamed == [row.eid for row in scanned]

    def test_columnar_scan_filters_too(self, auction_mf,
                                       auction_document):
        endpoint = RelationalEndpoint("col", auction_mf)
        endpoint.load_document(auction_document)
        fragment = auction_mf.fragment("item")
        eids = [
            row.eid for row in endpoint.scan(fragment).rows
        ]
        keep = set(eids[1::2])
        view = DeltaSourceView(
            endpoint, DeltaSet(0, 1, ship={"item": keep})
        )
        filtered = [
            eid
            for batch in view.scan_stream_columnar(fragment, 4)
            for eid in batch.column("id")
        ]
        assert filtered == [eid for eid in eids if eid in keep]

    def test_target_view_merges_only_affected(self, customers_s,
                                              order_feed):
        endpoint = InMemoryEndpoint("t")
        endpoint.put(order_feed.copy())
        endpoint.enable_versioning()
        fragment = customers_s.fragment("Order")
        victim = order_feed.rows[0]
        replacement = FragmentRow(
            ElementData(victim.data.name, victim.data.eid,
                        dict(victim.data.attrs), "rewritten"),
            victim.parent,
        )
        decoy = FragmentRow(
            ElementData(victim.data.name, 999_999), None
        )
        view = DeltaTargetView(
            endpoint,
            DeltaSet(0, 1, affected={"Order": {victim.eid}}),
        )
        view.write(
            fragment, FragmentInstance(fragment, [replacement, decoy])
        )
        stored = {
            row.eid: row for row in endpoint.scan(fragment).rows
        }
        assert stored[victim.eid].data.text == "rewritten"
        assert 999_999 not in stored  # not affected -> not merged


class TestDigests:
    def test_digest_ignores_row_order(self, customers_s,
                                      customer_documents):
        feed = fragment_customers(
            customer_documents, customers_s
        )["Order"]
        shuffled = FragmentInstance(
            feed.fragment, list(reversed(feed.rows))
        )
        assert instance_digest(feed) == instance_digest(shuffled)

    def test_digest_sees_content_changes(self, customers_s,
                                         customer_documents):
        feed = fragment_customers(
            customer_documents, customers_s
        )["Order"]
        mutated = feed.copy()
        mutated.rows[0].data.attrs["tainted"] = "yes"
        assert instance_digest(feed) != instance_digest(mutated)
