"""Fragments (Definition 3.1) as pruned schema subtrees."""

import pytest

from repro.errors import FragmentationError, OperationError
from repro.core.fragment import Fragment


class TestConstruction:
    def test_full_subtree(self, customers_schema):
        fragment = Fragment.full_subtree(customers_schema, "Line")
        assert fragment.root_name == "Line"
        assert fragment.elements == {
            "Line", "TelNo", "Switch", "SwitchID", "Feature", "FeatureID",
        }

    def test_whole(self, customers_schema):
        fragment = Fragment.whole(customers_schema)
        assert fragment.root_name == "Customer"
        assert len(fragment) == len(customers_schema)

    def test_single(self, customers_schema):
        fragment = Fragment.single(customers_schema, "Order")
        assert fragment.elements == {"Order"}

    def test_pruned_subtree(self, customers_schema):
        # The paper's LINE_FEATURE: Line + TelNo + Feature, no Switch.
        fragment = Fragment(
            customers_schema, ["Line", "TelNo", "Feature", "FeatureID"]
        )
        assert fragment.root_name == "Line"
        assert "Switch" not in fragment

    def test_default_name_is_preorder_join(self, customers_schema):
        fragment = Fragment(
            customers_schema, ["Service", "ServiceName"]
        )
        assert fragment.name == "Service_ServiceName"

    def test_explicit_name(self, customers_schema):
        fragment = Fragment(customers_schema, ["Order"], "ORD")
        assert fragment.name == "ORD"

    def test_empty_rejected(self, customers_schema):
        with pytest.raises(FragmentationError):
            Fragment(customers_schema, [])

    def test_disconnected_rejected(self, customers_schema):
        with pytest.raises(FragmentationError):
            Fragment(customers_schema, ["Line", "SwitchID"])

    def test_two_tops_rejected(self, customers_schema):
        with pytest.raises(Exception):
            Fragment(customers_schema, ["CustName", "Order"])

    def test_unknown_element_rejected(self, customers_schema):
        with pytest.raises(Exception):
            Fragment(customers_schema, ["Nope"])


class TestProperties:
    def test_parent_element(self, customers_schema):
        fragment = Fragment(customers_schema, ["Order"])
        assert fragment.parent_element() == "Customer"
        whole = Fragment.whole(customers_schema)
        assert whole.parent_element() is None

    def test_flat_storable(self, customers_schema):
        assert Fragment(
            customers_schema, ["Line", "TelNo", "Switch", "SwitchID"]
        ).is_flat_storable()
        # Feature is repeated below Line.
        assert not Fragment(
            customers_schema, ["Line", "TelNo", "Feature", "FeatureID"]
        ).is_flat_storable()

    def test_children_of_respects_pruning(self, customers_schema):
        fragment = Fragment(
            customers_schema, ["Line", "TelNo", "Feature", "FeatureID"]
        )
        names = [node.name for node in fragment.children_of("Line")]
        assert names == ["TelNo", "Feature"]  # Switch pruned

    def test_leaf_elements(self, customers_schema):
        fragment = Fragment(
            customers_schema, ["Order", "Service", "ServiceName"]
        )
        assert fragment.leaf_elements() == ["ServiceName"]

    def test_is_leaf_in_fragment(self, customers_schema):
        fragment = Fragment(customers_schema, ["Order"])
        assert fragment.is_leaf_in_fragment("Order")

    def test_equality_and_hash(self, customers_schema):
        first = Fragment(customers_schema, ["Order"], "x")
        second = Fragment(customers_schema, ["Order"], "y")
        assert first == second  # names do not matter
        assert hash(first) == hash(second)
        assert first != Fragment(customers_schema, ["Service",
                                                    "ServiceName"])

    def test_attribute_columns(self, auction_schema):
        fragment = Fragment.full_subtree(auction_schema, "item")
        assert ("item", "id") in fragment.attribute_columns()
        assert ("item", "featured") in fragment.attribute_columns()


class TestCombineSplitAlgebra:
    def test_can_combine_parent_child(self, customers_schema):
        order = Fragment(customers_schema, ["Order"])
        service = Fragment(customers_schema, ["Service", "ServiceName"])
        assert order.can_combine(service)
        assert not service.can_combine(order)

    def test_cannot_combine_unrelated(self, customers_schema):
        # The paper's example: Line and Customer cannot be combined.
        customer = Fragment(customers_schema, ["Customer", "CustName"])
        line = Fragment(customers_schema, ["Line", "TelNo"])
        assert not customer.can_combine(line)
        with pytest.raises(OperationError):
            customer.combined_with(line)

    def test_combined_with(self, customers_schema):
        order = Fragment(customers_schema, ["Order"])
        service = Fragment(customers_schema, ["Service", "ServiceName"])
        combined = order.combined_with(service)
        assert combined.root_name == "Order"
        assert combined.elements == {"Order", "Service", "ServiceName"}
        assert combined.name == "Order_Service_ServiceName"

    def test_split_into_partition(self, customers_schema):
        fragment = Fragment(
            customers_schema, ["Line", "TelNo", "Feature", "FeatureID"]
        )
        line, feature = fragment.split_into(
            [["Line", "TelNo"], ["Feature", "FeatureID"]]
        )
        assert line.root_name == "Line"
        assert feature.root_name == "Feature"

    def test_split_must_partition(self, customers_schema):
        fragment = Fragment(customers_schema, ["Line", "TelNo"])
        with pytest.raises(OperationError):
            fragment.split_into([["Line"]])  # misses TelNo
        with pytest.raises(OperationError):
            fragment.split_into([["Line", "TelNo"], ["TelNo"]])

    def test_split_names(self, customers_schema):
        fragment = Fragment(customers_schema, ["Line", "TelNo"])
        pieces = fragment.split_into(
            [["Line"], ["TelNo"]], names=["L", "T"]
        )
        assert [piece.name for piece in pieces] == ["L", "T"]
        with pytest.raises(OperationError):
            fragment.split_into([["Line"], ["TelNo"]], names=["L"])

    def test_combine_then_elements_are_union(self, customers_schema):
        line = Fragment(customers_schema, ["Line", "TelNo"])
        switch = Fragment(customers_schema, ["Switch", "SwitchID"])
        combined = line.combined_with(switch)
        assert combined.elements == line.elements | switch.elements
