"""The fragmentation advisor (the paper's Section 7 future work)."""

import pytest

from repro.core.advisor import (
    exchange_objective,
    recommend_fragmentation,
)
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel, MachineProfile
from repro.core.fragmentation import Fragmentation


@pytest.fixture
def model(auction_schema):
    return CostModel(
        StatisticsCatalog.synthetic(auction_schema, fanout=4.0),
        bandwidth=100.0,
    )


class TestRecommendFragmentation:
    def test_discovers_identity_with_peer(self, auction_schema,
                                          auction_lf, model):
        # With similar machines, matching the peer's fragmentation
        # exactly removes every Combine/Split: the advisor should find
        # it (LF is also the search start here, so zero steps).
        objective = exchange_objective(auction_lf, model)
        result = recommend_fragmentation(auction_schema, objective)
        assert {f.root_name for f in result.fragmentation} == {
            f.root_name for f in auction_lf
        }

    def test_improves_over_mismatched_start(self, auction_schema,
                                            auction_lf, auction_mf,
                                            model):
        objective = exchange_objective(auction_lf, model)
        start_cost = objective(auction_mf)
        result = recommend_fragmentation(
            auction_schema, objective, start=auction_mf
        )
        assert result.cost < start_cost
        assert result.steps > 0
        assert result.evaluations > result.steps

    def test_flat_storable_constraint(self, customers_schema, model,
                                      customers_t):
        from repro.core.cost.estimates import StatisticsCatalog
        from repro.core.cost.model import CostModel

        customer_model = CostModel(
            StatisticsCatalog.synthetic(customers_schema)
        )
        objective = exchange_objective(
            customers_t, customer_model, flat_storable_only=True
        )
        result = recommend_fragmentation(customers_schema, objective)
        assert result.fragmentation.is_flat_storable()

    def test_consumer_side_objective(self, auction_schema, auction_mf,
                                     model):
        objective = exchange_objective(
            auction_mf, model, as_source=False
        )
        result = recommend_fragmentation(auction_schema, objective)
        assert result.cost < float("inf")
        # The result is a valid fragmentation by construction.
        assert isinstance(result.fragmentation, Fragmentation)

    def test_max_steps_bounds_search(self, auction_schema, auction_lf,
                                     auction_mf, model):
        objective = exchange_objective(auction_lf, model)
        result = recommend_fragmentation(
            auction_schema, objective, start=auction_mf, max_steps=1
        )
        assert result.steps <= 1

    def test_fast_peer_changes_recommendation_cost(self,
                                                   auction_schema,
                                                   auction_lf):
        stats = StatisticsCatalog.synthetic(auction_schema, fanout=4.0)
        slow = CostModel(stats, bandwidth=100.0)
        fast_target = CostModel(
            stats, target=MachineProfile("t", speed=10.0),
            bandwidth=100.0,
        )
        slow_result = recommend_fragmentation(
            auction_schema, exchange_objective(auction_lf, slow)
        )
        fast_result = recommend_fragmentation(
            auction_schema, exchange_objective(auction_lf, fast_target)
        )
        assert fast_result.cost <= slow_result.cost
