"""The greedy algorithm (Section 4.3)."""

import math

import pytest

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel, CostWeights, MachineProfile
from repro.core.mapping import derive_mapping
from repro.core.ops.base import Location
from repro.core.optimizer.exhaustive import cost_based_optim
from repro.core.optimizer.greedy import (
    greedy_optimize,
    greedy_placement,
    greedy_program,
)
from repro.core.optimizer.placement import placement_cost
from repro.core.program.builder import build_transfer_program
from repro.core.program.render import summary


@pytest.fixture
def model(customers_schema):
    return CostModel(StatisticsCatalog.synthetic(customers_schema))


class TestGreedyProgram:
    def test_same_shape_as_canonical(self, customers_s, customers_t,
                                     model):
        mapping = derive_mapping(customers_s, customers_t)
        program = greedy_program(mapping, model)
        program.validate()
        assert summary(program) == "scan=5 combine=2 split=1 write=4"

    def test_xmark_shape(self, auction_mf, auction_lf, auction_schema):
        model = CostModel(StatisticsCatalog.synthetic(auction_schema))
        program = greedy_program(
            derive_mapping(auction_mf, auction_lf), model
        )
        assert summary(program) == "scan=24 combine=21 split=0 write=3"


class TestGreedyPlacement:
    def test_legal_and_total(self, customers_s, customers_t, model):
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        placement = greedy_placement(program, model)
        program.validate_placement(placement)

    def test_not_better_than_optimal(self, customers_s, customers_t,
                                     model):
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        greedy = placement_cost(
            program, greedy_placement(program, model), model
        )
        _, optimal = cost_based_optim(program, model)
        assert greedy >= optimal - 1e-9

    def test_prefers_faster_system(self, customers_s, customers_t,
                                   customers_schema):
        stats = StatisticsCatalog.synthetic(customers_schema)
        fast_target = CostModel(
            stats, target=MachineProfile("t", speed=50.0),
            bandwidth=1e12,
        )
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        placement = greedy_placement(program, fast_target)
        for node in program.nodes:
            if node.kind in ("combine", "split"):
                assert placement[node.op_id] is Location.TARGET

    def test_respects_dumb_client(self, customers_s, customers_t,
                                  customers_schema):
        stats = StatisticsCatalog.synthetic(customers_schema)
        model = CostModel(
            stats,
            target=MachineProfile("t", speed=50.0, can_combine=False,
                                  can_split=False),
        )
        program = build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )
        placement = greedy_placement(program, model)
        cost = placement_cost(program, placement, model)
        assert math.isfinite(cost)
        for node in program.nodes:
            if node.kind in ("combine", "split"):
                assert placement[node.op_id] is Location.SOURCE

    def test_tie_break_cuts_cheapest_edge(self, customers_t,
                                          customers_schema):
        # Identical machines: every placement has equal computation,
        # so greedy falls to the min-communication tie-break and the
        # result must still be legal and finite.
        stats = StatisticsCatalog.synthetic(customers_schema)
        model = CostModel(stats)
        program = build_transfer_program(
            derive_mapping(
                customers_t, customers_t
            )
        )
        placement = greedy_placement(program, model)
        program.validate_placement(placement)


class TestGreedyWeights:
    """Regression: greedy_placement used to ignore its ``weights``
    argument entirely — formula-1 weights must actually steer it."""

    @pytest.fixture
    def fast_target(self, customers_schema):
        return CostModel(
            StatisticsCatalog.synthetic(customers_schema),
            target=MachineProfile("t", speed=50.0),
            bandwidth=1e12,
        )

    @pytest.fixture
    def program(self, customers_s, customers_t):
        return build_transfer_program(
            derive_mapping(customers_s, customers_t)
        )

    def test_zero_computation_weight_flips_placement(
            self, program, fast_target):
        # Default weights: the 50x-faster target pulls all processing
        # over.  A zero computation weight mutes that preference, so
        # every decision falls to the communication tie-break and the
        # placement changes — impossible while weights were ignored.
        default = greedy_placement(program, fast_target)
        for node in program.nodes:
            if node.kind in ("combine", "split"):
                assert default[node.op_id] is Location.TARGET
        skewed = greedy_placement(
            program, fast_target,
            CostWeights(computation=0.0, communication=1.0),
        )
        program.validate_placement(skewed)
        assert skewed != default

    def test_positive_scaling_is_invariant(self, program, fast_target):
        # Multiplying both weights by the same positive factor scales
        # every compared quantity equally: same argmax, same placement.
        default = greedy_placement(program, fast_target)
        scaled = greedy_placement(
            program, fast_target,
            CostWeights(computation=7.0, communication=7.0),
        )
        assert scaled == default

    def test_probe_weights_inherited(self, customers_schema, program):
        # No explicit argument: the probe's own weights apply (the
        # resolution rule the exhaustive search uses).
        weighted_model = CostModel(
            StatisticsCatalog.synthetic(customers_schema),
            target=MachineProfile("t", speed=50.0),
            weights=CostWeights(computation=0.0, communication=1.0),
            bandwidth=1e12,
        )
        inherited = greedy_placement(program, weighted_model)
        explicit = greedy_placement(
            program, weighted_model,
            CostWeights(computation=0.0, communication=1.0),
        )
        assert inherited == explicit


class TestGreedyOptimize:
    def test_end_to_end(self, customers_s, customers_t, model):
        program, placement = greedy_optimize(
            derive_mapping(customers_s, customers_t), model
        )
        program.validate_placement(placement)
        assert math.isfinite(
            placement_cost(program, placement, model)
        )
