"""Algorithm 1: the fast search, the literal worklist, and agreement."""

import math

import pytest

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel, MachineProfile
from repro.core.mapping import derive_mapping
from repro.core.ops.base import Location
from repro.core.optimizer.exhaustive import (
    cost_based_optim,
    cost_based_optim_literal,
    cost_based_pessim,
    count_placements,
    enumerate_placements,
)
from repro.core.optimizer.placement import placement_cost
from repro.core.program.builder import build_transfer_program


@pytest.fixture
def customer_program(customers_s, customers_t):
    return build_transfer_program(
        derive_mapping(customers_s, customers_t)
    )


@pytest.fixture
def model(customers_schema):
    return CostModel(StatisticsCatalog.synthetic(customers_schema))


class TestFastSearch:
    def test_returns_legal_total_placement(self, customer_program,
                                           model):
        placement, cost = cost_based_optim(customer_program, model)
        customer_program.validate_placement(placement)
        assert math.isfinite(cost)

    def test_cost_matches_placement_cost(self, customer_program, model):
        placement, cost = cost_based_optim(customer_program, model)
        assert cost == pytest.approx(
            placement_cost(customer_program, placement, model)
        )

    def test_is_minimum_over_all_placements(self, customer_program,
                                            model):
        _, cost = cost_based_optim(customer_program, model)
        exhaustive = min(
            placement_cost(customer_program, placement, model)
            for placement in enumerate_placements(customer_program)
        )
        assert cost == pytest.approx(exhaustive)

    def test_pessim_is_maximum(self, customer_program, model):
        _, cost = cost_based_pessim(customer_program, model)
        exhaustive = max(
            placement_cost(customer_program, placement, model)
            for placement in enumerate_placements(customer_program)
        )
        assert cost == pytest.approx(exhaustive)

    def test_agrees_with_literal_algorithm(self, customer_program,
                                           model):
        _, fast = cost_based_optim(customer_program, model)
        _, literal = cost_based_optim_literal(customer_program, model)
        assert fast == pytest.approx(literal)

    def test_dumb_client_pushes_combines_to_source(
            self, customer_program, customers_schema):
        stats = StatisticsCatalog.synthetic(customers_schema)
        model = CostModel(
            stats,
            target=MachineProfile("t", speed=100.0, can_combine=False),
        )
        placement, cost = cost_based_optim(customer_program, model)
        assert math.isfinite(cost)
        for node in customer_program.nodes:
            if node.kind == "combine":
                assert placement[node.op_id] is Location.SOURCE

    def test_fast_target_pulls_work_to_target(self, customer_program,
                                              customers_schema):
        stats = StatisticsCatalog.synthetic(customers_schema)
        model = CostModel(
            stats, target=MachineProfile("t", speed=1000.0),
            bandwidth=1e12,
        )
        placement, _ = cost_based_optim(customer_program, model)
        for node in customer_program.nodes:
            if node.kind in ("combine", "split"):
                assert placement[node.op_id] is Location.TARGET


class TestEnumeration:
    def test_count_placements_identity(self, customers_t, model):
        program = build_transfer_program(
            derive_mapping(customers_t, customers_t)
        )
        # Scan -> Write pairs have exactly one placement.
        assert count_placements(program) == 1

    def test_count_placements_chain(self, customer_program):
        # Combine(Order,Service) sits freely in {S,T}; the
        # Split -> Combine(Line,Switch) chain admits (S,S), (S,T) and
        # (T,T) — 2 x 3 = 6 legal placements.
        assert count_placements(customer_program) == 6

    def test_all_enumerated_placements_are_legal(self,
                                                 customer_program):
        for placement in enumerate_placements(customer_program):
            customer_program.validate_placement(placement)
