"""Coupled search: optimal / worst / greedy exchanges."""

import pytest

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.core.mapping import derive_mapping
from repro.core.optimizer.search import (
    greedy_exchange,
    optimal_exchange,
    worst_exchange,
)


@pytest.fixture
def mapping(customers_s, customers_t):
    return derive_mapping(customers_s, customers_t)


@pytest.fixture
def model(customers_schema):
    return CostModel(StatisticsCatalog.synthetic(customers_schema))


class TestSearch:
    def test_ordering_invariant(self, mapping, model):
        optimal = optimal_exchange(mapping, model, order_limit=50)
        worst = worst_exchange(mapping, model, order_limit=50)
        greedy = greedy_exchange(mapping, model)
        assert optimal.cost <= greedy.cost + 1e-9
        assert optimal.cost <= worst.cost + 1e-9

    def test_programs_considered(self, mapping, model):
        optimal = optimal_exchange(mapping, model, order_limit=50)
        assert optimal.programs_considered == 1  # single combine order
        assert optimal.elapsed_seconds >= 0

    def test_results_carry_legal_placements(self, mapping, model):
        for result in (
            optimal_exchange(mapping, model, order_limit=50),
            worst_exchange(mapping, model, order_limit=50),
            greedy_exchange(mapping, model),
        ):
            result.program.validate_placement(result.placement)

    def test_annotate_writes_locations(self, mapping, model):
        result = greedy_exchange(mapping, model)
        program = result.annotate()
        assert all(node.location is not None for node in program.nodes)

    def test_greedy_is_fast(self, auction_mf, auction_lf,
                            auction_schema):
        # Section 5.4.2: "finding a solution using the greedy algorithm
        # takes a few milliseconds".
        model = CostModel(StatisticsCatalog.synthetic(auction_schema))
        result = greedy_exchange(
            derive_mapping(auction_mf, auction_lf), model
        )
        assert result.elapsed_seconds < 0.5
