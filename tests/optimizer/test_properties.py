"""Property-based optimizer invariants over random schemas.

For any random schema, random source/target fragmentations and any
machine-speed configuration:

* the fast Algorithm-1 search and the literal worklist agree,
* greedy placement is never better than the optimal one,
* the worst placement is never better than any other,
* all returned placements are legal.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel, MachineProfile
from repro.core.mapping import derive_mapping
from repro.core.optimizer.exhaustive import (
    cost_based_optim,
    cost_based_optim_literal,
    cost_based_pessim,
)
from repro.core.optimizer.greedy import greedy_placement
from repro.core.optimizer.placement import placement_cost
from repro.core.program.builder import build_transfer_program
from repro.schema.generator import random_schema
from repro.sim.random_fragmentation import random_fragmentation


@st.composite
def exchange_cases(draw):
    n_nodes = draw(st.integers(min_value=3, max_value=10))
    schema = random_schema(
        n_nodes,
        seed=draw(st.integers(0, 9999)),
        repeat_prob=0.4,
    )
    rng = random.Random(draw(st.integers(0, 9999)))
    max_fragments = min(n_nodes, 5)
    source = random_fragmentation(
        schema,
        n_fragments=draw(st.integers(1, max_fragments)),
        rng=rng, name="S",
    )
    target = random_fragmentation(
        schema,
        n_fragments=draw(st.integers(1, max_fragments)),
        rng=rng, name="T",
    )
    source_speed = draw(st.sampled_from([0.2, 0.5, 1.0, 2.0, 5.0]))
    target_speed = draw(st.sampled_from([0.2, 0.5, 1.0, 2.0, 5.0]))
    model = CostModel(
        StatisticsCatalog.synthetic(schema),
        source=MachineProfile("s", speed=source_speed),
        target=MachineProfile("t", speed=target_speed),
        bandwidth=draw(st.sampled_from([10.0, 1000.0])),
    )
    return derive_mapping(source, target), model


@settings(max_examples=50, deadline=None)
@given(exchange_cases())
def test_fast_search_agrees_with_literal(case):
    mapping, model = case
    program = build_transfer_program(mapping)
    _, fast = cost_based_optim(program, model)
    _, literal = cost_based_optim_literal(program, model)
    assert abs(fast - literal) <= 1e-6 * max(1.0, abs(fast))


@settings(max_examples=50, deadline=None)
@given(exchange_cases())
def test_optimal_le_greedy_le_worst(case):
    mapping, model = case
    program = build_transfer_program(mapping)
    _, optimal = cost_based_optim(program, model)
    _, worst = cost_based_pessim(program, model)
    greedy = placement_cost(
        program, greedy_placement(program, model), model
    )
    assert optimal <= greedy + 1e-9
    assert greedy <= worst + 1e-9


@settings(max_examples=50, deadline=None)
@given(exchange_cases())
def test_returned_placements_are_legal(case):
    mapping, model = case
    program = build_transfer_program(mapping)
    for placement in (
        cost_based_optim(program, model)[0],
        cost_based_pessim(program, model)[0],
        greedy_placement(program, model),
    ):
        program.validate_placement(placement)
