"""Placement facts the paper reports (Section 5.3).

"We ran the Cost_Based_Optim algorithm in the MF -> LF setup.  The
output of the algorithm suggested to run the whole data exchange
program, except the Writes, at the source (source and target machines
are similar)."
"""

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel, MachineProfile
from repro.core.mapping import derive_mapping
from repro.core.ops.base import Location
from repro.core.optimizer.exhaustive import cost_based_optim
from repro.core.program.builder import build_transfer_program


def test_mf_to_lf_runs_everything_but_writes_at_source(
        auction_schema, auction_mf, auction_lf):
    stats = StatisticsCatalog.synthetic(auction_schema, fanout=5.0)
    # Similar machines, a realistic (not free) network.
    model = CostModel(
        stats,
        source=MachineProfile("source"),
        target=MachineProfile("target"),
        bandwidth=1_000.0,
    )
    program = build_transfer_program(
        derive_mapping(auction_mf, auction_lf)
    )
    placement, _ = cost_based_optim(program, model)
    for node in program.nodes:
        if node.kind == "write":
            assert placement[node.op_id] is Location.TARGET
        else:
            assert placement[node.op_id] is Location.SOURCE


def test_lf_to_mf_optimizer_beats_paper_plan(auction_schema,
                                             auction_mf, auction_lf):
    """The paper pins all non-Write operations at the source (its
    Table 3 ships target-shaped fragments).  Our optimizer notices the
    better plan for LF -> MF: ship the three LF feeds (fewer rows =>
    fewer keys on the wire) and split at the similar-speed target."""
    from repro.core.optimizer.placement import (
        placement_cost,
        source_heavy_placement,
    )

    stats = StatisticsCatalog.synthetic(auction_schema, fanout=5.0)
    model = CostModel(stats, bandwidth=1_000.0)
    program = build_transfer_program(
        derive_mapping(auction_lf, auction_mf)
    )
    placement, optimal = cost_based_optim(program, model)
    for node in program.nodes:
        if node.kind == "split":
            assert placement[node.op_id] is Location.TARGET
    paper_plan = source_heavy_placement(program)
    assert optimal <= placement_cost(program, paper_plan, model) + 1e-9
