"""WSDL model round trips (the Figure 1 document)."""

import pytest

from repro.errors import WsdlError
from repro.wsdl.model import Definitions, parse_wsdl, serialize_wsdl
from repro.workloads.customer import customer_info_wsdl


class TestFigure1:
    def test_structure(self):
        definitions = customer_info_wsdl()
        assert definitions.name == "CustomerInfo"
        service = definitions.service("CustomerInfoService")
        assert service.documentation == \
            "Provides customer information"
        assert service.ports[0].address == "http://customerinfo"
        assert service.ports[0].binding == "tns:CustomerInfoBinding"

    def test_round_trip(self):
        original = customer_info_wsdl()
        text = serialize_wsdl(original)
        parsed = parse_wsdl(text)
        assert parsed.name == original.name
        assert parsed.target_namespace == original.target_namespace
        service = parsed.service("CustomerInfoService")
        assert service.ports[0].address == "http://customerinfo"
        # The embedded schema types survive.
        schema = parsed.types[0]
        assert schema.local_name() == "schema"
        customer = schema.child("element")
        assert customer.get("name") == "Customer"

    def test_serialized_text_mentions_figure1_landmarks(self):
        text = serialize_wsdl(customer_info_wsdl())
        for landmark in (
            'name="CustomerInfo"',
            "http://customers.wsdl",
            "CustomerInfoService",
            "soap:address",
            'maxOccurs="unbounded"',
        ):
            assert landmark in text


class TestParsing:
    def test_unknown_service(self):
        definitions = Definitions("x")
        with pytest.raises(WsdlError):
            definitions.service("nope")

    def test_non_wsdl_document_rejected(self):
        with pytest.raises(WsdlError):
            parse_wsdl("<html/>")

    def test_find_extension(self):
        definitions = customer_info_wsdl()
        assert definitions.find_extension("schema") is not None
        assert definitions.find_extension("fragmentation") is None
