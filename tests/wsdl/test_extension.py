"""The fragmentation extension (Section 3.1's XSD-like syntax)."""

import pytest

from repro.errors import FragmentationError, WsdlError
from repro.core.fragment import Fragment
from repro.wsdl.extension import (
    fragment_from_element,
    fragment_to_element,
    fragmentation_from_element,
    fragmentation_to_element,
)
from repro.xmlkit.tree import Element, parse_tree
from repro.xmlkit.writer import serialize


class TestFragmentSyntax:
    def test_order_service_matches_paper(self, customers_schema):
        fragment = Fragment(
            customers_schema,
            ["Order", "Service", "ServiceName"],
            "Order_Service",
        )
        element = fragment_to_element(fragment)
        text = serialize(element)
        # The paper's Section 3.1 example, structurally.
        assert '<fragment name="Order_Service">' in text
        assert '<element name="Order">' in text
        assert '<attribute name="ID" type="string"/>' in text
        assert '<attribute name="PARENT" type="string"/>' in text
        assert '<element name="ServiceName" type="string"/>' in text

    def test_repeated_children_carry_max_occurs(self,
                                                customers_schema):
        fragment = Fragment(
            customers_schema, ["Customer", "CustName", "Order"]
        )
        text = serialize(fragment_to_element(fragment))
        assert 'name="Order" maxOccurs="unbounded"' in text

    def test_round_trip(self, customers_schema):
        original = Fragment(
            customers_schema,
            ["Line", "TelNo", "Feature", "FeatureID"],
            "Line_Feature",
        )
        element = fragment_to_element(original)
        reparsed = parse_tree(serialize(element))
        rebuilt = fragment_from_element(reparsed, customers_schema)
        assert rebuilt == original
        assert rebuilt.name == "Line_Feature"

    def test_xml_attributes_declared(self, auction_schema):
        fragment = Fragment.full_subtree(auction_schema, "item")
        text = serialize(fragment_to_element(fragment))
        assert '<attribute name="id" type="string"/>' in text
        assert '<attribute name="featured" type="string"/>' in text

    def test_bad_element_rejected(self, customers_schema):
        with pytest.raises(WsdlError):
            fragment_from_element(Element("other"), customers_schema)
        no_root = Element("fragment", {"name": "x"})
        with pytest.raises(WsdlError):
            fragment_from_element(no_root, customers_schema)


class TestFragmentationSyntax:
    def test_t_fragmentation_round_trip(self, customers_schema,
                                        customers_t):
        element = fragmentation_to_element(customers_t)
        reparsed = parse_tree(serialize(element))
        rebuilt = fragmentation_from_element(
            reparsed, customers_schema
        )
        assert rebuilt.name == customers_t.name
        assert {fragment.name for fragment in rebuilt} == {
            fragment.name for fragment in customers_t
        }
        for fragment in customers_t:
            assert rebuilt.fragment(fragment.name).elements == \
                fragment.elements

    def test_invalid_fragmentation_rejected_on_parse(
            self, customers_schema, customers_t):
        element = fragmentation_to_element(customers_t)
        # Drop one fragment: no longer covers the schema.
        element.children.pop()
        with pytest.raises(FragmentationError):
            fragmentation_from_element(element, customers_schema)

    def test_wrong_element_rejected(self, customers_schema):
        with pytest.raises(WsdlError):
            fragmentation_from_element(
                Element("fragment"), customers_schema
            )
