"""Fault injection and the reliable shipping layer.

The fault matrix: every fault kind fires exactly on its scheduled
message index, charges the wire for what it wasted, and is healed by
the retry/dedup/re-order layer — or surfaces as the right
``TransportError`` subclass when unhealed.
"""

import pytest

from repro.errors import (
    MessageCorrupted,
    MessageDropped,
    MessageTimeout,
    RetryExhausted,
    TransportError,
)
from repro.core.program.executor import Shipment
from repro.core.stream import FragmentStream
from repro.net.faults import (
    FaultKind,
    FaultPlan,
    FaultyChannel,
    ReliableBatchLink,
    ReliableChannel,
    RetryPolicy,
    RobustnessStats,
)
from repro.net.transport import SimulatedChannel
from repro.workloads.customer import fragment_customers


@pytest.fixture
def feed(customers_s, customer_documents):
    return fragment_customers(customer_documents, customers_s)["Order"]


@pytest.fixture
def batches(feed):
    return list(FragmentStream.from_instance(feed, 2))


def scripted(**schedule):
    """drop=0 → FaultPlan dropping message 0, etc."""
    return FaultPlan.scripted(
        {index: kind for kind, index in schedule.items()},
        delay_seconds=0.25,
    )


class TestFaultPlan:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(drop=0.7, corrupt=0.6)
        with pytest.raises(ValueError):
            FaultPlan(delay_seconds=-1)

    def test_script_excludes_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=0.1, script={0: FaultKind.DROP})

    def test_seeded_draws_are_deterministic(self):
        plan = FaultPlan(drop=0.3, corrupt=0.2, seed=9)
        first = [plan.fault_for(i) for i in range(200)]
        again = [plan.fault_for(i) for i in range(200)]
        assert first == again
        assert FaultKind.DROP in first and FaultKind.CORRUPT in first

    def test_seed_changes_the_schedule(self):
        a = FaultPlan(drop=0.3, seed=1)
        b = FaultPlan(drop=0.3, seed=2)
        assert [a.fault_for(i) for i in range(100)] \
            != [b.fault_for(i) for i in range(100)]

    def test_scripted_fires_exactly(self):
        plan = FaultPlan.scripted({3: "drop", 5: FaultKind.CORRUPT})
        hits = {i: plan.fault_for(i) for i in range(8)}
        assert hits[3] is FaultKind.DROP
        assert hits[5] is FaultKind.CORRUPT
        assert all(
            kind is None for i, kind in hits.items() if i not in (3, 5)
        )

    def test_parse_rates(self):
        plan = FaultPlan.parse("drop=0.1, corrupt=0.05, seed=7")
        assert plan.drop == pytest.approx(0.1)
        assert plan.corrupt == pytest.approx(0.05)
        assert plan.seed == 7

    def test_parse_script(self):
        plan = FaultPlan.parse("drop@3,corrupt@5")
        assert plan.script == {
            3: FaultKind.DROP, 5: FaultKind.CORRUPT,
        }

    def test_parse_rejects_mixed_and_unknown(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("drop=0.1,corrupt@5")
        with pytest.raises(ValueError):
            FaultPlan.parse("lag=0.1")
        with pytest.raises(ValueError):
            FaultPlan.parse("drop=lots")

    def test_expected_transmission_factor(self):
        assert FaultPlan().expected_transmission_factor(4) == 1.0
        lossy = FaultPlan(drop=0.5)
        # 1 + 0.5 + 0.25 + 0.125 expected transmissions.
        assert lossy.expected_transmission_factor(4) \
            == pytest.approx(1.875)
        assert FaultPlan(duplicate=0.5) \
            .expected_transmission_factor(1) == pytest.approx(1.5)

    def test_describe(self):
        assert FaultPlan().describe() == "no faults"
        assert "drop=0.1" in FaultPlan(drop=0.1, seed=3).describe()
        assert FaultPlan.scripted({2: "drop"}).describe() == "drop@2"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_seconds=0)

    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(
            base_delay_seconds=0.1, backoff_factor=2.0,
            max_delay_seconds=0.3,
        )
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.3)
        assert policy.delay_for(9) == pytest.approx(0.3)

    def test_jitter_hook_decorates_delay(self):
        policy = RetryPolicy(
            base_delay_seconds=0.2, jitter=lambda d: d / 2
        )
        assert policy.delay_for(1) == pytest.approx(0.1)

    def test_run_retries_then_succeeds(self):
        calls = []
        slept = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise MessageDropped("gone")
            return "delivered"

        stats = RobustnessStats()
        policy = RetryPolicy(
            max_attempts=4, base_delay_seconds=0.5,
            sleep=slept.append,
        )
        assert policy.run(flaky, "msg", stats) == "delivered"
        assert len(calls) == 3
        assert stats.retries == 2
        assert slept == [pytest.approx(0.5), pytest.approx(1.0)]

    def test_exhaustion_carries_attempts_and_cause(self):
        def always_fails():
            raise MessageCorrupted("garbled")

        policy = RetryPolicy(max_attempts=3, sleep=lambda d: None)
        with pytest.raises(RetryExhausted) as info:
            policy.run(always_fails, "msg")
        assert isinstance(info.value, TransportError)
        assert info.value.attempts == 3
        assert isinstance(info.value.last_cause, MessageCorrupted)

    def test_non_transport_errors_propagate_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("a bug, not the network")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).run(broken, "msg")
        assert len(calls) == 1

    def test_timeout_check(self):
        policy = RetryPolicy(timeout_seconds=0.5)
        assert policy.check_timeout(Shipment(10, 0.4)).seconds == 0.4
        with pytest.raises(MessageTimeout):
            policy.check_timeout(Shipment(10, 0.6))


class TestFaultyChannelMatrix:
    """Every fault kind fires exactly on its scheduled index."""

    def test_drop_raises_and_charges(self, feed):
        inner = SimulatedChannel()
        channel = FaultyChannel(inner, scripted(drop=0))
        with pytest.raises(MessageDropped):
            channel.ship_fragment(feed)
        assert channel.stats.drops == 1
        assert inner.lost_messages == 1
        assert inner.lost_bytes == feed.feed_size()
        # The next message is clean: schedule, not chance.
        channel.ship_fragment(feed)
        assert inner.messages == 2

    def test_corrupt_detected_by_real_checksum(self, feed):
        inner = SimulatedChannel(wire_format=True)
        channel = FaultyChannel(inner, scripted(corrupt=0))
        with pytest.raises(MessageCorrupted, match="checksum"):
            channel.ship_fragment(feed)
        assert channel.stats.corruptions == 1
        assert inner.lost_messages == 1

    def test_corrupt_on_byte_counting_channel(self, feed):
        inner = SimulatedChannel()
        channel = FaultyChannel(inner, scripted(corrupt=0))
        with pytest.raises(MessageCorrupted):
            channel.ship_fragment(feed)
        assert inner.lost_bytes == feed.feed_size()

    def test_duplicate_delivers_twice_and_charges_copy(self, feed):
        inner = SimulatedChannel()
        channel = FaultyChannel(inner, scripted(duplicate=0))
        shipment, delivered = channel.transmit_fragment(feed)
        assert delivered == [feed, feed]
        assert channel.stats.duplicates == 1
        assert inner.lost_bytes == feed.feed_size()
        assert inner.total_bytes == 2 * feed.feed_size()

    def test_reorder_holds_batch_until_next_message(self, batches):
        channel = FaultyChannel(
            SimulatedChannel(), scripted(reorder=0)
        )
        _, delivered0 = channel.transmit_batch(batches[0], edge="e")
        assert delivered0 == []
        _, delivered1 = channel.transmit_batch(batches[1], edge="e")
        assert delivered1 == [batches[1], batches[0]]
        assert channel.stats.reorders == 1

    def test_flush_releases_held_batches(self, batches):
        channel = FaultyChannel(
            SimulatedChannel(), scripted(reorder=0)
        )
        channel.transmit_batch(batches[0], edge="e")
        assert channel.flush_batches("e") == [batches[0]]
        assert channel.flush_batches("e") == []

    def test_delay_inflates_shipment(self, feed):
        inner = SimulatedChannel()
        channel = FaultyChannel(inner, scripted(delay=0))
        clean = SimulatedChannel().ship_fragment(feed)
        delayed, delivered = channel.transmit_fragment(feed)
        assert delivered == [feed]
        assert delayed.seconds == pytest.approx(clean.seconds + 0.25)
        assert inner.total_seconds \
            == pytest.approx(clean.seconds + 0.25)
        assert channel.stats.delays == 1

    def test_document_faults(self):
        channel = FaultyChannel(
            SimulatedChannel(), scripted(drop=0, corrupt=1)
        )
        with pytest.raises(MessageDropped):
            channel.ship_document("payload")
        with pytest.raises(MessageCorrupted):
            channel.ship_document("payload")
        channel.ship_document("payload")
        assert channel.stats.injected == 2

    def test_accounting_reads_through(self, feed):
        inner = SimulatedChannel()
        channel = FaultyChannel(inner, FaultPlan())
        channel.ship_fragment(feed)
        assert channel.total_bytes == inner.total_bytes
        assert channel.messages == 1


class TestReliableChannel:
    def test_heals_drop_with_one_retry(self, feed):
        inner = SimulatedChannel()
        faulty = FaultyChannel(inner, scripted(drop=0))
        stats = RobustnessStats()
        reliable = ReliableChannel(
            faulty, RetryPolicy(max_attempts=3), stats
        )
        shipment = reliable.ship_fragment(feed)
        assert shipment.bytes_sent == feed.feed_size()
        assert stats.retries == 1
        # Both the failed and the successful transmission hit the wire.
        assert inner.messages == 2
        assert inner.lost_messages == 1

    def test_discards_duplicate_delivery(self, feed):
        faulty = FaultyChannel(
            SimulatedChannel(), scripted(duplicate=0)
        )
        stats = RobustnessStats()
        ReliableChannel(
            faulty, RetryPolicy(max_attempts=2), stats
        ).ship_fragment(feed)
        assert stats.redelivered == 1

    def test_exhaustion_raises_retry_exhausted(self, feed):
        # Every message the policy may send is scheduled to fail.
        faulty = FaultyChannel(
            SimulatedChannel(),
            FaultPlan.scripted(
                {0: "drop", 1: "corrupt", 2: "drop"}
            ),
        )
        policy = RetryPolicy(max_attempts=3, sleep=lambda d: None)
        with pytest.raises(RetryExhausted) as info:
            ReliableChannel(faulty, policy).ship_fragment(feed)
        assert info.value.attempts == 3
        assert isinstance(info.value.last_cause, MessageDropped)

    def test_timeout_triggers_resend(self, feed):
        inner = SimulatedChannel()
        budget = inner.transfer_cost(feed.feed_size())
        faulty = FaultyChannel(inner, scripted(delay=0))
        stats = RobustnessStats()
        policy = RetryPolicy(
            max_attempts=2, timeout_seconds=budget + 0.1,
            sleep=lambda d: None,
        )
        ReliableChannel(faulty, policy, stats).ship_fragment(feed)
        assert stats.timeouts == 1
        assert stats.retries == 1
        assert inner.messages == 2


class TestReliableBatchLink:
    def _link(self, plan, policy=None):
        channel = FaultyChannel(SimulatedChannel(), plan)
        stats = RobustnessStats()
        link = ReliableBatchLink(
            channel,
            policy or RetryPolicy(max_attempts=4, sleep=lambda d: None),
            stats, edge="e",
        )
        return link, stats

    def test_in_order_stream_passes_through(self, batches):
        link, _ = self._link(FaultPlan())
        out = []
        for batch in batches:
            _, ready = link.send(batch)
            out.extend(ready)
        out.extend(link.finish())
        assert [b.seq for b in out] == [b.seq for b in batches]

    def test_reorder_is_reassembled(self, batches):
        link, _ = self._link(scripted(reorder=0))
        out = []
        for batch in batches:
            _, ready = link.send(batch)
            out.extend(ready)
        out.extend(link.finish())
        assert [b.seq for b in out] \
            == sorted(b.seq for b in batches)

    def test_duplicate_is_discarded(self, batches):
        link, stats = self._link(scripted(duplicate=0))
        out = []
        for batch in batches:
            _, ready = link.send(batch)
            out.extend(ready)
        out.extend(link.finish())
        assert [b.seq for b in out] == [b.seq for b in batches]
        assert stats.redelivered == 1

    def test_drop_is_resent(self, batches):
        link, stats = self._link(scripted(drop=0))
        out = []
        for batch in batches:
            _, ready = link.send(batch)
            out.extend(ready)
        assert stats.retries == 1
        assert [b.seq for b in out] == [b.seq for b in batches]

    def test_gap_at_finish_raises(self, batches):
        link, _ = self._link(FaultPlan())
        link._expected = 99  # simulate a batch that never arrived
        link._buffer[100] = batches[0]
        with pytest.raises(TransportError, match="gap"):
            link.finish()


class TestPerEdgeAttribution:
    """Healing work is broken down per cross-edge and always summed —
    several links (or repeated retries) on one edge accumulate rather
    than overwrite each other."""

    def test_scoped_stats_bind_the_edge(self):
        stats = RobustnessStats()
        scoped = stats.scoped(("a", 0))
        scoped.count_retry()
        scoped.count_retry()
        scoped.count_redelivered(3)
        assert stats.retries == 2
        assert stats.retries_by_edge == {("a", 0): 2}
        assert stats.redelivered_by_edge == {("a", 0): 3}

    def test_edges_accumulate_independently(self):
        stats = RobustnessStats()
        stats.count_retry(edge=(1, 0))
        stats.count_retry(edge=(2, 0))
        stats.count_retry(edge=(1, 0))
        assert stats.retries == 3
        assert stats.retries_by_edge == {(1, 0): 2, (2, 0): 1}

    def test_links_sharing_stats_sum_per_edge(self, batches):
        """Two reliable links over the same stats object, each facing
        one drop, must both show up in the per-edge breakdown."""
        stats = RobustnessStats()
        policy = RetryPolicy(max_attempts=4, sleep=lambda d: None)
        for edge, drop_index in (("edge-a", 0), ("edge-b", 0)):
            channel = FaultyChannel(
                SimulatedChannel(), scripted(drop=drop_index)
            )
            link = ReliableBatchLink(channel, policy, stats, edge=edge)
            for batch in batches:
                link.send(batch)
            link.finish()
        assert stats.retries == 2
        assert stats.retries_by_edge == {"edge-a": 1, "edge-b": 1}

    def test_apply_robustness_sums_instead_of_overwriting(self):
        from repro.core.program.executor import (
            ExecutionReport,
            apply_robustness,
        )

        report = ExecutionReport()
        first = RobustnessStats()
        first.count_retry(edge=(1, 0))
        first.count_redelivered(2, edge=(1, 0))
        second = RobustnessStats()
        second.count_retry(edge=(1, 0))
        second.count_retry(edge=(2, 0))
        apply_robustness(report, first)
        apply_robustness(report, second)
        assert report.retries == 3
        assert report.retries_by_edge == {(1, 0): 2, (2, 0): 1}
        assert report.redelivered_by_edge == {(1, 0): 2}

    def test_reliable_channel_edge_kwarg(self, feed):
        stats = RobustnessStats()
        channel = ReliableChannel(
            FaultyChannel(SimulatedChannel(), scripted(drop=0)),
            RetryPolicy(max_attempts=4, sleep=lambda d: None),
            stats,
        )
        channel.ship_fragment(feed, edge=(7, 0))
        assert stats.retries == 1
        assert stats.retries_by_edge == {(7, 0): 1}

    def test_retry_spans_are_recorded(self, feed):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        stats = RobustnessStats()
        channel = ReliableChannel(
            FaultyChannel(
                SimulatedChannel(), scripted(drop=0), tracer=tracer
            ),
            RetryPolicy(max_attempts=4, sleep=lambda d: None),
            stats, tracer=tracer,
        )
        channel.ship_fragment(feed, edge=(7, 0))
        retries = tracer.spans_of("retry")
        assert len(retries) == 1
        assert retries[0].attrs["error"] == "MessageDropped"
        faults = tracer.spans_of("fault")
        assert len(faults) == 1
        assert faults[0].name == "fault:drop"
