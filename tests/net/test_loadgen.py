"""The load generator: percentile math and a small self-served burst
of concurrent broker sessions against a live server."""

import json

import pytest

from repro.net.loadgen import LoadReport, percentile, run_load
from repro.obs.metrics import MetricsRegistry


class TestPercentile:
    def test_empty_sample_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_q_out_of_bounds_raises(self):
        with pytest.raises(ValueError, match="0, 100"):
            percentile([1.0], -1)
        with pytest.raises(ValueError, match="0, 100"):
            percentile([1.0], 101)

    def test_single_value_is_every_percentile(self):
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 100) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_exact_ranks_hit_sample_points(self):
        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert percentile(values, 0) == 10.0
        assert percentile(values, 25) == 20.0
        assert percentile(values, 100) == 50.0

    def test_order_does_not_matter(self):
        assert percentile([3.0, 1.0, 2.0], 95) \
            == percentile([1.0, 2.0, 3.0], 95)


class TestLoadArguments:
    def test_zero_sessions_rejected(self):
        with pytest.raises(ValueError, match="sessions must be >= 1"):
            run_load(sessions=0)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            run_load(sessions=1, workers=0)


class TestLoadBurst:
    def test_single_session_burst(self):
        """The 1-session edge: percentiles collapse onto the one
        latency, nothing is warm, and the run still verifies."""
        report = run_load(sessions=1, workers=1,
                          document_bytes=4_000)
        assert report.sessions == 1
        assert report.failed == 0
        assert report.rows_written > 0
        assert report.cache_hits == 0
        assert report.p50_seconds == report.p95_seconds \
            == report.p99_seconds == report.max_seconds
        assert report.mean_seconds == report.p50_seconds


    def test_small_burst_completes_without_failures(self, tmp_path):
        out = tmp_path / "BENCH_load.json"
        metrics = MetricsRegistry()
        report = run_load(
            sessions=5, workers=3, document_bytes=4_000,
            out=str(out), metrics=metrics,
        )
        assert isinstance(report, LoadReport)
        assert report.sessions == 5
        assert report.failed == 0
        assert report.failures == []
        assert report.rows_written > 0
        assert report.comm_bytes > 0
        assert report.throughput_sessions_per_second > 0
        # Percentiles are ordered and positive.
        assert 0 < report.p50_seconds <= report.p95_seconds \
            <= report.p99_seconds <= report.max_seconds
        # Warm sessions reuse the negotiated plan.
        assert report.cache_hits == 4

        payload = json.loads(out.read_text())
        for key in ("sessions", "failed", "latency_seconds",
                    "throughput_sessions_per_second", "comm_bytes",
                    "rows_written_per_session", "plan_cache_hits"):
            assert key in payload
        for q in ("p50", "p95", "p99", "mean", "max"):
            assert q in payload["latency_seconds"]
        assert payload["transport"] == "tcp"

    def test_render_is_human_readable(self):
        report = LoadReport(
            sessions=2, workers=1, failed=0, wall_seconds=0.5,
            p50_seconds=0.1, p95_seconds=0.2, p99_seconds=0.2,
            mean_seconds=0.1, max_seconds=0.2,
            throughput_sessions_per_second=4.0,
            comm_bytes=1000, rows_written=10, cache_hits=1,
            document_bytes=4000,
        )
        text = report.render()
        assert "sessions" in text
        assert "p95" in text
