"""SOAP envelopes and fragment-feed wire format."""

import pytest

from repro.errors import SoapFault
from repro.core.fragment import Fragment
from repro.net.soap import (
    parse_envelope,
    soap_envelope,
    soap_fault,
    unwrap_document,
    unwrap_fragment_feed,
    verify_fragment_feed,
    wrap_document,
    wrap_fragment_feed,
)
from repro.workloads.customer import fragment_customers
from repro.xmlkit.tree import Element
from repro.xmlkit.writer import serialize


class TestEnvelope:
    def test_round_trip(self):
        body = Element("Ping", {"n": "1"})
        payload = parse_envelope(soap_envelope(body))
        assert payload.name == "Ping"
        assert payload.get("n") == "1"

    def test_not_an_envelope(self):
        with pytest.raises(SoapFault):
            parse_envelope("<NotSoap/>")

    def test_empty_body_rejected(self):
        text = ('<soap:Envelope xmlns:soap="ns"><soap:Body/>'
                "</soap:Envelope>")
        with pytest.raises(SoapFault):
            parse_envelope(text)

    def test_fault_raises(self):
        text = (
            '<soap:Envelope xmlns:soap="ns"><soap:Body>'
            "<soap:Fault><faultstring>boom</faultstring></soap:Fault>"
            "</soap:Body></soap:Envelope>"
        )
        with pytest.raises(SoapFault, match="boom"):
            parse_envelope(text)


class TestFragmentFeed:
    @pytest.fixture
    def order_feed(self, customers_s, customer_documents):
        return fragment_customers(customer_documents, customers_s)[
            "Line_Feature"
        ]

    def test_round_trip_preserves_rows(self, order_feed):
        message = wrap_fragment_feed(order_feed)
        received = unwrap_fragment_feed(message, order_feed.fragment)
        assert received.row_count() == order_feed.row_count()
        sent = sorted(
            serialize(doc) for doc in order_feed.to_xml_documents()
        )
        got = sorted(
            serialize(doc) for doc in received.to_xml_documents()
        )
        assert got == sent

    def test_eids_survive(self, order_feed):
        message = wrap_fragment_feed(order_feed)
        received = unwrap_fragment_feed(message, order_feed.fragment)
        sent_eids = sorted(row.eid for row in order_feed.rows)
        got_eids = sorted(row.eid for row in received.rows)
        assert got_eids == sent_eids

    def test_wrong_fragment_rejected(self, order_feed,
                                     customers_schema):
        message = wrap_fragment_feed(order_feed)
        other = Fragment(customers_schema, ["Order"])
        with pytest.raises(SoapFault, match="carries fragment"):
            unwrap_fragment_feed(message, other)

    def test_count_mismatch_rejected(self, order_feed):
        message = wrap_fragment_feed(order_feed)
        tampered = message.replace(
            f'count="{order_feed.row_count()}"', 'count="999"'
        )
        with pytest.raises(SoapFault, match="declares"):
            unwrap_fragment_feed(tampered, order_feed.fragment)

    def test_missing_eid_rejected(self, customers_schema):
        fragment = Fragment(customers_schema, ["Order"])
        text = (
            '<soap:Envelope xmlns:soap="ns"><soap:Body>'
            '<FragmentFeed fragment="Order" count="1">'
            '<Order ID="1" PARENT=""/></FragmentFeed>'
            "</soap:Body></soap:Envelope>"
        )
        with pytest.raises(SoapFault, match="_eid"):
            unwrap_fragment_feed(text, fragment)


class TestFeedIntegrity:
    """Checksums and sequence numbers on the wire."""

    @pytest.fixture
    def order_feed(self, customers_s, customer_documents):
        return fragment_customers(customer_documents, customers_s)[
            "Line_Feature"
        ]

    def test_message_carries_checksum(self, order_feed):
        message = wrap_fragment_feed(order_feed)
        assert 'checksum="' in message

    def test_tampered_checksum_rejected(self, order_feed):
        message = wrap_fragment_feed(order_feed)
        head, _, tail = message.partition('checksum="')
        tampered = head + 'checksum="' + (
            "1" + tail[1:] if tail[0] == "0" else "0" + tail[1:]
        )
        with pytest.raises(SoapFault, match="checksum"):
            unwrap_fragment_feed(tampered, order_feed.fragment)

    def test_tampered_row_content_rejected(self, order_feed):
        message = wrap_fragment_feed(order_feed)
        first_row = order_feed.rows[0]
        tampered = message.replace(
            f'_eid="{first_row.eid}"', '_eid="evil"', 1
        )
        with pytest.raises(SoapFault, match="checksum"):
            unwrap_fragment_feed(tampered, order_feed.fragment)

    def test_sequence_number_round_trip(self, order_feed):
        message = wrap_fragment_feed(order_feed, seq=42)
        assert 'seq="42"' in message
        received = unwrap_fragment_feed(message, order_feed.fragment)
        assert received.row_count() == order_feed.row_count()

    def test_unsequenced_message_has_no_seq(self, order_feed):
        assert 'seq="' not in wrap_fragment_feed(order_feed)


class TestEnvelopeErrorPaths:
    def test_multi_child_body_rejected(self):
        text = (
            '<soap:Envelope xmlns:soap="ns"><soap:Body>'
            "<First/><Second/></soap:Body></soap:Envelope>"
        )
        with pytest.raises(SoapFault, match="exactly one element"):
            parse_envelope(text)

    def test_unparseable_text_rejected(self):
        with pytest.raises(SoapFault, match="well-formed"):
            parse_envelope("<broken")

    def test_soap_fault_round_trip(self):
        with pytest.raises(SoapFault, match="no such feed"):
            parse_envelope(soap_fault("no such feed"))

    def test_nested_fault_reports_root_cause_first(self):
        """A downstream hop's Fault rides in the detail element; its
        faultstring is the root cause and must lead the message."""
        inner = Element("Fault")
        inner.append(Element("faultstring", text="disk full"))
        detail = Element("detail")
        detail.append(inner)
        outer = Element("soap:Fault")
        outer.append(Element("faultstring", text="upstream failed"))
        outer.append(detail)
        with pytest.raises(SoapFault,
                           match="disk full: upstream failed"):
            parse_envelope(soap_envelope(outer))

    def test_fault_without_faultstring_still_raises(self):
        with pytest.raises(SoapFault, match="fault"):
            parse_envelope(soap_envelope(Element("soap:Fault")))


class TestDocumentWrapper:
    def test_round_trip(self):
        text = "<Site><Item money='3.50'/></Site>"
        payload = parse_envelope(wrap_document(text))
        assert unwrap_document(payload) == text

    def test_wrong_payload_rejected(self):
        with pytest.raises(SoapFault, match="expected a Document"):
            unwrap_document(Element("FragmentFeed"))

    def test_byte_count_mismatch_rejected(self):
        payload = Element("Document", {"bytes": "999"}, text="tiny")
        with pytest.raises(SoapFault, match="999 bytes"):
            unwrap_document(payload)


class TestVerifyFragmentFeed:
    @pytest.fixture
    def order_payload(self, customers_s, customer_documents):
        feed = fragment_customers(customer_documents, customers_s)[
            "Line_Feature"
        ]
        return parse_envelope(wrap_fragment_feed(feed))

    def test_returns_name_count_digest(self, order_payload):
        name, count, digest = verify_fragment_feed(order_payload)
        assert name == "Line_Feature"
        assert count == len(order_payload.children)
        assert digest == order_payload.get("checksum")

    def test_wrong_payload_kind_rejected(self):
        with pytest.raises(SoapFault, match="expected a FragmentFeed"):
            verify_fragment_feed(Element("Document"))

    def test_missing_fragment_name_rejected(self):
        with pytest.raises(SoapFault, match="names no fragment"):
            verify_fragment_feed(Element("FragmentFeed"))

    def test_checksum_mismatch_rejected(self, order_payload):
        order_payload.attrs["checksum"] = "00000000"
        with pytest.raises(SoapFault, match="checksum"):
            verify_fragment_feed(order_payload)

    def test_count_mismatch_rejected(self, order_payload):
        order_payload.children.pop()
        # Recompute the digest so only the count is wrong.
        from repro.net.soap import feed_digest
        order_payload.attrs["checksum"] = feed_digest(
            order_payload.children
        )
        with pytest.raises(SoapFault, match="declares"):
            verify_fragment_feed(order_payload)
