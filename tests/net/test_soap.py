"""SOAP envelopes and fragment-feed wire format."""

import pytest

from repro.errors import SoapFault
from repro.core.fragment import Fragment
from repro.net.soap import (
    parse_envelope,
    soap_envelope,
    unwrap_fragment_feed,
    wrap_fragment_feed,
)
from repro.workloads.customer import fragment_customers
from repro.xmlkit.tree import Element
from repro.xmlkit.writer import serialize


class TestEnvelope:
    def test_round_trip(self):
        body = Element("Ping", {"n": "1"})
        payload = parse_envelope(soap_envelope(body))
        assert payload.name == "Ping"
        assert payload.get("n") == "1"

    def test_not_an_envelope(self):
        with pytest.raises(SoapFault):
            parse_envelope("<NotSoap/>")

    def test_empty_body_rejected(self):
        text = ('<soap:Envelope xmlns:soap="ns"><soap:Body/>'
                "</soap:Envelope>")
        with pytest.raises(SoapFault):
            parse_envelope(text)

    def test_fault_raises(self):
        text = (
            '<soap:Envelope xmlns:soap="ns"><soap:Body>'
            "<soap:Fault><faultstring>boom</faultstring></soap:Fault>"
            "</soap:Body></soap:Envelope>"
        )
        with pytest.raises(SoapFault, match="boom"):
            parse_envelope(text)


class TestFragmentFeed:
    @pytest.fixture
    def order_feed(self, customers_s, customer_documents):
        return fragment_customers(customer_documents, customers_s)[
            "Line_Feature"
        ]

    def test_round_trip_preserves_rows(self, order_feed):
        message = wrap_fragment_feed(order_feed)
        received = unwrap_fragment_feed(message, order_feed.fragment)
        assert received.row_count() == order_feed.row_count()
        sent = sorted(
            serialize(doc) for doc in order_feed.to_xml_documents()
        )
        got = sorted(
            serialize(doc) for doc in received.to_xml_documents()
        )
        assert got == sent

    def test_eids_survive(self, order_feed):
        message = wrap_fragment_feed(order_feed)
        received = unwrap_fragment_feed(message, order_feed.fragment)
        sent_eids = sorted(row.eid for row in order_feed.rows)
        got_eids = sorted(row.eid for row in received.rows)
        assert got_eids == sent_eids

    def test_wrong_fragment_rejected(self, order_feed,
                                     customers_schema):
        message = wrap_fragment_feed(order_feed)
        other = Fragment(customers_schema, ["Order"])
        with pytest.raises(SoapFault, match="carries fragment"):
            unwrap_fragment_feed(message, other)

    def test_count_mismatch_rejected(self, order_feed):
        message = wrap_fragment_feed(order_feed)
        tampered = message.replace(
            f'count="{order_feed.row_count()}"', 'count="999"'
        )
        with pytest.raises(SoapFault, match="declares"):
            unwrap_fragment_feed(tampered, order_feed.fragment)

    def test_missing_eid_rejected(self, customers_schema):
        fragment = Fragment(customers_schema, ["Order"])
        text = (
            '<soap:Envelope xmlns:soap="ns"><soap:Body>'
            '<FragmentFeed fragment="Order" count="1">'
            '<Order ID="1" PARENT=""/></FragmentFeed>'
            "</soap:Body></soap:Envelope>"
        )
        with pytest.raises(SoapFault, match="_eid"):
            unwrap_fragment_feed(text, fragment)


class TestFeedIntegrity:
    """Checksums and sequence numbers on the wire."""

    @pytest.fixture
    def order_feed(self, customers_s, customer_documents):
        return fragment_customers(customer_documents, customers_s)[
            "Line_Feature"
        ]

    def test_message_carries_checksum(self, order_feed):
        message = wrap_fragment_feed(order_feed)
        assert 'checksum="' in message

    def test_tampered_checksum_rejected(self, order_feed):
        message = wrap_fragment_feed(order_feed)
        head, _, tail = message.partition('checksum="')
        tampered = head + 'checksum="' + (
            "1" + tail[1:] if tail[0] == "0" else "0" + tail[1:]
        )
        with pytest.raises(SoapFault, match="checksum"):
            unwrap_fragment_feed(tampered, order_feed.fragment)

    def test_tampered_row_content_rejected(self, order_feed):
        message = wrap_fragment_feed(order_feed)
        first_row = order_feed.rows[0]
        tampered = message.replace(
            f'_eid="{first_row.eid}"', '_eid="evil"', 1
        )
        with pytest.raises(SoapFault, match="checksum"):
            unwrap_fragment_feed(tampered, order_feed.fragment)

    def test_sequence_number_round_trip(self, order_feed):
        message = wrap_fragment_feed(order_feed, seq=42)
        assert 'seq="42"' in message
        received = unwrap_fragment_feed(message, order_feed.fragment)
        assert received.row_count() == order_feed.row_count()

    def test_unsequenced_message_has_no_seq(self, order_feed):
        assert 'seq="' not in wrap_fragment_feed(order_feed)
