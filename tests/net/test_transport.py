"""The simulated channel."""

import pytest

from repro.errors import TransportError
from repro.net.transport import NetworkProfile, SimulatedChannel
from repro.workloads.customer import fragment_customers


@pytest.fixture
def feed(customers_s, customer_documents):
    return fragment_customers(customer_documents, customers_s)["Order"]


class TestNetworkProfile:
    def test_defaults(self):
        profile = NetworkProfile()
        assert profile.bandwidth_bytes_per_second > 0

    def test_validation(self):
        with pytest.raises(TransportError):
            NetworkProfile(bandwidth_bytes_per_second=0)
        with pytest.raises(TransportError):
            NetworkProfile(latency_seconds=-1)


class TestSimulatedChannel:
    def test_transfer_cost_formula(self):
        channel = SimulatedChannel(
            NetworkProfile(bandwidth_bytes_per_second=100.0,
                           latency_seconds=0.5)
        )
        assert channel.transfer_cost(200) == pytest.approx(2.5)

    def test_fragment_shipping_charges_feed_bytes(self, feed):
        channel = SimulatedChannel()
        shipment = channel.ship_fragment(feed)
        assert shipment.bytes_sent == feed.feed_size()
        assert channel.total_bytes == shipment.bytes_sent
        assert channel.messages == 1
        assert channel.total_seconds == pytest.approx(shipment.seconds)

    def test_document_shipping(self):
        channel = SimulatedChannel()
        shipment = channel.ship_document("x" * 1000)
        assert shipment.bytes_sent == 1000

    def test_wire_format_round_trip(self, feed):
        channel = SimulatedChannel(wire_format=True)
        rows_before = feed.row_count()
        eids_before = sorted(row.eid for row in feed.rows)
        shipment = channel.ship_fragment(feed)
        assert shipment.bytes_sent > feed.feed_size()  # tagged + SOAP
        assert feed.row_count() == rows_before
        assert sorted(row.eid for row in feed.rows) == eids_before

    def test_reset(self, feed):
        channel = SimulatedChannel()
        channel.ship_fragment(feed)
        channel.reset()
        assert channel.total_bytes == 0
        assert channel.messages == 0

    def test_closed_channel_rejects(self, feed):
        channel = SimulatedChannel()
        channel.close()
        with pytest.raises(TransportError):
            channel.ship_fragment(feed)
