"""The simulated channel."""

import pytest

from repro.errors import TransportError
from repro.net.transport import NetworkProfile, SimulatedChannel
from repro.workloads.customer import fragment_customers


@pytest.fixture
def feed(customers_s, customer_documents):
    return fragment_customers(customer_documents, customers_s)["Order"]


class TestNetworkProfile:
    def test_defaults(self):
        profile = NetworkProfile()
        assert profile.bandwidth_bytes_per_second > 0

    def test_validation(self):
        with pytest.raises(TransportError):
            NetworkProfile(bandwidth_bytes_per_second=0)
        with pytest.raises(TransportError):
            NetworkProfile(latency_seconds=-1)


class TestSimulatedChannel:
    def test_transfer_cost_formula(self):
        channel = SimulatedChannel(
            NetworkProfile(bandwidth_bytes_per_second=100.0,
                           latency_seconds=0.5)
        )
        assert channel.transfer_cost(200) == pytest.approx(2.5)

    def test_fragment_shipping_charges_feed_bytes(self, feed):
        channel = SimulatedChannel()
        shipment = channel.ship_fragment(feed)
        assert shipment.bytes_sent == feed.feed_size()
        assert channel.total_bytes == shipment.bytes_sent
        assert channel.messages == 1
        assert channel.total_seconds == pytest.approx(shipment.seconds)

    def test_document_shipping(self):
        channel = SimulatedChannel()
        shipment = channel.ship_document("x" * 1000)
        assert shipment.bytes_sent == 1000

    def test_wire_format_round_trip(self, feed):
        channel = SimulatedChannel(wire_format=True)
        rows_before = feed.row_count()
        eids_before = sorted(row.eid for row in feed.rows)
        shipment = channel.ship_fragment(feed)
        assert shipment.bytes_sent > feed.feed_size()  # tagged + SOAP
        assert feed.row_count() == rows_before
        assert sorted(row.eid for row in feed.rows) == eids_before

    def test_batch_shipping_charges_per_chunk(self, feed):
        from repro.core.stream import FragmentStream

        channel = SimulatedChannel()
        batches = list(FragmentStream.from_instance(feed, 2))
        shipped = [channel.ship_batch(batch) for batch in batches]
        assert channel.messages == len(batches)
        assert sum(s.bytes_sent for s in shipped) == feed.feed_size()
        # Chunking pays the per-message latency once per batch.
        whole = SimulatedChannel()
        whole.ship_fragment(feed)
        extra_latency = (
            (len(batches) - 1) * channel.profile.latency_seconds
        )
        assert channel.total_seconds == pytest.approx(
            whole.total_seconds + extra_latency
        )

    def test_batch_wire_format_round_trip(self, feed):
        from repro.core.stream import FragmentStream

        channel = SimulatedChannel(wire_format=True)
        total_rows = 0
        eids = []
        for batch in FragmentStream.from_instance(
            feed, 3, copy_rows=True
        ):
            shipment = channel.ship_batch(batch)
            assert shipment.bytes_sent > batch.feed_size()
            total_rows += batch.row_count()
            eids.extend(row.eid for row in batch.rows)
        assert total_rows == feed.row_count()
        assert sorted(eids) == sorted(row.eid for row in feed.rows)

    def test_closed_channel_rejects_batches(self, feed):
        from repro.core.stream import FragmentStream

        channel = SimulatedChannel()
        batch = next(iter(FragmentStream.from_instance(feed, 2)))
        channel.close()
        with pytest.raises(TransportError):
            channel.ship_batch(batch)

    def test_reset(self, feed):
        channel = SimulatedChannel()
        channel.ship_fragment(feed)
        channel.reset()
        assert channel.total_bytes == 0
        assert channel.messages == 0

    def test_closed_channel_rejects(self, feed):
        channel = SimulatedChannel()
        channel.close()
        with pytest.raises(TransportError):
            channel.ship_fragment(feed)


class TestLostByteAccounting:
    """Failed, retried and duplicated sends still burn the wire."""

    def test_charge_lost_counts_both_ways(self, feed):
        channel = SimulatedChannel()
        size = feed.feed_size()
        shipment = channel.charge_lost(size)
        assert shipment.bytes_sent == size
        assert channel.total_bytes == size
        assert channel.lost_bytes == size
        assert channel.lost_messages == 1
        assert channel.messages == 1
        assert channel.total_seconds == pytest.approx(
            channel.transfer_cost(size)
        )

    def test_retried_send_charges_twice(self, feed):
        """A drop followed by a successful resend costs two
        transmissions: loss is never free."""
        channel = SimulatedChannel()
        size = feed.feed_size()
        channel.charge_lost(size)       # the dropped attempt
        channel.ship_fragment(feed)     # the retry that lands
        assert channel.messages == 2
        assert channel.total_bytes == 2 * size
        assert channel.lost_bytes == size
        assert channel.lost_messages == 1

    def test_charge_delay_adds_time_only(self):
        channel = SimulatedChannel()
        channel.charge_delay(0.75)
        assert channel.total_seconds == pytest.approx(0.75)
        assert channel.total_bytes == 0
        assert channel.messages == 0

    def test_reset_clears_lost_counters(self, feed):
        channel = SimulatedChannel()
        channel.charge_lost(feed.feed_size())
        channel.reset()
        assert channel.lost_bytes == 0
        assert channel.lost_messages == 0

    def test_closed_channel_rejects_lost_charge(self):
        channel = SimulatedChannel()
        channel.close()
        with pytest.raises(TransportError):
            channel.charge_lost(100)
