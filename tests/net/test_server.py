"""The service tier: feed sink verification over real sockets, the
SOAP-over-HTTP agency/feed endpoints, graceful shutdown, metrics."""

import socket

import pytest

from repro.errors import SoapFault, TransportError
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.net.faults import corrupt_soap_message
from repro.net.server import (
    ExchangeHttpServer,
    ExchangeServer,
    FeedSink,
    SoapHttpClient,
)
from repro.net.soap import (
    parse_envelope,
    soap_envelope,
    wrap_document,
    wrap_fragment_feed,
)
from repro.net.transport import recv_frame, send_frame
from repro.obs.metrics import MetricsRegistry
from repro.services.agency import DiscoveryAgency
from repro.workloads.customer import fragment_customers
from repro.xmlkit.tree import Element


@pytest.fixture
def feed(customers_s, customer_documents):
    return fragment_customers(customer_documents, customers_s)["Order"]


def raw_call(sink, message: str) -> Element:
    """One framed request/reply over a raw socket, reply parsed
    leniently (Fault payloads returned, not raised)."""
    with socket.create_connection((sink.host, sink.port)) as sock:
        send_frame(sock, message.encode("utf-8"))
        reply = recv_frame(sock)
    assert reply is not None
    try:
        return parse_envelope(reply.decode("utf-8"))
    except SoapFault as fault:
        return Element("Fault", {"message": str(fault)})


class TestFeedSink:
    def test_feed_ack_carries_verification(self, feed):
        with FeedSink() as sink:
            ack = raw_call(sink, wrap_fragment_feed(feed))
        assert ack.name == "Ack"
        assert ack.get("of") == "FragmentFeed"
        assert ack.get("fragment") == "Order"
        assert int(ack.get("count")) == feed.row_count()
        assert len(ack.get("checksum")) == 8

    def test_seq_echoed_in_ack(self, feed):
        with FeedSink() as sink:
            ack = raw_call(sink, wrap_fragment_feed(feed, seq=7))
        assert ack.get("seq") == "7"

    def test_document_ack(self):
        with FeedSink() as sink:
            ack = raw_call(sink, wrap_document("x" * 321))
        assert ack.get("of") == "Document"
        assert ack.get("bytes") == "321"

    def test_corrupted_feed_gets_checksum_fault(self, feed):
        corrupted = corrupt_soap_message(wrap_fragment_feed(feed))
        metrics = MetricsRegistry()
        with FeedSink(metrics=metrics) as sink:
            reply = raw_call(sink, corrupted)
        assert reply.name == "Fault"
        assert "checksum" in reply.get("message")
        assert metrics.counter("server.faults").value == 1

    def test_multi_child_body_gets_fault(self):
        message = (
            '<soap:Envelope xmlns:soap="ns"><soap:Body>'
            "<A/><B/></soap:Body></soap:Envelope>"
        )
        with FeedSink() as sink:
            reply = raw_call(sink, message)
        assert reply.name == "Fault"
        assert "exactly one element" in reply.get("message")

    def test_unreadable_bytes_get_fault(self):
        with FeedSink() as sink:
            with socket.create_connection(
                    (sink.host, sink.port)) as sock:
                send_frame(sock, b"\xff\xfe not xml \x00")
                reply = recv_frame(sock)
        with pytest.raises(SoapFault):
            parse_envelope(reply.decode("utf-8"))

    def test_unknown_payload_gets_fault(self):
        with FeedSink() as sink:
            reply = raw_call(
                sink, soap_envelope(Element("Mystery"))
            )
        assert reply.name == "Fault"
        assert "Mystery" in reply.get("message")

    def test_connection_serves_many_messages(self, feed):
        metrics = MetricsRegistry()
        with FeedSink(metrics=metrics) as sink:
            with socket.create_connection(
                    (sink.host, sink.port)) as sock:
                for _ in range(3):
                    send_frame(
                        sock,
                        wrap_fragment_feed(feed).encode("utf-8"),
                    )
                    assert recv_frame(sock) is not None
        assert metrics.counter("server.connections").value == 1
        assert metrics.counter("server.messages").value == 3
        assert metrics.counter("server.rows_in").value \
            == 3 * feed.row_count()

    def test_stop_is_idempotent_and_graceful(self, feed):
        metrics = MetricsRegistry()
        sink = FeedSink(metrics=metrics).start()
        raw_call(sink, wrap_document("bye"))
        sink.stop()
        sink.stop()
        gauge = metrics.gauge("server.open_connections")
        assert gauge.value == 0
        with pytest.raises(OSError):
            socket.create_connection((sink.host, sink.port),
                                     timeout=0.2)

    def test_oversized_frame_header_rejected(self):
        with FeedSink() as sink:
            with socket.create_connection(
                    (sink.host, sink.port)) as sock:
                sock.sendall((2**31).to_bytes(4, "big") + b"xx")
                # Server drops the connection instead of allocating;
                # depending on timing the client sees a clean EOF or
                # a reset (unread bytes pending → RST).
                try:
                    reply = recv_frame(sock)
                except (TransportError, OSError):
                    reply = None
                assert reply is None


@pytest.fixture
def customer_agency(customers_schema):
    return DiscoveryAgency(customers_schema)


@pytest.fixture
def probe(customers_schema):
    return CostModel(StatisticsCatalog.synthetic(customers_schema))


@pytest.fixture
def wsdl_texts(customers_schema, customers_s, customers_t):
    scratch = DiscoveryAgency(customers_schema)
    return {
        "s": scratch.register("s", customers_s).wsdl_text,
        "t": scratch.register("t", customers_t).wsdl_text,
    }


class TestHttpControlPlane:
    def test_register_and_negotiate_round_trip(
            self, customer_agency, probe, wsdl_texts,
            customers_schema):
        metrics = MetricsRegistry()
        with ExchangeHttpServer(customer_agency, probe=probe,
                                metrics=metrics) as http:
            client = SoapHttpClient(http.host, http.port)
            result = client.register("s", wsdl_texts["s"])
            assert result.get("name") == "s"
            assert int(result.get("fragments")) > 0
            client.register("t", wsdl_texts["t"])
            program, placement, reply = client.negotiate(
                "s", "t", customers_schema
            )
            program.validate_placement(placement)
            assert reply.get("optimizer") == "greedy"
            assert float(reply.get("estimated-cost")) > 0
        assert metrics.counter("server.http.negotiations").value == 1

    def test_negotiate_unknown_system_is_fault(
            self, customer_agency, probe, customers_schema):
        with ExchangeHttpServer(customer_agency, probe=probe) as http:
            client = SoapHttpClient(http.host, http.port)
            with pytest.raises(SoapFault, match="ghost"):
                client.negotiate("ghost", "t", customers_schema)

    def test_negotiate_without_probe_is_fault(
            self, customer_agency, wsdl_texts, customers_schema):
        with ExchangeHttpServer(customer_agency) as http:
            client = SoapHttpClient(http.host, http.port)
            client.register("s", wsdl_texts["s"])
            client.register("t", wsdl_texts["t"])
            with pytest.raises(SoapFault, match="probe"):
                client.negotiate("s", "t", customers_schema)

    def test_double_register_is_fault(self, customer_agency, probe,
                                      wsdl_texts):
        with ExchangeHttpServer(customer_agency, probe=probe) as http:
            client = SoapHttpClient(http.host, http.port)
            client.register("s", wsdl_texts["s"])
            with pytest.raises(SoapFault, match="already registered"):
                client.register("s", wsdl_texts["s"])

    def test_feed_upload_download_round_trip(self, customer_agency,
                                             feed):
        with ExchangeHttpServer(customer_agency) as http:
            client = SoapHttpClient(http.host, http.port)
            ack = client.upload_feed(feed)
            assert ack.get("fragment") == "Order"
            downloaded = client.download_feed(feed.fragment)
            assert downloaded.row_count() == feed.row_count()
            assert sorted(r.eid for r in downloaded.rows) \
                == sorted(r.eid for r in feed.rows)

    def test_download_missing_feed_is_fault(self, customer_agency,
                                            feed):
        with ExchangeHttpServer(customer_agency) as http:
            client = SoapHttpClient(http.host, http.port)
            with pytest.raises(SoapFault, match="no feed"):
                client.download_feed(feed.fragment)

    def test_unknown_path_is_fault(self, customer_agency):
        with ExchangeHttpServer(customer_agency) as http:
            client = SoapHttpClient(http.host, http.port)
            with pytest.raises(SoapFault, match="no service"):
                client.call("/soap/nowhere",
                            soap_envelope(Element("Ping")))

    def test_malformed_request_is_fault(self, customer_agency):
        with ExchangeHttpServer(customer_agency) as http:
            client = SoapHttpClient(http.host, http.port)
            with pytest.raises(SoapFault, match="well-formed"):
                client.call("/soap/agency", "<broken")

    def test_client_connection_failure_is_transport_error(self):
        client = SoapHttpClient("127.0.0.1", 1, timeout=0.2)
        with pytest.raises(TransportError, match="failed"):
            client.call("/soap/agency",
                        soap_envelope(Element("Ping")))


class TestStatsSummaryAction:
    def test_learned_statistics_served_as_json(self, customer_agency,
                                               probe):
        from repro.adapt.stats import StatisticsStore

        store = StatisticsStore()
        store.observe_ratios("s->t", {"combine": 0.5, "comm": 2.0})
        metrics = MetricsRegistry()
        with ExchangeHttpServer(customer_agency, probe=probe,
                                stats_store=store,
                                metrics=metrics) as http:
            client = SoapHttpClient(http.host, http.port)
            summary = client.stats_summary()
        assert list(summary["pairs"]) == ["s->t"]
        ratios = summary["pairs"]["s->t"]["ratios"]
        assert ratios["combine"]["value"] == pytest.approx(0.5)
        assert metrics.counter(
            "server.http.stats_summaries").value == 1

    def test_without_store_is_fault(self, customer_agency, probe):
        with ExchangeHttpServer(customer_agency,
                                probe=probe) as http:
            client = SoapHttpClient(http.host, http.port)
            with pytest.raises(SoapFault, match="statistics store"):
                client.stats_summary()


class TestExchangeServer:
    def test_both_planes_share_one_lifecycle(self, customer_agency,
                                             probe, wsdl_texts, feed):
        metrics = MetricsRegistry()
        with ExchangeServer(customer_agency, probe=probe,
                            metrics=metrics) as server:
            http_host, http_port = server.http_address
            client = SoapHttpClient(http_host, http_port)
            client.register("s", wsdl_texts["s"])
            raw_call(server.sink, wrap_fragment_feed(feed))
        assert metrics.counter("server.http.requests").value == 1
        assert metrics.counter("server.messages").value == 1
        # Both planes refuse connections after stop.
        with pytest.raises(OSError):
            socket.create_connection(server.feed_address, timeout=0.2)

    def test_stop_is_idempotent(self, customer_agency):
        server = ExchangeServer(customer_agency).start()
        server.stop()
        server.stop()


@pytest.fixture
def auction_agency(auction_schema):
    return DiscoveryAgency(auction_schema)


@pytest.fixture
def auction_probe(auction_schema):
    return CostModel(StatisticsCatalog.synthetic(auction_schema))


@pytest.fixture
def auction_wsdls(auction_schema, auction_mf, auction_lf):
    from repro.core.fragmentation import Fragmentation

    scratch = DiscoveryAgency(auction_schema)
    return {
        "mf": scratch.register("mf", auction_mf).wsdl_text,
        "lf": scratch.register("lf", auction_lf).wsdl_text,
        "doc": scratch.register(
            "doc", Fragmentation.whole_document(auction_schema)
        ).wsdl_text,
    }


class TestShardNegotiation:
    """Control-plane shard routing: ``Negotiate`` with ``shards`` /
    ``shard-by`` attributes validates the cut server-side and
    advertises the grain elements back to every shard session."""

    def test_shard_negotiation_advertises_grains(
            self, auction_agency, auction_probe, auction_wsdls,
            auction_schema):
        metrics = MetricsRegistry()
        with ExchangeHttpServer(auction_agency, probe=auction_probe,
                                metrics=metrics) as http:
            client = SoapHttpClient(http.host, http.port)
            client.register("mf", auction_wsdls["mf"])
            client.register("lf", auction_wsdls["lf"])
            program, placement, reply = client.negotiate(
                "mf", "lf", auction_schema, shards=4,
            )
            program.validate_placement(placement)
        assert reply.get("shards") == "4"
        assert reply.get("shard-by") == "key-range"
        assert reply.get("grains") == "category item"
        assert metrics.counter(
            "server.http.shard_negotiations"
        ).value == 1
        assert metrics.counter("server.http.negotiations").value == 1

    def test_prefix_label_strategy_echoed(
            self, auction_agency, auction_probe, auction_wsdls,
            auction_schema):
        with ExchangeHttpServer(
                auction_agency, probe=auction_probe) as http:
            client = SoapHttpClient(http.host, http.port)
            client.register("mf", auction_wsdls["mf"])
            client.register("lf", auction_wsdls["lf"])
            _, _, reply = client.negotiate(
                "mf", "lf", auction_schema,
                shards=2, shard_by="prefix-label",
            )
        assert reply.get("shard-by") == "prefix-label"
        assert reply.get("grains") == "category item"

    def test_plain_negotiate_has_no_shard_attributes(
            self, auction_agency, auction_probe, auction_wsdls,
            auction_schema):
        metrics = MetricsRegistry()
        with ExchangeHttpServer(auction_agency, probe=auction_probe,
                                metrics=metrics) as http:
            client = SoapHttpClient(http.host, http.port)
            client.register("mf", auction_wsdls["mf"])
            client.register("lf", auction_wsdls["lf"])
            _, _, reply = client.negotiate(
                "mf", "lf", auction_schema
            )
        assert reply.get("shards") is None
        assert reply.get("grains") is None
        assert metrics.counter(
            "server.http.shard_negotiations"
        ).value == 0

    def test_non_integer_shards_is_fault(
            self, auction_agency, auction_probe, auction_wsdls):
        with ExchangeHttpServer(
                auction_agency, probe=auction_probe) as http:
            client = SoapHttpClient(http.host, http.port)
            client.register("mf", auction_wsdls["mf"])
            client.register("lf", auction_wsdls["lf"])
            with pytest.raises(SoapFault, match="integer"):
                client.call("/soap/agency", soap_envelope(Element(
                    "Negotiate",
                    {"source": "mf", "target": "lf",
                     "shards": "many"},
                )))

    def test_zero_shards_is_fault(
            self, auction_agency, auction_probe, auction_wsdls,
            auction_schema):
        with ExchangeHttpServer(
                auction_agency, probe=auction_probe) as http:
            client = SoapHttpClient(http.host, http.port)
            client.register("mf", auction_wsdls["mf"])
            client.register("lf", auction_wsdls["lf"])
            with pytest.raises(SoapFault, match=">= 1"):
                client.negotiate(
                    "mf", "lf", auction_schema, shards=0,
                )

    def test_unknown_strategy_is_fault(
            self, auction_agency, auction_probe, auction_wsdls,
            auction_schema):
        with ExchangeHttpServer(
                auction_agency, probe=auction_probe) as http:
            client = SoapHttpClient(http.host, http.port)
            client.register("mf", auction_wsdls["mf"])
            client.register("lf", auction_wsdls["lf"])
            with pytest.raises(SoapFault, match="unknown shard-by"):
                client.negotiate(
                    "mf", "lf", auction_schema,
                    shards=2, shard_by="hash",
                )

    def test_unshardable_pair_is_fault(
            self, auction_agency, auction_probe, auction_wsdls,
            auction_schema):
        with ExchangeHttpServer(
                auction_agency, probe=auction_probe) as http:
            client = SoapHttpClient(http.host, http.port)
            client.register("mf", auction_wsdls["mf"])
            client.register("doc", auction_wsdls["doc"])
            with pytest.raises(SoapFault, match="cannot shard"):
                client.negotiate(
                    "mf", "doc", auction_schema, shards=2,
                )

    def test_shard_negotiate_unknown_system_is_fault(
            self, auction_agency, auction_probe, auction_wsdls,
            auction_schema):
        with ExchangeHttpServer(
                auction_agency, probe=auction_probe) as http:
            client = SoapHttpClient(http.host, http.port)
            client.register("mf", auction_wsdls["mf"])
            with pytest.raises(SoapFault, match="ghost"):
                client.negotiate(
                    "mf", "ghost", auction_schema, shards=2,
                )
