"""The pluggable transport stack: all three implementations are
drop-in interchangeable behind ``Transport``, with uniform lifecycle
(idempotent close, send-after-close errors) and byte-identical
end-to-end results — TcpTransport over a real loopback socket."""

import threading

import pytest

from repro.errors import TransportError
from repro.core.mapping import derive_mapping
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.net.server import FeedSink
from repro.net.transport import (
    InProcessTransport,
    LOOPBACK_PROFILE,
    SimulatedChannel,
    TcpTransport,
    Transport,
)
from repro.relational.publisher import publish_document
from repro.services.endpoint import RelationalEndpoint
from repro.services.exchange import run_optimized_exchange
from repro.workloads.customer import fragment_customers


@pytest.fixture
def feed(customers_s, customer_documents):
    return fragment_customers(customer_documents, customers_s)["Order"]


@pytest.fixture(scope="module")
def sink():
    with FeedSink() as live:
        yield live


def make_transport(kind, sink):
    if kind == "sim":
        return SimulatedChannel(wire_format=True)
    if kind == "inproc":
        return InProcessTransport(wire_format=True)
    return TcpTransport.connect(sink.host, sink.port)


TRANSPORTS = ("sim", "inproc", "tcp")


class TestUniformLifecycle:
    @pytest.mark.parametrize("kind", TRANSPORTS)
    def test_close_is_idempotent(self, kind, sink):
        transport = make_transport(kind, sink)
        assert not transport.closed
        transport.close()
        transport.close()
        assert transport.closed

    @pytest.mark.parametrize("kind", TRANSPORTS)
    def test_send_after_close_raises_uniformly(self, kind, sink, feed):
        transport = make_transport(kind, sink)
        transport.close()
        with pytest.raises(TransportError, match="send after close"):
            transport.ship_fragment(feed)
        with pytest.raises(TransportError, match="send after close"):
            transport.ship_document("x")
        with pytest.raises(TransportError, match="send after close"):
            transport.charge_lost(10)

    @pytest.mark.parametrize("kind", TRANSPORTS)
    def test_concurrent_close_runs_on_close_once(self, kind, sink,
                                                 monkeypatch):
        transport = make_transport(kind, sink)
        calls = []
        original = transport._on_close

        def counting():
            calls.append(1)
            original()

        monkeypatch.setattr(transport, "_on_close", counting)
        threads = [
            threading.Thread(target=transport.close)
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert calls == [1]

    @pytest.mark.parametrize("kind", TRANSPORTS)
    def test_concurrent_shipping_accounts_every_message(
            self, kind, sink, feed):
        transport = make_transport(kind, sink)
        errors = []

        def ship():
            try:
                for _ in range(5):
                    transport.ship_document("y" * 100)
            except Exception as exc:  # pragma: no cover - fails test
                errors.append(exc)

        threads = [threading.Thread(target=ship) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert transport.messages == 20
        transport.close()


class TestInProcessTransport:
    def test_zero_time_but_counted_bytes(self, feed):
        transport = InProcessTransport()
        shipment = transport.ship_fragment(feed)
        assert shipment.seconds == 0.0
        assert transport.total_seconds == 0.0
        assert transport.total_bytes == shipment.bytes_sent > 0
        assert transport.transfer_cost(10**9) == 0.0

    def test_wire_format_round_trip(self, feed):
        transport = InProcessTransport(wire_format=True)
        rows_before = feed.row_count()
        transport.ship_fragment(feed)
        assert feed.row_count() == rows_before


class TestTcpTransport:
    def test_connect_failure_is_transport_error(self):
        with pytest.raises(TransportError, match="cannot connect"):
            TcpTransport.connect("127.0.0.1", 1, timeout=0.2)

    def test_wire_format_always_on(self, sink):
        transport = TcpTransport.connect(sink.host, sink.port)
        assert transport.wire_format is True
        transport.close()

    def test_measured_seconds_and_counted_bytes(self, sink, feed):
        transport = TcpTransport.connect(sink.host, sink.port)
        shipment = transport.ship_fragment(feed)
        assert shipment.bytes_sent > feed.feed_size()  # SOAP overhead
        assert shipment.seconds > 0.0  # real wall time
        assert transport.total_bytes == shipment.bytes_sent
        transport.close()

    def test_transfer_cost_answers_from_profile(self, sink):
        transport = TcpTransport.connect(sink.host, sink.port)
        expected = (
            LOOPBACK_PROFILE.latency_seconds
            + 1000 / LOOPBACK_PROFILE.bandwidth_bytes_per_second
        )
        assert transport.transfer_cost(1000) == pytest.approx(expected)
        transport.close()

    def test_rows_replaced_with_decoded_wire_rows(self, sink, feed):
        transport = TcpTransport.connect(sink.host, sink.port)
        eids_before = sorted(row.eid for row in feed.rows)
        transport.ship_fragment(feed)
        assert sorted(row.eid for row in feed.rows) == eids_before
        transport.close()


class TestEndToEndInterchangeability:
    """The Figure 9 acceptance bar: the same exchange over all three
    transports leaves byte-identical target stores."""

    @pytest.mark.parametrize("kind", TRANSPORTS)
    def test_exchange_matches_reference(
            self, kind, sink, auction_mf, auction_lf,
            auction_document):
        source = RelationalEndpoint(f"S-{kind}", auction_mf)
        source.load_document(auction_document)
        program = build_transfer_program(
            derive_mapping(auction_mf, auction_lf)
        )
        placement = source_heavy_placement(program)

        reference_target = RelationalEndpoint("ref", auction_lf)
        run_optimized_exchange(
            program, placement, source, reference_target,
            SimulatedChannel(), "reference",
        )
        reference = publish_document(
            reference_target.db, reference_target.mapper
        ).document

        transport = make_transport(kind, sink)
        assert isinstance(transport, Transport)
        target = RelationalEndpoint(f"T-{kind}", auction_lf)
        outcome = run_optimized_exchange(
            program, placement, source, target, transport,
            f"mf->lf/{kind}",
        )
        transport.close()
        document = publish_document(target.db, target.mapper).document
        assert document == reference
        assert outcome.rows_written == target.total_rows()
        assert outcome.comm_bytes == transport.total_bytes > 0

    @pytest.mark.parametrize("kind", TRANSPORTS)
    def test_streaming_exchange_matches_too(
            self, kind, sink, auction_mf, auction_lf,
            auction_document):
        source = RelationalEndpoint(f"SS-{kind}", auction_mf)
        source.load_document(auction_document)
        program = build_transfer_program(
            derive_mapping(auction_mf, auction_lf)
        )
        placement = source_heavy_placement(program)
        reference_target = RelationalEndpoint("sref", auction_lf)
        run_optimized_exchange(
            program, placement, source, reference_target,
            SimulatedChannel(), "reference",
        )
        reference = publish_document(
            reference_target.db, reference_target.mapper
        ).document

        transport = make_transport(kind, sink)
        target = RelationalEndpoint(f"ST-{kind}", auction_lf)
        run_optimized_exchange(
            program, placement, source, target, transport,
            f"stream/{kind}", batch_rows=16,
        )
        transport.close()
        document = publish_document(target.db, target.mapper).document
        assert document == reference
