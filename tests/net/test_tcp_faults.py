"""The `-m faults` matrix re-run against the real socket transport.

Every fault kind fires through a :class:`FaultyChannel` whose inner
channel is a live :class:`TcpTransport`: drops and corruption charge
the real wire accounting, duplicates and reorders actually traverse
the loopback socket, and the reliable layer heals them back into a
byte-identical exchange.
"""

import socket

import pytest

from repro.errors import (
    MessageCorrupted,
    MessageDropped,
    SoapFault,
    TransportError,
)
from repro.core.mapping import derive_mapping
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.stream import FragmentStream
from repro.net.faults import (
    FaultPlan,
    FaultyChannel,
    ReliableBatchLink,
    ReliableChannel,
    RetryPolicy,
    RobustnessStats,
    corrupt_soap_message,
)
from repro.net.server import FeedSink
from repro.net.soap import parse_envelope, wrap_fragment_feed
from repro.net.transport import (
    SimulatedChannel,
    TcpTransport,
    recv_frame,
    send_frame,
)
from repro.relational.publisher import publish_document
from repro.services.endpoint import RelationalEndpoint
from repro.services.exchange import run_optimized_exchange
from repro.workloads.customer import fragment_customers

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def sink():
    with FeedSink() as live:
        yield live


@pytest.fixture
def tcp(sink):
    transport = TcpTransport.connect(sink.host, sink.port)
    yield transport
    transport.close()


@pytest.fixture
def feed(customers_s, customer_documents):
    return fragment_customers(customer_documents, customers_s)["Order"]


@pytest.fixture
def batches(feed):
    return list(FragmentStream.from_instance(feed, 2))


def scripted(**schedule):
    """drop=0 → FaultPlan dropping message 0, etc."""
    return FaultPlan.scripted(
        {index: kind for kind, index in schedule.items()},
        delay_seconds=0.25,
    )


def no_sleep_policy(attempts=4):
    return RetryPolicy(max_attempts=attempts, sleep=lambda d: None)


class TestFaultMatrixOverTcp:
    def test_drop_charges_wire_without_socket_traffic(self, tcp, feed):
        channel = FaultyChannel(tcp, scripted(drop=0))
        with pytest.raises(MessageDropped):
            channel.ship_fragment(feed)
        # The lost copy is priced from the profile, never sent.
        assert tcp.lost_messages == 1
        assert tcp.lost_bytes > 0
        assert channel.stats.injected == 1
        # The retry goes over the real socket.
        shipment = channel.ship_fragment(feed)
        assert shipment.bytes_sent > 0
        assert tcp.messages == 2

    def test_corrupt_surfaces_checksum_mismatch(self, tcp, feed):
        # TcpTransport is wire-format, so corruption goes through the
        # real envelope decode and trips the checksum verification.
        channel = FaultyChannel(tcp, scripted(corrupt=0))
        with pytest.raises(MessageCorrupted, match="checksum"):
            channel.ship_fragment(feed)
        assert tcp.lost_messages == 1

    def test_duplicate_copies_both_cross_the_socket(self, tcp, feed):
        channel = FaultyChannel(tcp, scripted(duplicate=0))
        shipment, delivered = channel.transmit_fragment(feed)
        assert len(delivered) == 2
        assert tcp.messages == 2
        assert shipment.bytes_sent > 0

    def test_delay_adds_seconds_on_top_of_measured_time(
            self, tcp, feed):
        channel = FaultyChannel(tcp, scripted(delay=0))
        shipment = channel.ship_fragment(feed)
        assert shipment.seconds >= 0.25
        assert channel.stats.delays == 1

    def test_reliable_channel_heals_drop_over_tcp(self, tcp, feed):
        stats = RobustnessStats()
        reliable = ReliableChannel(
            FaultyChannel(tcp, scripted(drop=0)),
            no_sleep_policy(), stats,
        )
        shipment = reliable.ship_fragment(feed)
        assert shipment.bytes_sent > 0
        assert stats.retries == 1
        assert tcp.messages == 2  # lost copy + successful resend

    def test_reliable_channel_discards_duplicate_over_tcp(
            self, tcp, feed):
        stats = RobustnessStats()
        ReliableChannel(
            FaultyChannel(tcp, scripted(duplicate=0)),
            no_sleep_policy(), stats,
        ).ship_fragment(feed)
        assert stats.redelivered == 1


class TestSeqRedeliveryOverTcp:
    """Out-of-order ``seq`` re-delivery through the real socket: the
    reorder fault holds a batch back, the link reassembles by seq."""

    def test_reorder_is_reassembled_in_seq_order(self, tcp, batches):
        stats = RobustnessStats()
        link = ReliableBatchLink(
            FaultyChannel(tcp, scripted(reorder=0)),
            no_sleep_policy(), stats, edge="tcp-edge",
        )
        out = []
        for batch in batches:
            _, ready = link.send(batch)
            out.extend(ready)
        out.extend(link.finish())
        assert [b.seq for b in out] == sorted(b.seq for b in batches)
        # Every batch (including the held one) crossed the socket.
        assert tcp.messages == len(batches)

    def test_duplicate_seq_is_delivered_once(self, tcp, batches):
        stats = RobustnessStats()
        link = ReliableBatchLink(
            FaultyChannel(tcp, scripted(duplicate=0)),
            no_sleep_policy(), stats, edge="tcp-edge",
        )
        out = []
        for batch in batches:
            _, ready = link.send(batch)
            out.extend(ready)
        out.extend(link.finish())
        assert [b.seq for b in out] == [b.seq for b in batches]
        assert stats.redelivered == 1

    def test_sink_echoes_seq_for_reordered_batches(self, sink, feed):
        """The server acks each batch with the seq it saw, so the
        client can match acks to re-deliveries."""
        acks = []
        with socket.create_connection((sink.host, sink.port)) as sock:
            for seq in (1, 0):  # out of order on purpose
                send_frame(
                    sock,
                    wrap_fragment_feed(feed, seq=seq).encode("utf-8"),
                )
                reply = recv_frame(sock)
                acks.append(parse_envelope(reply.decode("utf-8")))
        assert [int(a.get("seq")) for a in acks] == [1, 0]


class TestChecksumMismatchOnTheWire:
    def test_corrupted_frame_gets_checksum_fault_reply(self, sink,
                                                       feed):
        corrupted = corrupt_soap_message(wrap_fragment_feed(feed))
        with socket.create_connection((sink.host, sink.port)) as sock:
            send_frame(sock, corrupted.encode("utf-8"))
            reply = recv_frame(sock)
        with pytest.raises(SoapFault, match="checksum"):
            parse_envelope(reply.decode("utf-8"))

    def test_truncated_frame_is_transport_error(self, sink):
        with socket.create_connection((sink.host, sink.port)) as sock:
            # Announce 64 bytes, deliver 3, walk away.
            sock.sendall((64).to_bytes(4, "big") + b"abc")
            sock.shutdown(socket.SHUT_WR)
            with pytest.raises((TransportError, OSError)):
                reply = recv_frame(sock)
                if reply is None:
                    raise TransportError("connection closed")


class TestEndToEndFaultyTcpExchange:
    def test_scripted_faults_heal_to_byte_identical_store(
            self, sink, auction_mf, auction_lf, auction_document):
        program = build_transfer_program(
            derive_mapping(auction_mf, auction_lf)
        )
        placement = source_heavy_placement(program)

        source = RelationalEndpoint("S-faulty", auction_mf)
        source.load_document(auction_document)

        reference_target = RelationalEndpoint("ref", auction_lf)
        run_optimized_exchange(
            program, placement, source, reference_target,
            SimulatedChannel(), "reference",
        )
        reference = publish_document(
            reference_target.db, reference_target.mapper
        ).document

        transport = TcpTransport.connect(sink.host, sink.port)
        target = RelationalEndpoint("T-faulty", auction_lf)
        outcome = run_optimized_exchange(
            program, placement, source, target, transport,
            "faulty-tcp",
            fault_plan=FaultPlan(drop=0.2, seed=11),
            retry_policy=no_sleep_policy(attempts=8),
        )
        transport.close()
        document = publish_document(target.db, target.mapper).document
        assert document == reference
        assert outcome.rows_written == target.total_rows()
