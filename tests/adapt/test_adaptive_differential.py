"""Differential suite: adaptive execution is byte-identical to static.

Two families of assertions:

* **Forced replans** — with ``replan_threshold <= 0`` every checkpoint
  replans the suffix under whatever (noisy, wall-clock) ratios were
  observed.  Whatever the replan decides, the published target document
  must equal the static run's, across every dataplane.
* **A deliberate placement flip** — the plan is negotiated against a
  probe that overprices Combine 4x; injected feedback reveals the true
  model mid-flight, the run re-places the suffix (``ops_moved > 0``,
  realized cost strictly improves), and the output is still identical.
  The flip scenarios are chosen so an *earlier* combine always yields
  the evidence before the mis-placed one starts, whatever topological
  order the builder emits.
"""

import random

import pytest

from repro.adapt.executor import AdaptiveConfig, AdaptiveRun
from repro.adapt.replan import ScaledProbe
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel, MachineProfile
from repro.core.mapping import derive_mapping
from repro.core.optimizer.exhaustive import cost_based_optim
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import ProgramExecutor
from repro.core.program.journal import ExchangeJournal
from repro.net.transport import SimulatedChannel
from repro.relational.publisher import publish_document
from repro.schema.generator import random_schema
from repro.services.endpoint import RelationalEndpoint
from repro.services.exchange import run_optimized_exchange
from repro.workloads.docgen import generate_document
from tests.integration.test_random_roundtrips import flat_fragmentation

DATAPLANES = [
    pytest.param(1, None, False, id="sequential"),
    pytest.param(1, 7, False, id="streaming"),
    pytest.param(2, None, False, id="parallel"),
    pytest.param(2, 4, True, id="parallel-columnar"),
]


def _case(schema_seed, rng_seed, size=10, repeat_prob=0.4):
    schema = random_schema(size, seed=schema_seed,
                           repeat_prob=repeat_prob)
    rng = random.Random(rng_seed)
    source_frag = flat_fragmentation(schema, rng, "A")
    target_frag = flat_fragmentation(schema, rng, "B")
    document = generate_document(schema, seed=schema_seed + 2)
    return schema, source_frag, target_frag, document


def _loaded_source(source_frag, document):
    source = RelationalEndpoint("A", source_frag)
    source.load_document(document)
    return source


def _published(target):
    return publish_document(target.db, target.mapper).document


class TestForcedReplans:
    @pytest.mark.parametrize("seed", [41, 7])
    @pytest.mark.parametrize("workers,batch_rows,columnar", DATAPLANES)
    def test_byte_identical_to_static(self, seed, workers, batch_rows,
                                      columnar):
        schema, sf, tf, document = _case(seed, seed + 1)
        source = _loaded_source(sf, document)
        reference = _published(source)
        model = CostModel(StatisticsCatalog.synthetic(schema))
        program = build_transfer_program(derive_mapping(sf, tf))
        placement, _ = cost_based_optim(program, model)

        static_target = RelationalEndpoint("T-static", tf)
        run_optimized_exchange(
            program, placement, source, static_target,
            SimulatedChannel(), "static",
            parallel_workers=workers, batch_rows=batch_rows,
            columnar=columnar,
        )
        static_doc = _published(static_target)
        assert static_doc == reference

        adaptive_target = RelationalEndpoint("T-adaptive", tf)
        config = AdaptiveConfig(probe=model, replan_threshold=-1.0)
        run = AdaptiveRun(
            program, placement, source, adaptive_target,
            SimulatedChannel(), config=config,
            parallel_workers=workers, batch_rows=batch_rows,
            columnar=columnar,
        )
        run.run()
        assert run.checkpoints > 0
        assert run.replans > 0
        assert _published(adaptive_target) == static_doc


class TestMiscalibratedFlip:
    """Overpriced Combine (4x): the static plan is wrong, the
    adaptive run flips the mis-placed suffix op once real costs show.

    Scenarios verified robust to topological-order variation (the
    revealing combine structurally precedes the mis-placed one)."""

    @pytest.mark.parametrize(
        "schema_seed,rng_seed,granularity_kwargs",
        [
            pytest.param(0, 3, {}, id="per-op"),
            pytest.param(2, 2, {"batch_rows": 7}, id="expression"),
        ],
    )
    def test_suffix_replacement_flips_placement(
            self, schema_seed, rng_seed, granularity_kwargs):
        schema, sf, tf, document = _case(
            schema_seed, rng_seed, size=12, repeat_prob=0.5
        )
        source = _loaded_source(sf, document)
        reference = _published(source)
        # Slow interconnect and a fast target: where a combine runs
        # genuinely matters, so a 4x combine overprice flips the
        # optimizer's decision.
        true_model = CostModel(
            StatisticsCatalog.synthetic(schema),
            source=MachineProfile("s"),
            target=MachineProfile("t", speed=8.0),
            bandwidth=1.0,
        )
        weights = true_model.weights
        believed = ScaledProbe(
            true_model,
            {"scan": 1.0, "combine": 4.0, "split": 1.0, "write": 1.0},
            1.0,
        )
        program = build_transfer_program(derive_mapping(sf, tf))
        static_placement, _ = cost_based_optim(
            program, believed, weights
        )
        static_cost = true_model.breakdown(
            program, static_placement
        ).total
        _, oracle_cost = cost_based_optim(program, true_model, weights)
        assert static_cost > oracle_cost  # the miscalibration bites

        static_target = RelationalEndpoint("T-static", tf)
        ProgramExecutor(source, static_target, SimulatedChannel()).run(
            program, static_placement
        )
        static_doc = _published(static_target)
        assert static_doc == reference

        config = AdaptiveConfig(
            probe=believed, weights=weights, replan_threshold=0.5,
            comp_feedback=lambda node, location, strategy, seconds:
                true_model.comp_cost(node, location),
            comm_feedback=lambda fragment, seconds:
                true_model.comm_cost(fragment),
        )
        adaptive_target = RelationalEndpoint("T-adaptive", tf)
        run = AdaptiveRun(
            program, dict(static_placement), source, adaptive_target,
            SimulatedChannel(), config=config, **granularity_kwargs,
        )
        run.run()

        assert run.replans > 0
        assert run.ops_moved > 0
        adaptive_cost = true_model.breakdown(
            program, run.placement
        ).total
        # The realized plan recovers at least half the oracle gap
        # (these scenarios recover it fully).
        recovered = (static_cost - adaptive_cost) \
            / (static_cost - oracle_cost)
        assert recovered >= 0.5
        # ... and the data is still the same data.
        assert _published(adaptive_target) == static_doc


class TestGuards:
    def test_adaptive_rejects_journal(self, tmp_path):
        schema, sf, tf, document = _case(41, 42)
        source = _loaded_source(sf, document)
        model = CostModel(StatisticsCatalog.synthetic(schema))
        program = build_transfer_program(derive_mapping(sf, tf))
        placement, _ = cost_based_optim(program, model)
        target = RelationalEndpoint("T", tf)
        with pytest.raises(ValueError, match="journal"):
            run_optimized_exchange(
                program, placement, source, target,
                SimulatedChannel(), "guard",
                adaptive=AdaptiveConfig(probe=model),
                journal=ExchangeJournal(tmp_path / "journal.db"),
            )

    def test_per_op_granularity_needs_sequential_dataplane(self):
        schema, sf, tf, document = _case(41, 42)
        source = _loaded_source(sf, document)
        model = CostModel(StatisticsCatalog.synthetic(schema))
        program = build_transfer_program(derive_mapping(sf, tf))
        placement, _ = cost_based_optim(program, model)
        target = RelationalEndpoint("T", tf)
        config = AdaptiveConfig(probe=model, granularity="op")
        with pytest.raises(ValueError, match="per-op granularity"):
            AdaptiveRun(program, placement, source, target,
                        SimulatedChannel(), config=config,
                        parallel_workers=2)

    def test_unknown_granularity_rejected(self):
        schema, sf, tf, document = _case(41, 42)
        source = _loaded_source(sf, document)
        model = CostModel(StatisticsCatalog.synthetic(schema))
        program = build_transfer_program(derive_mapping(sf, tf))
        placement, _ = cost_based_optim(program, model)
        config = AdaptiveConfig(probe=model, granularity="bogus")
        with pytest.raises(ValueError, match="granularity"):
            AdaptiveRun(program, placement, source,
                        RelationalEndpoint("T", tf),
                        SimulatedChannel(), config=config)


class TestStatsIngestion:
    def test_run_feeds_the_store(self):
        from repro.adapt.stats import StatisticsStore

        schema, sf, tf, document = _case(41, 42)
        source = _loaded_source(sf, document)
        model = CostModel(StatisticsCatalog.synthetic(schema))
        program = build_transfer_program(derive_mapping(sf, tf))
        placement, _ = cost_based_optim(program, model)
        store = StatisticsStore()
        config = AdaptiveConfig(
            probe=model, replan_threshold=float("inf"),
            stats_store=store, pair="A->B",
            statistics=StatisticsCatalog.synthetic(schema),
        )
        target = RelationalEndpoint("T", tf)
        AdaptiveRun(program, placement, source, target,
                    SimulatedChannel(), config=config).run()
        assert store.pairs() == ["A->B"]
        assert store.ratios("A->B")  # drift ratios ingested
        assert store.seconds_per_unit("A->B")  # calibration ingested
