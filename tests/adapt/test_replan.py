"""Suffix re-placement: the scaled probe and the pinned search."""

import pytest

from repro.adapt.replan import ScaledProbe, replan_placement
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.core.mapping import derive_mapping
from repro.core.optimizer.exhaustive import cost_based_optim
from repro.core.ops.base import Location
from repro.core.ops.scan import Scan
from repro.core.ops.write import Write
from repro.core.program.builder import build_transfer_program
from repro.errors import PlacementError


@pytest.fixture
def program(auction_mf, auction_lf):
    return build_transfer_program(derive_mapping(auction_mf, auction_lf))


@pytest.fixture
def model(auction_schema):
    return CostModel(StatisticsCatalog.synthetic(auction_schema))


class TestScaledProbe:
    def test_exact_kind_scale(self, program, model):
        scan = next(n for n in program.nodes if n.kind == "scan")
        probe = ScaledProbe(model, {"scan": 2.0})
        base = model.comp_cost(scan, Location.SOURCE)
        assert probe.comp_cost(scan, Location.SOURCE) \
            == pytest.approx(2.0 * base)

    def test_strategy_variant_matches_bare_kind(self, program, model):
        combine = next(n for n in program.nodes if n.kind == "combine")
        probe = ScaledProbe(model, {"combine.hash": 3.0})
        assert probe.scale_for(combine) == pytest.approx(3.0)

    def test_unobserved_kind_gets_geometric_mean(self, program, model):
        write = next(n for n in program.nodes if n.kind == "write")
        probe = ScaledProbe(model, {"scan": 2.0, "combine": 8.0})
        # geomean(2, 8) = 4; communication shares the neutral scale.
        assert probe.neutral == pytest.approx(4.0)
        assert probe.scale_for(write) == pytest.approx(4.0)
        assert probe.comm_scale == pytest.approx(4.0)

    def test_explicit_comm_scale(self, program, model):
        probe = ScaledProbe(model, {"scan": 2.0}, 8.0)
        edge = program.edges[0]
        assert probe.comm_cost(edge.fragment) == pytest.approx(
            8.0 * model.comm_cost(edge.fragment)
        )
        # The comm evidence joins the neutral pool: geomean(2, 8) = 4.
        assert probe.neutral == pytest.approx(4.0)

    def test_degenerate_scales_filtered(self, model):
        probe = ScaledProbe(
            model, {"scan": 0.0, "combine": -1.0,
                    "split": float("inf")},
        )
        assert probe.kind_scales == {}
        assert probe.neutral == 1.0


class TestReplanPlacement:
    def test_unpinned_matches_exhaustive_optimizer(self, program, model):
        baseline, base_cost = cost_based_optim(program, model)
        replanned, cost = replan_placement(program, model)
        assert cost == pytest.approx(base_cost)
        assert {op: loc for op, loc in replanned.items()} == baseline

    def test_pin_respected_and_priced(self, program, model):
        baseline, base_cost = cost_based_optim(program, model)
        movable = next(
            node for node in program.nodes
            if not isinstance(node, (Scan, Write))
        )
        flipped = (
            Location.TARGET
            if baseline[movable.op_id] is Location.SOURCE
            else Location.SOURCE
        )
        if flipped is Location.SOURCE:
            pytest.skip("baseline already pins the movable op at source")
        replanned, cost = replan_placement(
            program, model, pinned={movable.op_id: flipped}
        )
        assert replanned[movable.op_id] is flipped
        # The pin is suboptimal by construction, and the returned
        # cost includes the pinned prefix.
        assert cost >= base_cost

    def test_full_pin_reproduces_cost(self, program, model):
        baseline, base_cost = cost_based_optim(program, model)
        replanned, cost = replan_placement(
            program, model, pinned=dict(baseline)
        )
        assert replanned == baseline
        assert cost == pytest.approx(base_cost)

    def test_scan_pinned_off_source_is_illegal(self, program, model):
        scan = next(n for n in program.nodes if isinstance(n, Scan))
        with pytest.raises(PlacementError, match="pinned"):
            replan_placement(
                program, model,
                pinned={scan.op_id: Location.TARGET},
            )

    def test_write_pinned_off_target_is_illegal(self, program, model):
        write = next(n for n in program.nodes if isinstance(n, Write))
        with pytest.raises(PlacementError, match="pinned"):
            replan_placement(
                program, model,
                pinned={write.op_id: Location.SOURCE},
            )
