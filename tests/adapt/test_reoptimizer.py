"""Background re-optimization: plan swap without cold negotiation,
and the invalidation accounting split."""

import pytest

from repro.adapt.reoptimizer import ReOptimizer
from repro.adapt.stats import StatisticsStore, pair_key
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel, MachineProfile
from repro.core.ops.base import Location
from repro.obs.drift import DriftReport, OpDrift
from repro.obs.metrics import MetricsRegistry
from repro.services.agency import DiscoveryAgency
from repro.services.broker import ExchangeBroker, PlanCache
from repro.services.endpoint import RelationalEndpoint


def _drift_report(ratios):
    """A report whose kind_ratios() equals ``ratios`` exactly."""
    return DriftReport(ops=[
        OpDrift(op_id=i, label=kind, kind=kind,
                location=Location.SOURCE, predicted=1.0,
                measured_seconds=ratio, rows=1)
        for i, (kind, ratio) in enumerate(sorted(ratios.items()))
    ])


@pytest.fixture
def model(auction_schema):
    """Asymmetric substrate: a 4x-faster target behind a slow wire, so
    corrected combine costs genuinely re-rank placements."""
    return CostModel(
        StatisticsCatalog.synthetic(auction_schema),
        target=MachineProfile("t", speed=4.0),
        bandwidth=1.0,
    )


@pytest.fixture
def agency(auction_schema, auction_mf, auction_lf):
    agency = DiscoveryAgency(auction_schema)
    agency.register("s", auction_mf)
    agency.register("t", auction_lf)
    return agency


def _cached_plan(agency, cache, model, metrics=None):
    plan = agency.negotiate("s", "t", probe=model, plan_cache=cache,
                            metrics=metrics)
    assert plan.fingerprint is not None
    return plan


class TestPlanCacheReplace:
    def test_replace_unknown_digest_is_a_no_op(self, agency, model):
        cache = PlanCache()
        plan = _cached_plan(agency, cache, model)
        assert cache.replace(
            "no-such-digest", plan.program, plan.placement,
            estimated_cost=1.0,
        ) is False
        assert cache.replacements == 0

    def test_replace_swaps_payload_in_place(self, agency,
                                            auction_schema, model):
        metrics = MetricsRegistry()
        cache = PlanCache(metrics=metrics)
        plan = _cached_plan(agency, cache, model, metrics)
        digest = plan.fingerprint.digest
        cache.load(plan.fingerprint, auction_schema)  # a warm hit
        kinds = {node.op_id: node.kind for node in plan.program.nodes}
        flipped = {
            op_id: (Location.TARGET
                    if location is Location.SOURCE
                    and kinds[op_id] != "scan"
                    else location)
            for op_id, location in plan.placement.items()
        }
        plan.program.validate_placement(flipped)
        assert cache.replace(
            digest, plan.program, flipped, estimated_cost=42.0,
        ) is True
        loaded = cache.load(plan.fingerprint, auction_schema)
        assert loaded is not None
        program, placement, entry = loaded
        assert entry.estimated_cost == 42.0
        locations = [placement[node.op_id] for node in program.nodes]
        reference = [flipped[node.op_id]
                     for node in plan.program.nodes]
        assert locations == reference
        # The swap is not an invalidation: the entry kept serving.
        stats = cache.stats()
        assert stats["replacements"] == 1
        assert stats["invalidations"] == 0
        assert stats["hits"] == 2
        assert metrics.counter("plancache.replacements").value == 1


class TestInvalidationSplit:
    def test_explicit_and_drift_counted_apart(self, agency, model):
        metrics = MetricsRegistry()
        cache = PlanCache(metrics=metrics)
        plan = _cached_plan(agency, cache, model, metrics)
        cache.note_drift(
            _drift_report({"scan": 1.0, "combine": 9.0}),
            threshold=0.5,
            cost_signature=plan.fingerprint.cost_signature,
        )
        _cached_plan(agency, cache, model, metrics)
        cache.invalidate()
        stats = cache.stats()
        assert stats["invalidations"] == 2
        assert stats["invalidations_drift"] == 1
        assert stats["invalidations_explicit"] == 1
        assert metrics.counter(
            "plancache.invalidations.drift").value == 1
        assert metrics.counter(
            "plancache.invalidations.explicit").value == 1

    def test_unknown_reason_rejected(self):
        with pytest.raises(ValueError, match="reason"):
            PlanCache().invalidate(reason="bogus")


class TestReOptimizer:
    def test_uniform_drift_not_queued(self, agency, model):
        cache = PlanCache()
        plan = _cached_plan(agency, cache, model)
        with ReOptimizer(cache, drift_threshold=0.5) as reopt:
            queued = reopt.note_drift(
                plan.fingerprint.digest, plan.program,
                plan.placement, model,
                _drift_report({"scan": 3.0, "combine": 3.0,
                               "comm": 3.0}),
            )
            assert queued is False
            assert reopt.queued == 0

    def test_closed_reoptimizer_declines(self, agency, model):
        cache = PlanCache()
        plan = _cached_plan(agency, cache, model)
        reopt = ReOptimizer(cache, drift_threshold=0.5)
        reopt.close()
        assert reopt.note_drift(
            plan.fingerprint.digest, plan.program, plan.placement,
            model, _drift_report({"scan": 1.0, "combine": 9.0}),
        ) is False

    def test_background_swap_keeps_sessions_warm(
            self, agency, auction_schema, model):
        """The acceptance path: drift queues a re-optimization, the
        background thread swaps the cached plan under its digest, and
        warm negotiations keep hitting — zero extra optimizer runs on
        the session path."""
        metrics = MetricsRegistry()
        cache = PlanCache(metrics=metrics)
        plan = _cached_plan(agency, cache, model, metrics)
        assert metrics.counter("optimizer.runs").value == 1
        store = StatisticsStore(metrics=metrics)
        # Learned evidence: combines run at a quarter of the probe's
        # guess while scans and the wire track it — shipping now
        # dominates the combine saving and re-ranks the placement.
        store.observe_ratios(
            pair_key("s", "t"),
            {"combine": 0.25, "scan": 1.0, "comm": 1.0},
        )
        with ReOptimizer(cache, store, drift_threshold=0.5,
                         metrics=metrics) as reopt:
            queued = reopt.note_drift(
                plan.fingerprint.digest, plan.program,
                plan.placement, model,
                _drift_report({"scan": 1.0, "combine": 0.25}),
                pair=pair_key("s", "t"),
            )
            assert queued is True
            assert reopt.drain(timeout=10)
            assert reopt.runs == 1
            assert reopt.swaps == 1
        assert metrics.counter("plan.reoptimized").value == 1
        assert metrics.counter("adapt.reopt.queued").value == 1
        assert metrics.counter("adapt.reopt.runs").value == 1

        # The swapped plan serves warm: same digest, new placement,
        # no session ever paid a cold negotiation.
        warm = agency.negotiate("s", "t", probe=model,
                                plan_cache=cache, metrics=metrics)
        assert warm.cached
        assert metrics.counter("optimizer.runs").value == 1
        moved = sum(
            1 for before, after in zip(
                (plan.placement[n.op_id] for n in plan.program.nodes),
                (warm.placement[n.op_id] for n in warm.program.nodes),
            )
            if before is not after
        )
        assert moved > 0
        cache_stats = cache.stats()
        assert cache_stats["replacements"] == 1
        assert cache_stats["invalidations"] == 0


class TestBrokerIntegration:
    def test_sessions_learn_and_requeue_without_cold_misses(
            self, auction_schema, auction_mf, auction_lf,
            auction_document, model):
        source = RelationalEndpoint("S", auction_mf)
        source.load_document(auction_document)
        agency = DiscoveryAgency(auction_schema)
        agency.register("src", auction_mf, source)
        agency.register("tgt", auction_lf)
        metrics = MetricsRegistry()
        cache = PlanCache(metrics=metrics)
        store = StatisticsStore(metrics=metrics)
        counter = [0]

        def fresh_target():
            counter[0] += 1
            return RelationalEndpoint(f"T{counter[0]}", auction_lf)

        with ReOptimizer(cache, store, drift_threshold=-1.0,
                         metrics=metrics) as reopt:
            with ExchangeBroker(agency, plan_cache=cache,
                                max_workers=2, probe=model,
                                metrics=metrics, stats_store=store,
                                reoptimizer=reopt) as broker:
                sessions = broker.run(
                    [("src", "tgt", fresh_target)] * 4
                )
            assert reopt.drain(timeout=10)

        assert len(sessions) == 4
        assert all(s.outcome.rows_written > 0 for s in sessions)
        # Every session fed the store ...
        assert store.pairs() == [pair_key("src", "tgt")]
        assert store.ingests >= 4
        # ... every measured exchange was handed to the re-optimizer
        # (threshold -1 accepts any spread) ...
        assert reopt.queued == 4
        assert reopt.runs == 4
        # ... and the session path never paid a cold re-negotiation.
        assert metrics.counter("optimizer.runs").value == 1
        assert sum(1 for s in sessions if s.cached) == 3
