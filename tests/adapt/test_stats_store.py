"""The learned-statistics store: EWMA smoothing, confidence,
probe correction, JSON persistence and thread safety."""

import json
import threading

import pytest

from repro.adapt.replan import ScaledProbe
from repro.adapt.stats import ScaleEstimate, StatisticsStore, pair_key
from repro.core.cost.calibrate import Calibration, CalibratedCostModel
from repro.core.cost.estimates import StatisticsCatalog
from repro.obs.metrics import MetricsRegistry

PAIR = pair_key("s", "t")


class TestBasics:
    def test_pair_key(self):
        assert pair_key("alpha", "beta") == "alpha->beta"

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_alpha_validated(self, alpha):
        with pytest.raises(ValueError, match="alpha"):
            StatisticsStore(alpha=alpha)

    def test_warmup_validated(self):
        with pytest.raises(ValueError, match="warmup"):
            StatisticsStore(warmup=0)

    def test_scale_estimate_ewma(self):
        estimate = ScaleEstimate(2.0)
        estimate.update(4.0, alpha=0.5)
        assert estimate.value == pytest.approx(3.0)
        assert estimate.observations == 2
        estimate.update(3.0, alpha=0.5, weight=4)
        assert estimate.value == pytest.approx(3.0)
        assert estimate.observations == 6

    def test_empty_store(self):
        store = StatisticsStore()
        assert len(store) == 0
        assert store.pairs() == []
        assert store.ratios(PAIR) == {}
        assert store.seconds_per_unit(PAIR) == {}
        assert store.confidence(PAIR, "combine") == 0.0


class TestIngestion:
    def test_observe_ratios_smooths(self):
        store = StatisticsStore(alpha=0.5)
        store.observe_ratios(PAIR, {"scan": 2.0})
        assert store.ratios(PAIR) == {"scan": 2.0}
        store.observe_ratios(PAIR, {"scan": 4.0})
        assert store.ratios(PAIR)["scan"] == pytest.approx(3.0)
        assert store.ingests == 2

    def test_nonpositive_ratios_skipped(self):
        store = StatisticsStore()
        store.observe_ratios(PAIR, {"scan": 0.0, "combine": -2.0})
        assert store.ratios(PAIR) == {}

    def test_observe_calibration_weights_by_samples(self, auction_schema):
        statistics = StatisticsCatalog.synthetic(auction_schema)
        store = StatisticsStore()
        calibration = Calibration(
            statistics, {"scan": 2.0}, {"scan": 4}
        )
        store.observe_calibration(PAIR, calibration)
        assert store.seconds_per_unit(PAIR) == {"scan": 2.0}
        assert store.observations(PAIR, "scan") == 4

    def test_confidence_rises_toward_one(self):
        store = StatisticsStore(alpha=1.0, warmup=3)
        assert store.confidence(PAIR, "scan") == 0.0
        for _ in range(3):
            store.observe_ratios(PAIR, {"scan": 1.5})
        # n == warmup observations -> confidence exactly 0.5.
        assert store.confidence(PAIR, "scan") == pytest.approx(0.5)
        for _ in range(24):
            store.observe_ratios(PAIR, {"scan": 1.5})
        assert store.confidence(PAIR, "scan") == pytest.approx(0.9)

    def test_metrics_mirrored(self):
        metrics = MetricsRegistry()
        store = StatisticsStore(metrics=metrics)
        store.observe_ratios(PAIR, {"scan": 1.5, "comm": 2.0})
        assert metrics.counter("adapt.stats.drifts").value == 1
        assert metrics.counter("adapt.stats.ratio_updates").value == 2


class TestLearnedViews:
    def test_scaled_probe_identity_without_evidence(self):
        store = StatisticsStore()
        probe = object()
        assert store.scaled_probe(PAIR, probe) is probe

    def test_scaled_probe_pops_comm(self):
        store = StatisticsStore()
        base = object()
        store.observe_ratios(PAIR, {"combine": 2.0, "comm": 3.0})
        scaled = store.scaled_probe(PAIR, base)
        assert isinstance(scaled, ScaledProbe)
        assert scaled.base is base
        assert scaled.kind_scales == {"combine": 2.0}
        assert scaled.comm_scale == pytest.approx(3.0)

    def test_cost_model_from_learned_scales(self, auction_schema):
        statistics = StatisticsCatalog.synthetic(auction_schema)
        store = StatisticsStore()
        assert store.cost_model(PAIR, statistics) is None
        store.observe_calibration(
            PAIR, Calibration(statistics, {"scan": 2.0}, {"scan": 1})
        )
        model = store.cost_model(PAIR, statistics)
        assert isinstance(model, CalibratedCostModel)
        assert model.calibration.seconds_per_unit == {"scan": 2.0}


class TestPersistence:
    def _populated(self):
        store = StatisticsStore(alpha=0.4, warmup=5)
        store.observe_ratios(PAIR, {"scan": 1.5, "comm": 2.5})
        store.observe_ratios("t->s", {"combine": 0.25})
        return store

    def test_dict_roundtrip(self):
        store = self._populated()
        clone = StatisticsStore.from_dict(store.to_dict())
        assert clone.to_dict() == store.to_dict()
        assert clone.alpha == 0.4 and clone.warmup == 5
        assert clone.ratios(PAIR) == store.ratios(PAIR)
        assert clone.confidence(PAIR, "scan") \
            == store.confidence(PAIR, "scan")

    def test_save_load_roundtrip(self, tmp_path):
        store = self._populated()
        path = tmp_path / "stats.json"
        store.save(path)
        loaded = StatisticsStore.load(path)
        assert loaded.to_dict() == store.to_dict()

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "stats.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            StatisticsStore.load(path)

    def test_summary_shape(self):
        store = self._populated()
        summary = store.summary()
        assert summary["ingests"] == 2
        assert sorted(summary["pairs"]) == [PAIR, "t->s"]
        entry = summary["pairs"][PAIR]["ratios"]["scan"]
        assert entry["value"] == pytest.approx(1.5)
        assert entry["observations"] == 1
        assert entry["confidence"] == pytest.approx(1 / 6)
        # The summary is the control-plane payload: JSON-able as is.
        json.dumps(store.summary())


class TestThreadSafety:
    def test_concurrent_ingestion(self):
        store = StatisticsStore(alpha=1.0)
        rounds = 50

        def worker(pair):
            for _ in range(rounds):
                store.observe_ratios(pair, {"scan": 2.0})

        threads = [
            threading.Thread(target=worker, args=(f"s->{i % 2}",))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.ingests == 8 * rounds
        assert store.observations("s->0", "scan") == 4 * rounds
        assert store.ratios("s->0")["scan"] == pytest.approx(2.0)
