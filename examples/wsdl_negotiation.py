"""WSDL-level negotiation: what actually crosses the middleware.

Shows the registration documents (WSDL + fragmentation extension) two
systems publish to the discovery agency, the mapping the agency derives
from them, and the programs of Figures 3, 4 and 5 regenerated from the
same machinery — publishing and loading are just special cases of
transfer where one side registered no fragmentation.

Run with::

    python examples/wsdl_negotiation.py
"""

from repro.core.fragmentation import Fragmentation
from repro.core.mapping import derive_mapping
from repro.core.program.builder import build_transfer_program
from repro.core.program.render import summary, to_text
from repro.services.agency import DiscoveryAgency
from repro.workloads.customer import (
    customer_schema,
    s_fragmentation,
    t_fragmentation,
)
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel


def main() -> None:
    schema = customer_schema()
    agency = DiscoveryAgency(schema, "CustomerInfoService")
    source = agency.register("sales", s_fragmentation(schema))
    agency.register("provisioning", t_fragmentation(schema))

    print("=== What 'sales' registered (WSDL with fragmentation "
          "extension) ===\n")
    print(source.wsdl_text)

    model = CostModel(StatisticsCatalog.synthetic(schema))
    plan = agency.negotiate(
        "sales", "provisioning", optimizer="canonical", probe=model
    )
    print("=== Derived mapping ===\n")
    for entry in plan.mapping.entries:
        sources = ", ".join(f.name for f in entry.sources)
        tag = " (identity)" if entry.is_identity else ""
        print(f"  {entry.target.name}  <-  {{{sources}}}{tag}")

    print(f"\n=== Data transfer program (Figure 5) "
          f"[{summary(plan.program)}] ===\n")
    print(to_text(plan.annotate()))

    # Publishing (Figure 3) and loading (Figure 4) fall out of the same
    # machinery with a whole-document fragmentation on one side.
    whole = Fragmentation.whole_document(schema)
    publishing = build_transfer_program(
        derive_mapping(s_fragmentation(schema), whole)
    )
    print(f"\n=== Publishing program (Figure 3) "
          f"[{summary(publishing)}] ===\n")
    print(to_text(publishing))

    loading = build_transfer_program(
        derive_mapping(whole, t_fragmentation(schema))
    )
    print(f"\n=== Loading program (Figure 4) "
          f"[{summary(loading)}] ===\n")
    print(to_text(loading))


if __name__ == "__main__":
    main()
