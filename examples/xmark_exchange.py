"""Replay of the paper's real experiment (Section 5.1-5.3).

Runs all four exchange scenarios (MF->MF, MF->LF, LF->MF, LF->LF) for
each document size, both as optimized Data Exchange and as publish&map,
and prints the Figure 9-style breakdown with savings.

Document sizes follow the paper's 2.5/12.5/25 MB ladder scaled by
``REPRO_SCALE`` (default 0.02).  Run at full size with::

    REPRO_SCALE=1.0 python examples/xmark_exchange.py
"""

from repro.core.mapping import derive_mapping
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.net.transport import SimulatedChannel
from repro.reporting.tables import format_table
from repro.services.endpoint import RelationalEndpoint
from repro.services.exchange import (
    run_optimized_exchange,
    run_publish_and_map,
)
from repro.workloads.sizes import DOCUMENT_SIZES_MB, current_scale, \
    scaled_bytes, size_label
from repro.workloads.xmark import (
    generate_xmark_document,
    xmark_lf_fragmentation,
    xmark_mf_fragmentation,
    xmark_schema,
)

SCENARIOS = ("MF->MF", "MF->LF", "LF->MF", "LF->LF")


def main() -> None:
    schema = xmark_schema()
    fragmentations = {
        "MF": xmark_mf_fragmentation(schema),
        "LF": xmark_lf_fragmentation(schema),
    }
    size_mb = DOCUMENT_SIZES_MB[-1]
    label = size_label(size_mb)
    print(f"document: {label} at scale {current_scale()} "
          f"({scaled_bytes(size_mb):,} bytes)\n")
    document = generate_xmark_document(scaled_bytes(size_mb), seed=42)

    rows = []
    for scenario in SCENARIOS:
        source_kind, target_kind = scenario.split("->")
        source = RelationalEndpoint(
            f"S-{scenario}", fragmentations[source_kind]
        )
        source.load_document(document)
        program = build_transfer_program(
            derive_mapping(
                fragmentations[source_kind],
                fragmentations[target_kind],
            )
        )
        placement = source_heavy_placement(program)

        de_target = RelationalEndpoint(
            f"DT-{scenario}", fragmentations[target_kind]
        )
        de = run_optimized_exchange(
            program, placement, source, de_target,
            SimulatedChannel(), scenario,
        )
        pm_target = RelationalEndpoint(
            f"PT-{scenario}", fragmentations[target_kind]
        )
        pm = run_publish_and_map(
            source, pm_target, SimulatedChannel(), scenario
        )
        for outcome, method in ((de, "DE"), (pm, "PM")):
            rows.append([
                f"{scenario} {method}",
                outcome.steps["source_processing"],
                outcome.steps["communication"],
                outcome.steps["shredding"],
                outcome.steps["loading"],
                outcome.steps["indexing"],
                outcome.total_seconds,
            ])
        saving = 100 * (1 - de.total_seconds / pm.total_seconds)
        speedup = (
            pm.data_processing_seconds
            / max(de.data_processing_seconds, 1e-9)
        )
        print(f"{scenario}: DE saves {saving:5.1f}% end-to-end, "
              f"{speedup:.1f}x faster in data processing")

    print()
    print(format_table(
        ["run", "source", "comm", "shred", "load", "index", "TOTAL"],
        rows,
        title=f"End-to-end breakdown (secs), {label} document "
              "(compare Figure 9)",
    ))


if __name__ == "__main__":
    main()
