"""Extensions in action: service arguments and the fragmentation advisor.

Two features the paper sketches but does not evaluate:

1. **Service arguments** (Section 3.2): CustomerInfoService takes an
   argument subsetting the customers; the source filters before the
   exchange and the cascade keeps the shipped fragments consistent.
2. **Fragmentation advisor** (Section 7 future work): given the peer's
   registered fragmentation and the negotiation statistics, recommend
   the fragmentation this system should register.

Run with::

    python examples/service_arguments.py
"""

from repro.core.advisor import (
    exchange_objective,
    recommend_fragmentation,
)
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.core.mapping import derive_mapping
from repro.core.optimizer.greedy import greedy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import ProgramExecutor
from repro.services import InMemoryEndpoint, SelectiveEndpoint, \
    ServiceArgument
from repro.workloads.customer import (
    customer_schema,
    fragment_customers,
    generate_customer_instances,
    s_fragmentation,
    t_fragmentation,
)
from repro.workloads.xmark import xmark_lf_fragmentation, xmark_schema


def service_arguments_demo() -> None:
    print("=== Service arguments: subset customers at the source ===")
    schema = customer_schema()
    source_fragmentation = s_fragmentation(schema)
    target_fragmentation = t_fragmentation(schema)
    documents = generate_customer_instances(10, seed=11)

    sales = InMemoryEndpoint("sales")
    for instance in fragment_customers(
        documents, source_fragmentation
    ).values():
        sales.put(instance)

    # CustomerInfoService(custname-contains="#3")
    argument = ServiceArgument.leaf_contains(
        "Customer", "CustName", "#3"
    )
    filtered_source = SelectiveEndpoint(
        sales, source_fragmentation, argument
    )

    program = build_transfer_program(
        derive_mapping(source_fragmentation, target_fragmentation)
    )
    model = CostModel(StatisticsCatalog.synthetic(schema))
    placement = greedy_placement(program, model)

    target = InMemoryEndpoint("provisioning")
    report = ProgramExecutor(filtered_source, target).run(
        program, placement
    )
    total_customers = len(documents)
    shipped = target.store["Customer"].row_count()
    print(f"source holds {total_customers} customers; the argument "
          f"selected {shipped}")
    print(f"rows written across all target fragments: "
          f"{report.rows_written}\n")


def advisor_demo() -> None:
    print("=== Fragmentation advisor (Section 7 future work) ===")
    schema = xmark_schema()
    peer = xmark_lf_fragmentation(schema)
    model = CostModel(
        StatisticsCatalog.synthetic(schema, fanout=4.0),
        bandwidth=100.0,
    )
    from repro.core.fragmentation import Fragmentation

    start = Fragmentation.most_fragmented(schema, "MF-start")
    objective = exchange_objective(peer, model)
    print(f"peer registered: "
          f"{[fragment.root_name for fragment in peer]}")
    print(f"starting from MF ({len(start)} fragments), cost "
          f"{objective(start):,.0f}")
    result = recommend_fragmentation(schema, objective, start=start)
    print(f"advisor recommends {len(result.fragmentation)} fragments "
          f"rooted at "
          f"{[fragment.root_name for fragment in result.fragmentation]}")
    print(f"cost {result.cost:,.0f} after {result.steps} improvement "
          f"steps ({result.evaluations} evaluations)")


def main() -> None:
    service_arguments_demo()
    advisor_demo()


if __name__ == "__main__":
    main()
