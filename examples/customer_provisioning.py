"""The paper's motivating example (Section 1.1): sales -> provisioning.

A telecom sales system stores customer orders relationally (schema S,
including the denormalized LINE_FEATURE relation); the provisioning
system is an LDAP directory (schema T: CUSTOMER_T, ORDER_SERVICE_T,
LINE_SWITCH_T, FEATURE_T).  Both advertise fragmentations of the agreed
CustomerInfo XML Schema (the Figure 1 WSDL); the middleware derives the
Figure 5 program — Split(Line_Feature, Line, Feature), two Combines —
and the exchange populates the directory tree without either system
revealing its internals.

Run with::

    python examples/customer_provisioning.py
"""

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.core.mapping import derive_mapping
from repro.core.optimizer.exhaustive import cost_based_optim
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import ProgramExecutor
from repro.core.program.render import to_text
from repro.services.endpoint import DirectoryEndpoint, InMemoryEndpoint
from repro.workloads.customer import (
    customer_info_wsdl,
    customer_schema,
    fragment_customers,
    generate_customer_instances,
    s_fragmentation,
    t_fragmentation,
)
from repro.wsdl.model import serialize_wsdl


def main() -> None:
    schema = customer_schema()
    print("The agreed CustomerInfo WSDL (Figure 1):\n")
    print(serialize_wsdl(customer_info_wsdl()))

    source_fragmentation = s_fragmentation(schema)
    target_fragmentation = t_fragmentation(schema)
    print("S-fragmentation:",
          [fragment.name for fragment in source_fragmentation])
    print("T-fragmentation:",
          [fragment.name for fragment in target_fragmentation])

    # Seed the sales system with generated customers.
    documents = generate_customer_instances(8, seed=2024)
    sales = InMemoryEndpoint("sales")
    for instance in fragment_customers(
        documents, source_fragmentation
    ).values():
        sales.put(instance)
    provisioning = DirectoryEndpoint(
        "provisioning", target_fragmentation
    )

    # Derive and place the Figure 5 program.
    mapping = derive_mapping(source_fragmentation, target_fragmentation)
    program = build_transfer_program(mapping)
    model = CostModel(StatisticsCatalog.synthetic(schema))
    placement, cost = cost_based_optim(program, model)
    program.apply_placement(placement)
    print(f"\nData transfer program (Figure 5), cost {cost:,.0f}:")
    print(to_text(program))

    # Execute and materialize the directory.
    report = ProgramExecutor(sales, provisioning).run(program)
    store = provisioning.materialize()
    print(f"\nexchange wrote {report.rows_written} rows; "
          f"directory now holds {len(store)} entries")
    for object_class in ("CUSTOMER_T", "ORDER_T", "LINE_T",
                         "FEATURE_T"):
        entries = store.search(object_class)
        print(f"  {object_class}: {len(entries)} entries")
    sample = store.search("LINE_T")[0]
    print(f"\nsample line entry DN={sample.dn_string()}: "
          f"{sample.attrs}")


if __name__ == "__main__":
    main()
