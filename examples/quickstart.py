"""Quickstart: negotiate and run a fragment exchange in ~60 lines.

Two systems agree on the XMark auction schema.  The source stores data
most-fragmented (MF, one relation per element), the target wants it
least-fragmented (LF, three relations).  Both register their
fragmentations (as WSDL extensions) at the discovery agency, which
derives the data-transfer program, probes the endpoints' cost
interfaces, places each operation, and the exchange runs over a
simulated network.

Run with::

    python examples/quickstart.py
"""

from repro.core.program.render import summary, to_text
from repro.net.transport import SimulatedChannel
from repro.services import DiscoveryAgency, RelationalEndpoint
from repro.services.exchange import (
    run_optimized_exchange,
    run_publish_and_map,
)
from repro.workloads.xmark import (
    generate_xmark_document,
    xmark_lf_fragmentation,
    xmark_mf_fragmentation,
    xmark_schema,
)


def main() -> None:
    # 1. The agreed XML Schema and the two systems' fragmentations.
    schema = xmark_schema()
    mf = xmark_mf_fragmentation(schema)
    lf = xmark_lf_fragmentation(schema)

    # 2. Endpoints: a populated source, an empty target.
    source = RelationalEndpoint("sales", mf)
    source.load_document(generate_xmark_document(400_000, seed=7))
    target = RelationalEndpoint("provisioning", lf)
    print(f"source holds {source.total_rows()} rows "
          f"in {len(mf)} fragment tables")

    # 3. Register at the discovery agency and negotiate (Figure 2).
    channel = SimulatedChannel()
    agency = DiscoveryAgency(schema)
    agency.register("sales", mf, source)
    agency.register("provisioning", lf, target)
    plan = agency.negotiate(
        "sales", "provisioning", optimizer="canonical", channel=channel
    )
    print(f"\nnegotiated program: {summary(plan.program)} "
          f"(estimated cost {plan.estimated_cost:,.0f})")
    print(to_text(plan.annotate()))

    # 4. Execute the optimized data exchange.
    outcome = run_optimized_exchange(
        plan.program, plan.placement, source, target, channel,
        "MF->LF",
    )
    print(f"\n{outcome.breakdown()}")
    print(f"rows written at target: {outcome.rows_written}, "
          f"bytes shipped: {outcome.comm_bytes:,}")

    # 5. Compare with classic publish&map into a second target.
    baseline_target = RelationalEndpoint("baseline", lf)
    baseline = run_publish_and_map(
        source, baseline_target, SimulatedChannel(), "MF->LF"
    )
    print(f"{baseline.breakdown()}")
    saving = 100 * (1 - outcome.total_seconds / baseline.total_seconds)
    print(f"\noptimized exchange saves {saving:.0f}% end-to-end "
          f"({outcome.total_seconds:.3f}s vs "
          f"{baseline.total_seconds:.3f}s)")


if __name__ == "__main__":
    main()
