"""The simulation study of Section 5.4, end to end.

Reproduces the three simulated results:

* Figure 10 — DE vs publishing on equally fast systems,
* Figure 11 — the same with a 10x faster target,
* Table 5  — greedy/worst cost ratios over the optimal program across
  source/target speed ratios 5/1 ... 1/5.

Run with::

    python examples/simulation_study.py
"""

import random

from repro.core.cost.model import MachineProfile
from repro.reporting.tables import format_table
from repro.schema.generator import balanced_schema
from repro.sim.random_fragmentation import random_fragmentation
from repro.sim.simulator import ExchangeSimulator

N_TRIALS = 5
ORDER_LIMIT = 60


def figures_10_and_11() -> None:
    schema = balanced_schema(3, 4, seed=5)
    simulator = ExchangeSimulator(schema)
    rng = random.Random(11)
    pairs = [
        (
            random_fragmentation(schema, n_fragments=11, rng=rng,
                                 name="S"),
            random_fragmentation(schema, n_fragments=11, rng=rng,
                                 name="T"),
        )
        for _ in range(N_TRIALS)
    ]
    for title, target in (
        ("Figure 10 (equal machines)", MachineProfile("t")),
        ("Figure 11 (10x faster target)",
         MachineProfile("t", speed=10.0)),
    ):
        measurements = [
            simulator.exchange_costs(
                source, sink, MachineProfile("s"), target,
                order_limit=ORDER_LIMIT,
            )
            for source, sink in pairs
        ]
        reduction = sum(
            m.reduction_percent for m in measurements
        ) / len(measurements)
        print(f"{title}: DE reduces estimated publish cost by "
              f"{reduction:.1f}% "
              f"(DE {measurements[0].exchange.total:,.0f} vs publish "
              f"{measurements[0].publish.total:,.0f} on trial 1)")


def table_5() -> None:
    schema = balanced_schema(2, 5, seed=3)  # 31 nodes, as in the paper
    simulator = ExchangeSimulator(schema)
    rows = []
    for ratio, source_speed, target_speed in (
        ("5/1", 5.0, 1.0), ("2/1", 2.0, 1.0), ("1/1", 1.0, 1.0),
        ("1/2", 1.0, 2.0), ("1/5", 1.0, 5.0),
    ):
        rng = random.Random(42)
        trials = [
            simulator.greedy_quality_trial(
                n_fragments=11,
                source=MachineProfile("s", speed=source_speed),
                target=MachineProfile("t", speed=target_speed),
                rng=rng, order_limit=ORDER_LIMIT,
            )
            for _ in range(N_TRIALS)
        ]
        rows.append([
            ratio,
            sum(t.worst_over_optimal for t in trials) / len(trials),
            sum(t.greedy_over_optimal for t in trials) / len(trials),
            sum(t.optimal_seconds for t in trials) / len(trials),
            sum(t.greedy_seconds for t in trials) / len(trials),
        ])
    print()
    print(format_table(
        ["speed (src/tgt)", "Worst/Optimal", "Greedy/Optimal",
         "optimal secs", "greedy secs"],
        rows,
        title="Table 5: cost ratios over the optimal program",
    ))


def main() -> None:
    figures_10_and_11()
    table_5()


if __name__ == "__main__":
    main()
