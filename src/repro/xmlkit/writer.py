"""XML serialization: whole trees and streaming (tagger-style) output.

The streaming writer is what the publisher's *tagger* uses to emit a
full document from sorted relational feeds without materializing a tree
(Section 5.1 of the paper).
"""

from __future__ import annotations

from io import StringIO
from typing import TextIO

from repro.errors import ReproError
from repro.xmlkit.escape import escape_attr, escape_text
from repro.xmlkit.tree import Element

_DECLARATION = '<?xml version="1.0"?>'


def serialize(root: Element, indent: int | None = 2,
              declaration: bool = True) -> str:
    """Serialize an element tree to a string.

    Args:
        root: the tree to serialize.
        indent: spaces per nesting level, or ``None`` for compact output.
        declaration: whether to emit ``<?xml version="1.0"?>``.
    """
    out = StringIO()
    if declaration:
        out.write(_DECLARATION)
        if indent is not None:
            out.write("\n")
    _write_element(out, root, 0, indent)
    if indent is not None:
        out.write("\n")
    return out.getvalue()


def _write_element(out: TextIO, node: Element, depth: int,
                   indent: int | None) -> None:
    pad = "" if indent is None else " " * (indent * depth)
    newline = "" if indent is None else "\n"
    out.write(pad)
    out.write(f"<{node.name}")
    for key, value in node.attrs.items():
        out.write(f' {key}="{escape_attr(value)}"')
    if not node.children and not node.text:
        out.write("/>")
        return
    out.write(">")
    if node.text:
        out.write(escape_text(node.text))
    if node.children:
        for child in node.children:
            out.write(newline)
            _write_element(out, child, depth + 1, indent)
        out.write(newline)
        out.write(pad)
    out.write(f"</{node.name}>")


class XmlStreamWriter:
    """Incremental document writer with balanced-tag checking.

    Usage mirrors a SAX emitter::

        w = XmlStreamWriter()
        w.start("site", {"id": "0"})
        w.leaf("name", "ACME")
        w.end("site")
        document = w.getvalue()
    """

    def __init__(self, declaration: bool = True) -> None:
        self._out = StringIO()
        self._stack: list[str] = []
        self._closed_root = False
        if declaration:
            self._out.write(_DECLARATION)

    def start(self, name: str, attrs: dict[str, str] | None = None) -> None:
        """Open element ``name`` with optional attributes."""
        if self._closed_root:
            raise ReproError("cannot write after the root element closed")
        self._out.write(f"<{name}")
        if attrs:
            for key, value in attrs.items():
                self._out.write(f' {key}="{escape_attr(value)}"')
        self._out.write(">")
        self._stack.append(name)

    def characters(self, text: str) -> None:
        """Write character data inside the current element."""
        if not self._stack:
            raise ReproError("character data outside the root element")
        self._out.write(escape_text(text))

    def leaf(self, name: str, text: str,
             attrs: dict[str, str] | None = None) -> None:
        """Write ``<name>text</name>`` in one call."""
        self.start(name, attrs)
        if text:
            self.characters(text)
        self.end(name)

    def end(self, name: str) -> None:
        """Close element ``name`` (must match the innermost open tag)."""
        if not self._stack:
            raise ReproError(f"end tag </{name}> with no open element")
        expected = self._stack.pop()
        if expected != name:
            raise ReproError(
                f"end tag </{name}> does not match open <{expected}>"
            )
        self._out.write(f"</{name}>")
        if not self._stack:
            self._closed_root = True

    def getvalue(self) -> str:
        """Return the document written so far.

        Raises:
            ReproError: if elements are still open.
        """
        if self._stack:
            raise ReproError(
                f"document still has open element <{self._stack[-1]}>"
            )
        return self._out.getvalue()

    def bytes_written(self) -> int:
        """Return the current output size in characters (≈ bytes, ASCII)."""
        return self._out.tell()
