"""A lightweight element tree built on top of the streaming parser."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import XmlSyntaxError
from repro.xmlkit.events import Characters, EndElement, StartElement
from repro.xmlkit.parser import iterparse


@dataclass(slots=True)
class Element:
    """An XML element: a name, attributes, child elements and text.

    ``text`` holds the concatenated character data directly inside this
    element (the documents this library manipulates have no mixed
    content, so a single text slot per element suffices and keeps the
    model small).
    """

    name: str
    attrs: dict[str, str] = field(default_factory=dict)
    children: list["Element"] = field(default_factory=list)
    text: str = ""

    def append(self, child: "Element") -> "Element":
        """Append ``child`` and return it (enables fluent tree building)."""
        self.children.append(child)
        return child

    def child(self, name: str) -> "Element | None":
        """Return the first direct child named ``name``, or ``None``."""
        for node in self.children:
            if node.name == name:
                return node
        return None

    def find_all(self, name: str) -> list["Element"]:
        """Return all direct children named ``name``."""
        return [node for node in self.children if node.name == name]

    def iter(self) -> Iterator["Element"]:
        """Iterate over this element and all descendants, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def get(self, attr: str, default: str | None = None) -> str | None:
        """Return attribute ``attr`` or ``default``."""
        return self.attrs.get(attr, default)

    def local_name(self) -> str:
        """Return the name with any namespace prefix stripped."""
        _, _, local = self.name.rpartition(":")
        return local


def parse_tree(text: str) -> Element:
    """Parse ``text`` into an :class:`Element` tree and return the root.

    Raises:
        XmlSyntaxError: on malformed input.
    """
    root: Element | None = None
    stack: list[Element] = []
    for event in iterparse(text):
        if isinstance(event, StartElement):
            node = Element(event.name, dict(event.attrs))
            if stack:
                stack[-1].children.append(node)
            elif root is None:
                root = node
            stack.append(node)
        elif isinstance(event, EndElement):
            stack.pop()
        elif isinstance(event, Characters):
            if stack:
                stack[-1].text += event.text
    if root is None:
        raise XmlSyntaxError("document has no root element")
    for node in root.iter():
        node.text = node.text.strip()
    return root
