"""Streaming event types emitted by :func:`repro.xmlkit.parser.iterparse`."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Event:
    """Base class of all parse events."""


@dataclass(frozen=True, slots=True)
class XmlDeclaration(Event):
    """The ``<?xml ...?>`` declaration at the top of a document."""

    version: str = "1.0"
    encoding: str | None = None
    standalone: str | None = None


@dataclass(frozen=True, slots=True)
class StartElement(Event):
    """A start tag (or the start half of an empty-element tag)."""

    name: str
    attrs: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class EndElement(Event):
    """An end tag (or the end half of an empty-element tag)."""

    name: str


@dataclass(frozen=True, slots=True)
class Characters(Event):
    """Character data between tags (entities already resolved)."""

    text: str


@dataclass(frozen=True, slots=True)
class Comment(Event):
    """An XML comment; ``text`` excludes the delimiters."""

    text: str


@dataclass(frozen=True, slots=True)
class ProcessingInstruction(Event):
    """A processing instruction ``<?target data?>``."""

    target: str
    data: str
