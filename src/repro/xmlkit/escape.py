"""Entity escaping and unescaping for XML character data and attributes."""

from __future__ import annotations

from repro.errors import XmlSyntaxError

_NAMED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


def escape_text(text: str) -> str:
    """Escape character data for use between tags.

    Only ``&``, ``<`` and ``>`` need escaping in content; we escape all
    three so round-trips are byte-stable.
    """
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def escape_attr(value: str) -> str:
    """Escape an attribute value for inclusion in double quotes."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


def unescape(text: str) -> str:
    """Resolve entity and character references in ``text``.

    Supports the five XML named entities plus decimal (``&#65;``) and
    hexadecimal (``&#x41;``) character references.

    Raises:
        XmlSyntaxError: on an unterminated or unknown reference.
    """
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise XmlSyntaxError("unterminated entity reference")
        name = text[i + 1 : end]
        if not name:
            raise XmlSyntaxError("empty entity reference")
        if name.startswith("#x") or name.startswith("#X"):
            try:
                out.append(chr(int(name[2:], 16)))
            except ValueError as exc:
                raise XmlSyntaxError(
                    f"bad hexadecimal character reference &{name};"
                ) from exc
        elif name.startswith("#"):
            try:
                out.append(chr(int(name[1:], 10)))
            except ValueError as exc:
                raise XmlSyntaxError(
                    f"bad decimal character reference &{name};"
                ) from exc
        else:
            try:
                out.append(_NAMED_ENTITIES[name])
            except KeyError as exc:
                raise XmlSyntaxError(f"unknown entity &{name};") from exc
        i = end + 1
    return "".join(out)
