"""A streaming XML parser.

The paper's shredder uses the Expat SAX parser; this module is its
pure-Python stand-in.  Two entry points are provided:

* :func:`iterparse` — a generator of :mod:`repro.xmlkit.events` events,
  convenient for pull-style consumers (the tree builder, the WSDL reader).
* :func:`push_parse` — a SAX-style push API that drives a
  :class:`ContentHandler`, used by the relational shredder
  (:mod:`repro.relational.shredder`) exactly like the paper drives Expat.

Supported syntax: the XML declaration, elements with attributes (both
quote styles), character data with entity/character references, CDATA
sections, comments, processing instructions, and a DOCTYPE declaration
whose internal subset is skipped (DTDs are parsed separately by
:mod:`repro.schema.dtd`).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import XmlSyntaxError
from repro.xmlkit.escape import unescape
from repro.xmlkit.events import (
    Characters,
    Comment,
    EndElement,
    Event,
    ProcessingInstruction,
    StartElement,
    XmlDeclaration,
)

_WS = " \t\r\n"

# Characters that may start an XML name.  This is deliberately the
# pragmatic ASCII subset plus ':' (prefixed names) and '_' — enough for
# WSDL, XMark and every document the paper manipulates.
_NAME_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:"
)
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Scanner:
    """Character-level scanner with line/column tracking."""

    __slots__ = ("text", "pos", "_line_starts")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self._line_starts: list[int] | None = None

    def _location(self, pos: int | None = None) -> tuple[int, int]:
        if pos is None:
            pos = self.pos
        if self._line_starts is None:
            starts = [0]
            idx = self.text.find("\n")
            while idx != -1:
                starts.append(idx + 1)
                idx = self.text.find("\n", idx + 1)
            self._line_starts = starts
        starts = self._line_starts
        lo, hi = 0, len(starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if starts[mid] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1, pos - starts[lo] + 1

    def error(self, message: str, pos: int | None = None) -> XmlSyntaxError:
        line, column = self._location(pos)
        return XmlSyntaxError(message, line=line, column=column)

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.text.startswith(token, self.pos):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_ws(self) -> None:
        text = self.text
        pos = self.pos
        n = len(text)
        while pos < n and text[pos] in _WS:
            pos += 1
        self.pos = pos

    def read_name(self) -> str:
        text = self.text
        start = self.pos
        if start >= len(text) or text[start] not in _NAME_START:
            raise self.error("expected an XML name")
        pos = start + 1
        n = len(text)
        while pos < n and text[pos] in _NAME_CHARS:
            pos += 1
        self.pos = pos
        return text[start:pos]

    def read_until(self, token: str, what: str) -> str:
        idx = self.text.find(token, self.pos)
        if idx == -1:
            raise self.error(f"unterminated {what}")
        value = self.text[self.pos : idx]
        self.pos = idx + len(token)
        return value


def _read_attributes(scanner: _Scanner) -> dict[str, str]:
    """Read ``name="value"`` pairs up to (but excluding) ``>`` or ``/>``."""
    attrs: dict[str, str] = {}
    while True:
        scanner.skip_ws()
        ch = scanner.peek()
        if ch in (">", "/", "?", ""):
            return attrs
        name = scanner.read_name()
        scanner.skip_ws()
        scanner.expect("=")
        scanner.skip_ws()
        quote = scanner.peek()
        if quote not in ('"', "'"):
            raise scanner.error("attribute value must be quoted")
        scanner.pos += 1
        raw = scanner.read_until(quote, "attribute value")
        if "<" in raw:
            raise scanner.error("'<' not allowed in attribute value")
        if name in attrs:
            raise scanner.error(f"duplicate attribute {name!r}")
        attrs[name] = unescape(raw)


def _skip_doctype(scanner: _Scanner) -> None:
    """Skip a DOCTYPE declaration, including a bracketed internal subset."""
    scanner.expect("<!DOCTYPE")
    depth = 0
    while True:
        if scanner.at_end():
            raise scanner.error("unterminated DOCTYPE")
        ch = scanner.text[scanner.pos]
        scanner.pos += 1
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            return


def iterparse(text: str) -> Iterator[Event]:
    """Parse ``text`` and yield a stream of events.

    The element structure is validated (tags must nest and match) and
    exactly one root element is required.

    Raises:
        XmlSyntaxError: on any well-formedness violation.
    """
    scanner = _Scanner(text)
    stack: list[str] = []
    seen_root = False

    # Optional XML declaration.
    scanner.skip_ws()
    if scanner.startswith("<?xml"):
        scanner.pos += len("<?xml")
        attrs = _read_attributes(scanner)
        scanner.skip_ws()
        scanner.expect("?>")
        yield XmlDeclaration(
            version=attrs.get("version", "1.0"),
            encoding=attrs.get("encoding"),
            standalone=attrs.get("standalone"),
        )

    while not scanner.at_end():
        if scanner.peek() != "<":
            start = scanner.pos
            idx = scanner.text.find("<", start)
            if idx == -1:
                idx = len(scanner.text)
            raw = scanner.text[start:idx]
            scanner.pos = idx
            if stack:
                yield Characters(unescape(raw))
            elif raw.strip():
                raise scanner.error(
                    "character data outside the root element", pos=start
                )
            continue

        if scanner.startswith("<!--"):
            scanner.pos += 4
            yield Comment(scanner.read_until("-->", "comment"))
        elif scanner.startswith("<![CDATA["):
            if not stack:
                raise scanner.error("CDATA outside the root element")
            scanner.pos += len("<![CDATA[")
            yield Characters(scanner.read_until("]]>", "CDATA section"))
        elif scanner.startswith("<!DOCTYPE"):
            if seen_root:
                raise scanner.error("DOCTYPE after the root element")
            _skip_doctype(scanner)
        elif scanner.startswith("<?"):
            scanner.pos += 2
            target = scanner.read_name()
            data = scanner.read_until("?>", "processing instruction").strip()
            yield ProcessingInstruction(target, data)
        elif scanner.startswith("</"):
            scanner.pos += 2
            name = scanner.read_name()
            scanner.skip_ws()
            scanner.expect(">")
            if not stack:
                raise scanner.error(f"unexpected end tag </{name}>")
            expected = stack.pop()
            if name != expected:
                raise scanner.error(
                    f"mismatched end tag </{name}>, expected </{expected}>"
                )
            yield EndElement(name)
        else:
            scanner.expect("<")
            if seen_root and not stack:
                raise scanner.error("multiple root elements")
            name = scanner.read_name()
            attrs = _read_attributes(scanner)
            scanner.skip_ws()
            if scanner.startswith("/>"):
                scanner.pos += 2
                seen_root = True
                yield StartElement(name, attrs)
                yield EndElement(name)
            else:
                scanner.expect(">")
                seen_root = True
                stack.append(name)
                yield StartElement(name, attrs)

    if stack:
        raise scanner.error(f"unclosed element <{stack[-1]}>")
    if not seen_root:
        raise scanner.error("document has no root element")


class ContentHandler:
    """SAX-style callback interface (subset of the Expat API the paper uses).

    Subclass and override the callbacks of interest; the defaults do
    nothing, so handlers only implement what they need.
    """

    def start_element(self, name: str, attrs: dict[str, str]) -> None:
        """Called for each start tag (and each empty-element tag)."""

    def end_element(self, name: str) -> None:
        """Called for each end tag (and each empty-element tag)."""

    def characters(self, text: str) -> None:
        """Called for character data (possibly several times per node)."""

    def processing_instruction(self, target: str, data: str) -> None:
        """Called for each processing instruction."""

    def comment(self, text: str) -> None:
        """Called for each comment."""


def push_parse(text: str, handler: ContentHandler) -> None:
    """Parse ``text``, pushing events into ``handler`` (SAX style)."""
    for event in iterparse(text):
        if isinstance(event, StartElement):
            handler.start_element(event.name, event.attrs)
        elif isinstance(event, EndElement):
            handler.end_element(event.name)
        elif isinstance(event, Characters):
            handler.characters(event.text)
        elif isinstance(event, ProcessingInstruction):
            handler.processing_instruction(event.target, event.data)
        elif isinstance(event, Comment):
            handler.comment(event.text)
