"""A small, self-contained XML substrate.

The paper's systems rely on an XML stack (the authors used the Expat C
parser); this package provides the pure-Python equivalent used everywhere
in the reproduction:

* :mod:`repro.xmlkit.escape` — entity escaping/unescaping,
* :mod:`repro.xmlkit.events` — streaming event types,
* :mod:`repro.xmlkit.parser` — a streaming (SAX-style) event parser,
* :mod:`repro.xmlkit.tree` — a lightweight element tree,
* :mod:`repro.xmlkit.writer` — serialization (tree and streaming).

It intentionally supports the subset of XML that the paper's documents use:
elements, attributes, character data, CDATA sections, comments, processing
instructions and an (ignored) DOCTYPE declaration.  Namespaces are carried
as plain prefixed names, which is all WSDL round-tripping needs here.
"""

from repro.xmlkit.escape import escape_attr, escape_text, unescape
from repro.xmlkit.events import (
    Characters,
    Comment,
    EndElement,
    Event,
    ProcessingInstruction,
    StartElement,
    XmlDeclaration,
)
from repro.xmlkit.parser import ContentHandler, iterparse, push_parse
from repro.xmlkit.tree import Element, parse_tree
from repro.xmlkit.writer import XmlStreamWriter, serialize

__all__ = [
    "escape_attr",
    "escape_text",
    "unescape",
    "Event",
    "XmlDeclaration",
    "StartElement",
    "EndElement",
    "Characters",
    "Comment",
    "ProcessingInstruction",
    "iterparse",
    "push_parse",
    "ContentHandler",
    "Element",
    "parse_tree",
    "serialize",
    "XmlStreamWriter",
]
