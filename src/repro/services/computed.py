"""Computed fragments — fragments backed by service calls (Section 1.1).

    "The lowest granularity of a fragment is a single element in the
    XML Schema.  However, a fragment could correspond to the result of
    a service call.  For instance, S could provide a fragment that
    defines a service, TotalMRCService, standing for the total monthly
    recurring charges for all lines ordered by a customer, without
    revealing how this fragment is computed."

:class:`ComputedFragmentSource` wraps any source endpoint: fragments
registered with a *provider* are produced by calling it (typically a
SQL aggregate over the system's internal tables — see
:func:`sql_provider`); everything else scans through to the wrapped
endpoint.  The middleware sees an ordinary fragment either way — how it
is computed stays hidden behind the endpoint, exactly as the paper
requires.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import EndpointError
from repro.core.fragment import Fragment
from repro.core.instance import ElementData, FragmentInstance, FragmentRow
from repro.core.ops.base import Operation
from repro.core.ops.scan import Scan
from repro.relational.engine import Database
from repro.services.endpoint import SystemEndpoint

#: Produces the instance of one computed fragment on demand.
FragmentProvider = Callable[[Fragment], FragmentInstance]


class ComputedFragmentSource(SystemEndpoint):
    """A source endpoint with service-backed fragments."""

    def __init__(self, inner: SystemEndpoint,
                 providers: dict[str, FragmentProvider]) -> None:
        super().__init__(f"{inner.name}+computed", inner.machine)
        self.inner = inner
        self.providers = dict(providers)

    def scan(self, fragment: Fragment) -> FragmentInstance:
        provider = self.providers.get(fragment.name)
        if provider is not None:
            instance = provider(fragment)
            if instance.fragment.elements != fragment.elements:
                raise EndpointError(
                    f"provider for {fragment.name!r} produced an "
                    f"instance of {instance.fragment.name!r}"
                )
            return instance
        return self.inner.scan(fragment)

    def write(self, fragment: Fragment,
              instance: FragmentInstance) -> None:
        self.inner.write(fragment, instance)

    def estimate_cost(self, op: Operation) -> float:
        """Computed fragments answer probes like stored ones — the
        middleware cannot tell the difference (and should not)."""
        if (isinstance(op, Scan)
                and op.fragment.name in self.providers):
            # A service call is priced as a scan of its output.
            return self.inner.estimate_cost(op)
        return self.inner.estimate_cost(op)


def sql_provider(db: Database, sql: str, *,
                 eid_start: int = 1_000_000) -> FragmentProvider:
    """Build a provider for a single-leaf fragment from a SQL query.

    The query must return ``(parent_eid, value)`` rows; each becomes
    one fragment row whose root element carries the value as text.
    Fresh element ids are allocated from ``eid_start`` upward (service
    results are new data, not stored occurrences).

    The TotalMRC example::

        provider = sql_provider(
            source_db,
            "SELECT custkey, SUM(mrc) FROM charges GROUP BY custkey",
        )
    """

    def provide(fragment: Fragment) -> FragmentInstance:
        if len(fragment.elements) != 1:
            raise EndpointError(
                "sql_provider only serves single-element fragments; "
                f"{fragment.name!r} has {len(fragment.elements)}"
            )
        result = db.execute(sql)
        if len(result.columns) != 2:
            raise EndpointError(
                "a fragment provider query must return "
                "(parent_eid, value) rows"
            )
        rows = []
        next_eid = eid_start
        for parent_eid, value in result.rows:
            data = ElementData(
                fragment.root_name, next_eid,
                text="" if value is None else str(value),
            )
            rows.append(FragmentRow(data, int(parent_eid)))
            next_eid += 1
        return FragmentInstance(fragment, rows)

    return provide
