"""The discovery agency — the middleware of Figure 2.

Systems register their WSDL (with the fragmentation extension, step 1);
on a negotiation request the agency derives the source → target mapping
and data transfer program (step 2), probes the endpoints' cost
interfaces (step 3), and returns a plan assigning each operation a
location (step 4).  The agency never sees the systems' internal data
structures — only fragmentations and the cost probe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping as MappingType

from dataclasses import dataclass

from repro.errors import NegotiationError
from repro.core.cost.model import CostWeights
from repro.core.cost.probe import CostProbe, EndpointProbe
from repro.core.fragment import Fragment
from repro.core.fragmentation import Fragmentation
from repro.core.mapping import Mapping, derive_mapping
from repro.core.optimizer.exhaustive import cost_based_optim
from repro.core.optimizer.search import (
    OptimizationResult,
    greedy_exchange,
    optimal_exchange,
)
from repro.core.program.builder import build_transfer_program
from repro.core.program.dag import Placement, TransferProgram
from repro.net.transport import Transport
from repro.obs.metrics import MetricsRegistry
from repro.schema.model import SchemaTree
from repro.services.endpoint import SystemEndpoint
from repro.wsdl.extension import (
    fragmentation_from_element,
    fragmentation_to_element,
)
from repro.wsdl.model import Definitions, Port, Service, serialize_wsdl

if TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.adapt.stats import StatisticsStore
    from repro.services.broker import PlanCache, PlanFingerprint

#: The optimizer strategies negotiate() accepts.
OPTIMIZERS = ("greedy", "optimal", "canonical")


@dataclass(slots=True)
class Registration:
    """One registered system."""

    name: str
    fragmentation: Fragmentation
    endpoint: SystemEndpoint | None
    wsdl: Definitions
    wsdl_text: str


@dataclass(slots=True)
class ExchangePlan:
    """The agency's answer to a negotiation request."""

    source_name: str
    target_name: str
    mapping: Mapping
    program: TransferProgram
    placement: Placement
    estimated_cost: float
    optimizer: str
    optimizer_seconds: float
    #: Whether the plan was served from a :class:`~repro.services.
    #: broker.PlanCache` instead of a fresh optimization run.
    cached: bool = False
    #: The cache key this plan lives (or would live) under; ``None``
    #: when negotiation ran without a plan cache.  The broker hands it
    #: to the :class:`~repro.adapt.reoptimizer.ReOptimizer` so drifted
    #: plans can be re-optimized and swapped in place.
    fingerprint: "PlanFingerprint | None" = None

    def annotate(self) -> TransferProgram:
        """Write the placement onto the program and return it."""
        self.program.apply_placement(self.placement)
        return self.program


class DiscoveryAgency:
    """Registry plus negotiation logic for one agreed XML Schema."""

    def __init__(self, schema: SchemaTree,
                 service_name: str = "DataExchangeService") -> None:
        self.schema = schema
        self.service_name = service_name
        self._registry: dict[str, Registration] = {}

    # -- registration (step 1) ----------------------------------------------------

    def register(self, name: str,
                 fragmentation: Fragmentation | None = None,
                 endpoint: SystemEndpoint | None = None) -> Registration:
        """Register a system.

        A system that provides no fragmentation gets the whole-document
        default (publish&map behaviour, Section 1.1).  The stored WSDL
        document embeds the fragmentation extension.

        Raises:
            NegotiationError: on duplicate names or foreign schemas.
        """
        if name in self._registry:
            raise NegotiationError(f"system {name!r} already registered")
        if fragmentation is None:
            fragmentation = Fragmentation.whole_document(
                self.schema, f"{name}-default"
            )
        if fragmentation.schema is not self.schema:
            # Remote systems re-parse the agreed schema document, so
            # their fragmentations arrive over a structurally identical
            # but distinct SchemaTree.  Accept those by canonical
            # fingerprint and rebind onto this agency's tree (the rest
            # of the pipeline relies on schema identity).
            if not fragmentation.schema.structurally_equal(self.schema):
                raise NegotiationError(
                    f"fragmentation {fragmentation.name!r} is over a "
                    "different schema than this agency's"
                )
            fragmentation = Fragmentation(
                self.schema,
                [
                    Fragment(self.schema, fragment.elements,
                             fragment.name)
                    for fragment in fragmentation
                ],
                fragmentation.name,
            )
        wsdl = Definitions(
            name=f"{self.service_name}-{name}",
            target_namespace=f"http://{name}.example/wsdl",
            types=[fragmentation_to_element(fragmentation)],
            services=[
                Service(
                    self.service_name,
                    documentation=(
                        f"Fragment exchange endpoint of system {name}"
                    ),
                    ports=[
                        Port(
                            f"{self.service_name}Port",
                            f"tns:{self.service_name}Binding",
                            f"http://{name}.example/exchange",
                        )
                    ],
                )
            ],
        )
        registration = Registration(
            name, fragmentation, endpoint, wsdl, serialize_wsdl(wsdl)
        )
        self._registry[name] = registration
        return registration

    def register_wsdl(self, name: str, wsdl_text: str,
                      endpoint: SystemEndpoint | None = None
                      ) -> Registration:
        """Register from a serialized WSDL document carrying the
        fragmentation extension (what remote systems actually send).

        Raises:
            NegotiationError: if the document has no fragmentation.
        """
        from repro.wsdl.model import parse_wsdl

        definitions = parse_wsdl(wsdl_text)
        extension = definitions.find_extension("fragmentation")
        if extension is None:
            raise NegotiationError(
                f"WSDL for {name!r} carries no <fragmentation> extension"
            )
        fragmentation = fragmentation_from_element(extension, self.schema)
        if name in self._registry:
            raise NegotiationError(f"system {name!r} already registered")
        registration = Registration(
            name, fragmentation, endpoint, definitions, wsdl_text
        )
        self._registry[name] = registration
        return registration

    def registration(self, name: str) -> Registration:
        """Look up a registered system.

        Raises:
            NegotiationError: if unknown.
        """
        try:
            return self._registry[name]
        except KeyError as exc:
            raise NegotiationError(
                f"system {name!r} is not registered"
            ) from exc

    def registered_names(self) -> list[str]:
        """Names of all registered systems, sorted."""
        return sorted(self._registry)

    # -- negotiation (steps 2-4) ------------------------------------------------------

    def negotiate(self, source_name: str, target_name: str, *,
                  optimizer: str = "greedy",
                  probe: CostProbe | None = None,
                  channel: Transport | None = None,
                  weights: CostWeights | None = None,
                  order_limit: int | None = None,
                  plan_cache: "PlanCache | None" = None,
                  plan_knobs: MappingType[str, object] | None = None,
                  stats_store: "StatisticsStore | None" = None,
                  metrics: MetricsRegistry | None = None
                  ) -> ExchangePlan:
        """Produce an exchange plan between two registered systems.

        ``probe`` defaults to probing the two endpoints' cost
        interfaces through ``channel`` (both must then be present);
        pass an explicit probe (e.g. a CostModel) to negotiate without
        live endpoints.

        With a ``plan_cache`` the negotiation is memoized: the setup is
        fingerprinted (fragmentations, probe cost signature, optimizer,
        weights, ``order_limit`` plus any extra ``plan_knobs``) and a
        hit skips the optimizer entirely — the returned plan carries
        ``cached=True`` and ``optimizer_seconds=0.0``.  ``metrics``
        counts actual optimizer executions (``optimizer.runs`` and
        ``optimizer.<kind>.runs``), which is how callers assert that a
        warm cache really skipped optimization.

        A ``stats_store`` corrects the *pricing* the optimizer sees
        with the learned per-kind scales for this endpoint pair
        (:meth:`~repro.adapt.stats.StatisticsStore.scaled_probe`).
        The cache fingerprint is still computed from the *base* probe
        — learned scales evolve with every exchange, and keying the
        cache on them would turn every warm negotiation into a miss.

        Raises:
            NegotiationError: for unknown systems/optimizers or missing
                probes.
        """
        source = self.registration(source_name)
        target = self.registration(target_name)
        if optimizer not in OPTIMIZERS:
            raise NegotiationError(
                f"unknown optimizer {optimizer!r}; expected one of "
                f"{OPTIMIZERS}"
            )
        if probe is None:
            probe = self._endpoint_probe(source, target, channel)
        pricing_probe = probe
        if stats_store is not None:
            from repro.adapt.stats import pair_key

            pricing_probe = stats_store.scaled_probe(
                pair_key(source_name, target_name), probe
            )
        mapping = derive_mapping(
            source.fragmentation, target.fragmentation
        )
        fingerprint = None
        if plan_cache is not None:
            knobs: dict[str, object] = {"order_limit": order_limit}
            knobs.update(plan_knobs or {})
            fingerprint = plan_cache.fingerprint(
                source.fragmentation, target.fragmentation, probe,
                optimizer, weights, knobs, mapping=mapping,
            )
            hit = plan_cache.load(fingerprint, self.schema)
            if hit is not None:
                program, placement, entry = hit
                return ExchangePlan(
                    source_name,
                    target_name,
                    mapping,
                    program,
                    placement,
                    entry.estimated_cost,
                    entry.optimizer,
                    0.0,
                    cached=True,
                    fingerprint=fingerprint,
                )
        if optimizer == "greedy":
            result = greedy_exchange(mapping, pricing_probe, weights)
        elif optimizer == "optimal":
            result = optimal_exchange(
                mapping, pricing_probe, weights, order_limit
            )
        else:  # canonical order + Algorithm 1 placement
            program = build_transfer_program(mapping)
            placement, cost = cost_based_optim(
                program, pricing_probe, weights
            )
            result = OptimizationResult(program, placement, cost, 1, 0.0)
        if metrics is not None:
            metrics.counter("optimizer.runs").add(1)
            metrics.counter(f"optimizer.{optimizer}.runs").add(1)
        if plan_cache is not None and fingerprint is not None:
            plan_cache.put(
                fingerprint, result.program, result.placement,
                estimated_cost=result.cost, optimizer=optimizer,
                optimizer_seconds=result.elapsed_seconds,
            )
        return ExchangePlan(
            source_name,
            target_name,
            mapping,
            result.program,
            result.placement,
            result.cost,
            optimizer,
            result.elapsed_seconds,
            fingerprint=fingerprint,
        )

    def _endpoint_probe(self, source: Registration,
                        target: Registration,
                        channel: Transport | None) -> CostProbe:
        if source.endpoint is None or target.endpoint is None:
            raise NegotiationError(
                "negotiation needs either an explicit probe or two "
                "registered endpoints"
            )
        if channel is None:
            raise NegotiationError(
                "endpoint probing needs the channel for comm costs"
            )
        statistics = source.endpoint.statistics()
        target.endpoint.use_statistics(statistics)
        return EndpointProbe(
            source.endpoint, target.endpoint, channel, statistics
        )
