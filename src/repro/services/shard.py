"""Sharded exchange: scatter K shard sessions, gather one target.

One exchange, one session is the paper's world; this module spreads a
single logical exchange over K concurrent broker sessions:

* :class:`ShardingSpec` names the partitioning (shard count, row
  strategy, optional explicit grain elements) and applies the
  :mod:`repro.core.partition` helpers to cut scanned source instances
  into :class:`ShardPackage` sets — disjoint grain subtrees plus a
  replicated spine, each package a self-contained shard-local ID/PARENT
  namespace.
* :class:`ScatterGatherCoordinator` registers each package as a shard
  source with a (federated) agency, compiles the per-shard transfer
  program through the existing negotiate/plan-cache path — the K
  shards share one fingerprint, so the optimizer runs once — executes
  the shard sessions concurrently on a PR 5
  :class:`~repro.services.broker.ExchangeBroker` (over any Transport,
  including live TCP), and gathers the shard targets into one merged
  store whose published document is byte-identical to the unsharded
  exchange.

Gathering merges rows by element id: exclusive rows union disjointly,
replicated spine rows deduplicate, and any two shards disagreeing on
the content of one id is corruption and raises
:class:`~repro.errors.ShardingError`.  A failed shard session is
surfaced as a per-shard fault (:class:`~repro.errors.ShardFaultError`
in strict mode) without touching sibling shards.  ``shard.*`` metrics
and ``shard``-category spans wire through :mod:`repro.obs`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import ReproError, ShardFaultError, ShardingError
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel, CostWeights
from repro.core.cost.probe import CostProbe
from repro.core.fragmentation import Fragmentation
from repro.core.instance import FragmentInstance, FragmentRow
from repro.core.partition import (
    STRATEGIES,
    GrainPlan,
    PartitionResult,
    partition_instances,
    resolve_grains,
)
from repro.net.transport import SimulatedChannel, Transport
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.services.agency import DiscoveryAgency
from repro.services.broker import ExchangeBroker, ExchangeSession, PlanCache
from repro.services.endpoint import InMemoryEndpoint, SystemEndpoint
from repro.services.federation import FederatedAgency

__all__ = [
    "ShardPackage",
    "ShardingSpec",
    "ShardedExchangeOutcome",
    "ScatterGatherCoordinator",
]


@dataclass(slots=True)
class ShardPackage:
    """One shard's self-contained slice of the source instances.

    ``instances`` holds an entry for every source fragment (possibly
    empty).  ``exclusive_rows`` counts rows this shard owns alone;
    ``replicated_rows`` counts the spine replica rows it shares with
    every sibling — the honest price of shard-local PARENT resolution.
    """

    index: int
    instances: dict[str, FragmentInstance]
    exclusive_rows: int
    replicated_rows: int

    def feed_bytes(self) -> int:
        """Approximate sorted-feed bytes of the whole package."""
        return sum(
            instance.feed_size()
            for instance in self.instances.values()
        )

    def endpoint(self, name: str) -> InMemoryEndpoint:
        """An in-memory source endpoint seeded with this package."""
        endpoint = InMemoryEndpoint(name)
        for instance in self.instances.values():
            endpoint.put(instance)
        return endpoint


class ShardingSpec:
    """How to cut one exchange into K shards.

    ``strategy`` is one of :data:`~repro.core.partition.STRATEGIES`
    (``"key-range"`` or ``"prefix-label"``); ``grains`` optionally pins
    the grain elements (default: resolved automatically from the
    fragmentation pair, see
    :func:`~repro.core.partition.resolve_grains`).
    """

    def __init__(self, shards: int, strategy: str = "key-range",
                 grains: Sequence[str] | None = None) -> None:
        if shards < 1:
            raise ShardingError(f"shards must be >= 1, got {shards}")
        if strategy not in STRATEGIES:
            raise ShardingError(
                f"unknown sharding strategy {strategy!r}; expected "
                f"one of {STRATEGIES}"
            )
        self.shards = shards
        self.strategy = strategy
        self.grains = tuple(grains) if grains is not None else None

    def resolve(self, source: Fragmentation,
                target: Fragmentation) -> GrainPlan:
        """The grain plan for one fragmentation pair.

        Raises:
            ShardingError: when the pair cannot shard (see
                :func:`~repro.core.partition.resolve_grains`).
        """
        return resolve_grains(source, target, self.grains)

    def partition(self, instances: Mapping[str, FragmentInstance],
                  source: Fragmentation, target: Fragmentation
                  ) -> tuple[list[ShardPackage], PartitionResult]:
        """Cut scanned ``instances`` into per-shard packages."""
        plan = self.resolve(source, target)
        shard_sets, result = partition_instances(
            instances, source, plan, self.shards, self.strategy
        )
        exclusive = result.rows_per_shard()
        replicated = sum(
            len(instances[name].rows)
            for name in plan.spine if name in instances
        )
        packages = [
            ShardPackage(
                index=index,
                instances=shard_set,
                exclusive_rows=exclusive[index],
                replicated_rows=replicated,
            )
            for index, shard_set in enumerate(shard_sets)
        ]
        return packages, result

    def __repr__(self) -> str:
        return (
            f"ShardingSpec(shards={self.shards}, "
            f"strategy={self.strategy!r}, grains={self.grains!r})"
        )


@dataclass(slots=True)
class ShardedExchangeOutcome:
    """The gathered result of one scatter/gather exchange."""

    scenario: str
    shards: int
    strategy: str
    grains: tuple[str, ...]
    #: Per-shard broker sessions (``None`` where the shard faulted).
    sessions: list[ExchangeSession | None]
    #: Shard index → error description for failed shard sessions.
    faults: dict[int, str]
    #: The merged target endpoint (gathered from surviving shards).
    merged_target: SystemEndpoint | None
    #: Rows in the merged target after by-id deduplication.
    merged_rows: int = 0
    #: Rows scanned from shard targets beyond the merged count — the
    #: spine replicas the shards each wrote once.
    duplicate_rows: int = 0
    #: Partition accounting (source side).
    exclusive_rows: int = 0
    replicated_rows: int = 0
    #: Bytes each shard session shipped on its own channel.
    per_shard_comm_bytes: list[int] = field(default_factory=list)
    #: Phase timings (monotonic wall seconds).
    partition_seconds: float = 0.0
    exchange_seconds: float = 0.0
    gather_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def comm_bytes(self) -> int:
        """Total shipped bytes — the sum of the per-shard channels
        (each session runs its own channel, so the parts reconcile
        exactly)."""
        return sum(self.per_shard_comm_bytes)

    @property
    def rows_written(self) -> int:
        """Rows in the merged target (the unsharded equivalent)."""
        return self.merged_rows

    @property
    def cached_sessions(self) -> int:
        """How many shard negotiations were served from the cache."""
        return sum(
            1 for session in self.sessions
            if session is not None and session.cached
        )


class ScatterGatherCoordinator:
    """Run one logical exchange as K concurrent shard sessions.

    ``agency`` holds the *logical* registrations (source with its
    endpoint, target with its fragmentation) — a plain
    :class:`~repro.services.agency.DiscoveryAgency` or a
    :class:`~repro.services.federation.FederatedAgency`.  The
    coordinator scans the source once, partitions per ``spec``, and
    runs the shards on a private scatter plane: a federation of
    ``federation_members`` agencies (shard sources route across them)
    backed by ``plan_cache`` — one optimizer run serves all K shards,
    because the fingerprint covers fragmentations and knobs, not
    system names.

    ``channel_factory`` supplies each shard session's own transport
    (any :class:`~repro.net.transport.Transport`, including
    ``TcpTransport.connect`` against a live server);
    ``fault_plans``/``retry_policy`` arm per-shard fault injection and
    healing.  With ``strict=True`` (default) any failed shard raises
    :class:`~repro.errors.ShardFaultError` after every sibling has
    finished and the survivors were gathered; ``strict=False`` returns
    the partial outcome with ``faults`` filled in.
    """

    def __init__(self, agency: "DiscoveryAgency | FederatedAgency",
                 spec: ShardingSpec, *,
                 probe: CostProbe | None = None,
                 plan_cache: PlanCache | None = None,
                 optimizer: str = "greedy",
                 weights: CostWeights | None = None,
                 order_limit: int | None = None,
                 channel_factory: Callable[[], Transport]
                 = SimulatedChannel,
                 parallel_workers: int = 1,
                 batch_rows: int | None = None,
                 columnar: bool = False,
                 retry_policy: object | None = None,
                 fault_plans: Mapping[int, object] | None = None,
                 max_workers: int | None = None,
                 federation_members: int = 2,
                 strict: bool = True,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.agency = agency
        self.spec = spec
        self.probe = probe
        self.plan_cache = plan_cache
        self.optimizer = optimizer
        self.weights = weights
        self.order_limit = order_limit
        self.channel_factory = channel_factory
        self.parallel_workers = parallel_workers
        self.batch_rows = batch_rows
        self.columnar = columnar
        self.retry_policy = retry_policy
        self.fault_plans = dict(fault_plans or {})
        self.max_workers = max_workers or spec.shards
        self.federation_members = max(
            1, min(federation_members, spec.shards)
        )
        self.strict = strict
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).add(amount)

    # -- the run --------------------------------------------------------------

    def run(self, source_name: str, target_name: str,
            target_factory: Callable[[int], SystemEndpoint], *,
            scenario: str | None = None) -> ShardedExchangeOutcome:
        """Scatter, execute, gather.

        ``target_factory`` builds one private target store per shard
        index ``0..K-1`` and, called with ``-1``, the merged gather
        store.

        Raises:
            ShardingError: when partitioning or gathering fails.
            ShardFaultError: in strict mode, when any shard session
                failed (the partial outcome rides on the exception).
        """
        scenario = scenario or f"{source_name}->{target_name}"
        started = time.perf_counter()
        source = self.agency.registration(source_name)
        target = self.agency.registration(target_name)
        if source.endpoint is None:
            raise ShardingError(
                f"system {source_name!r} registered no endpoint; the "
                "coordinator scans it to scatter"
            )

        with self.tracer.span("scatter partition", "shard",
                              scenario=scenario,
                              shards=self.spec.shards,
                              strategy=self.spec.strategy):
            instances = {
                fragment.name: source.endpoint.scan(fragment)
                for fragment in source.fragmentation
            }
            packages, result = self.spec.partition(
                instances, source.fragmentation, target.fragmentation
            )
        partition_seconds = time.perf_counter() - started
        exclusive_rows = sum(pkg.exclusive_rows for pkg in packages)
        replicated_rows = sum(pkg.replicated_rows for pkg in packages)
        self._count("shard.partitions")
        self._count("shard.rows.exclusive", exclusive_rows)
        self._count("shard.rows.replicated", replicated_rows)

        probe = self.probe
        if probe is None:
            probe = CostModel(
                StatisticsCatalog.synthetic(self.agency.schema)
            )
        plan_cache = self.plan_cache
        if plan_cache is None:
            plan_cache = PlanCache(metrics=self.metrics)
        scatter = FederatedAgency.for_schema(
            self.agency.schema, members=self.federation_members,
            plan_cache=plan_cache, metrics=self.metrics,
            tracer=self.tracer,
        )
        scatter.register(target_name, target.fragmentation)

        sessions: list[ExchangeSession | None] = [None] * len(packages)
        faults: dict[int, str] = {}
        exchange_started = time.perf_counter()
        with ExchangeBroker(
            scatter,
            plan_cache=plan_cache,
            max_workers=self.max_workers,
            max_pending=max(2 * self.max_workers, len(packages)),
            optimizer=self.optimizer,
            probe=probe,
            weights=self.weights,
            order_limit=self.order_limit,
            channel_factory=self.channel_factory,
            parallel_workers=self.parallel_workers,
            batch_rows=self.batch_rows,
            columnar=self.columnar,
            retry_policy=self.retry_policy,  # type: ignore[arg-type]
            metrics=self.metrics,
            tracer=self.tracer,
        ) as broker:
            futures = []
            for package in packages:
                shard_source = f"{source_name}#shard{package.index}"
                scatter.register(
                    shard_source, source.fragmentation,
                    package.endpoint(shard_source),
                )
                futures.append(broker.submit(
                    shard_source, target_name,
                    lambda index=package.index: target_factory(index),
                    scenario=f"{scenario}#shard{package.index}",
                    wait=True,
                    fault_plan=self.fault_plans.get(  # type: ignore[arg-type]
                        package.index
                    ),
                ))
                self._count("shard.sessions")
            for index, future in enumerate(futures):
                try:
                    sessions[index] = future.result()
                except ReproError as exc:
                    faults[index] = f"{type(exc).__name__}: {exc}"
                    self._count("shard.faults")
        exchange_seconds = time.perf_counter() - exchange_started

        gather_started = time.perf_counter()
        with self.tracer.span("gather merge", "shard",
                              scenario=scenario,
                              survivors=len(sessions) - len(faults)):
            merged_target = target_factory(-1)
            merged_rows, duplicate_rows = self._gather(
                [session for session in sessions if session is not None],
                target.fragmentation, merged_target,
            )
        gather_seconds = time.perf_counter() - gather_started

        outcome = ShardedExchangeOutcome(
            scenario=scenario,
            shards=self.spec.shards,
            strategy=self.spec.strategy,
            grains=result.plan.grains,
            sessions=sessions,
            faults=faults,
            merged_target=merged_target,
            merged_rows=merged_rows,
            duplicate_rows=duplicate_rows,
            exclusive_rows=exclusive_rows,
            replicated_rows=replicated_rows,
            per_shard_comm_bytes=[
                session.outcome.comm_bytes if session is not None else 0
                for session in sessions
            ],
            partition_seconds=partition_seconds,
            exchange_seconds=exchange_seconds,
            gather_seconds=gather_seconds,
            wall_seconds=time.perf_counter() - started,
        )
        if faults and self.strict:
            raise ShardFaultError(
                f"{len(faults)} of {len(packages)} shard sessions "
                f"failed: {faults}", faults, outcome,
            )
        return outcome

    def _gather(self, sessions: Sequence[ExchangeSession],
                target_fragmentation: Fragmentation,
                merged_target: SystemEndpoint) -> tuple[int, int]:
        """Union shard targets by element id into ``merged_target``.

        Returns ``(merged_rows, duplicate_rows)``.

        Raises:
            ShardingError: when two shards hold *different* rows under
                one element id (shard corruption — replicas must agree).
        """
        merged_rows = 0
        duplicate_rows = 0
        for fragment in target_fragmentation:
            by_eid: dict[int, FragmentRow] = {}
            order: list[int] = []
            for session in sessions:
                instance = session.target.scan(fragment)
                for row in instance.rows:
                    existing = by_eid.get(row.eid)
                    if existing is None:
                        by_eid[row.eid] = row
                        order.append(row.eid)
                        continue
                    duplicate_rows += 1
                    if (existing.parent != row.parent
                            or existing.data != row.data):
                        self._count("shard.merge.conflicts")
                        raise ShardingError(
                            f"gather conflict on fragment "
                            f"{fragment.name!r} id {row.eid}: shard "
                            f"{session.session_id} disagrees with an "
                            "earlier shard about the row content"
                        )
            merged = FragmentInstance(
                fragment, [by_eid[eid] for eid in order]
            )
            merged.sort()
            merged_target.write(fragment, merged)
            merged_rows += len(merged.rows)
        build_indexes = getattr(merged_target, "build_indexes", None)
        if callable(build_indexes):
            build_indexes()
        self._count("shard.merge.rows", merged_rows)
        self._count("shard.merge.duplicates", duplicate_rows)
        return merged_rows, duplicate_rows
