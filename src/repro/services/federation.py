"""Agency federation: many discovery agencies, one plan cache.

The paper's Figure 2 has a single discovery agency mediating every
registration and negotiation; a production deployment spreads that
control plane over several agencies (the distributed XML-query-network
architecture in PAPERS.md).  :class:`FederatedAgency` presents the
same interface as one :class:`~repro.services.agency.DiscoveryAgency`
— ``register`` / ``register_wsdl`` / ``registration`` / ``negotiate``
— while routing each system to a *home* member by a stable hash of its
name.  Negotiation runs on the source's home member; when the target
lives elsewhere its registration is mirrored on demand.  All members
share one :class:`~repro.services.broker.PlanCache`, so a plan
negotiated through any member warms every other (fingerprints do not
involve agency identity).

``federation.*`` metrics count registrations, routed negotiations and
mirror copies; spans are emitted under the ``federation`` category.
"""

from __future__ import annotations

import hashlib
import threading
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import NegotiationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.schema.model import SchemaTree
from repro.services.agency import (
    DiscoveryAgency,
    ExchangePlan,
    Registration,
)
from repro.services.endpoint import SystemEndpoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.core.fragmentation import Fragmentation
    from repro.services.broker import PlanCache

__all__ = ["FederatedAgency"]


class FederatedAgency:
    """Route register/negotiate across member agencies sharing one
    plan cache.

    Drop-in for a :class:`~repro.services.agency.DiscoveryAgency`
    wherever one is consumed (the broker, the scatter/gather
    coordinator, the SOAP server): the consumed surface is duck-typed.
    """

    def __init__(self, members: Sequence[DiscoveryAgency], *,
                 plan_cache: "PlanCache | None" = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        if not members:
            raise NegotiationError(
                "a federation needs at least one member agency"
            )
        reference = members[0].schema
        for member in members[1:]:
            if not member.schema.structurally_equal(reference):
                raise NegotiationError(
                    f"member agency {member.service_name!r} serves a "
                    "structurally different schema; a federation "
                    "mediates one agreed schema"
                )
        self.members = list(members)
        self.plan_cache = plan_cache
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self._homes: dict[str, DiscoveryAgency] = {}
        self._lock = threading.Lock()

    @classmethod
    def for_schema(cls, schema: SchemaTree, members: int = 2,
                   **kwargs: object) -> "FederatedAgency":
        """A federation of ``members`` fresh agencies over ``schema``."""
        if members < 1:
            raise NegotiationError(
                f"members must be >= 1, got {members}"
            )
        return cls(
            [
                DiscoveryAgency(schema, f"FederatedAgency-{index}")
                for index in range(members)
            ],
            **kwargs,  # type: ignore[arg-type]
        )

    @property
    def schema(self) -> SchemaTree:
        """The agreed schema (member 0's binding of it)."""
        return self.members[0].schema

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).add(1)

    def route(self, name: str) -> DiscoveryAgency:
        """The home member of system ``name`` (stable name hash)."""
        digest = hashlib.sha256(name.encode("utf-8")).digest()
        return self.members[
            int.from_bytes(digest[:4], "big") % len(self.members)
        ]

    def _lookup(self, name: str) -> tuple[DiscoveryAgency,
                                          Registration] | None:
        with self._lock:
            home = self._homes.get(name)
        candidates = [home] if home is not None else self.members
        for member in candidates:
            try:
                return member, member.registration(name)
            except NegotiationError:
                continue
        return None

    # -- registration ---------------------------------------------------------

    def register(self, name: str,
                 fragmentation: "Fragmentation | None" = None,
                 endpoint: SystemEndpoint | None = None
                 ) -> Registration:
        """Register a system with its home member.

        Raises:
            NegotiationError: if ``name`` is already registered
                anywhere in the federation, or the member rejects it.
        """
        if self._lookup(name) is not None:
            raise NegotiationError(
                f"system {name!r} already registered in the federation"
            )
        home = self.route(name)
        registration = home.register(name, fragmentation, endpoint)
        with self._lock:
            self._homes[name] = home
        self._count("federation.registrations")
        return registration

    def register_wsdl(self, name: str, wsdl_text: str,
                      endpoint: SystemEndpoint | None = None
                      ) -> Registration:
        """Register from a serialized WSDL document, routed like
        :meth:`register`."""
        if self._lookup(name) is not None:
            raise NegotiationError(
                f"system {name!r} already registered in the federation"
            )
        home = self.route(name)
        registration = home.register_wsdl(name, wsdl_text, endpoint)
        with self._lock:
            self._homes[name] = home
        self._count("federation.registrations")
        return registration

    def registration(self, name: str) -> Registration:
        """Look up ``name`` across the federation.

        Raises:
            NegotiationError: if no member knows the system.
        """
        found = self._lookup(name)
        if found is None:
            raise NegotiationError(
                f"system {name!r} is not registered with any of the "
                f"{len(self.members)} member agencies"
            )
        return found[1]

    def registered_names(self) -> list[str]:
        """Names registered anywhere in the federation, sorted."""
        names: set[str] = set()
        for member in self.members:
            names.update(member.registered_names())
        return sorted(names)

    # -- negotiation ----------------------------------------------------------

    def negotiate(self, source_name: str, target_name: str, *,
                  plan_cache: "PlanCache | None" = None,
                  metrics: MetricsRegistry | None = None,
                  **kwargs: object) -> ExchangePlan:
        """Negotiate on the source's home member, mirroring the target
        registration there when it lives on another member.

        ``plan_cache`` defaults to the federation-wide cache, so every
        member negotiates through the same memo; remaining keyword
        arguments pass through to
        :meth:`~repro.services.agency.DiscoveryAgency.negotiate`.

        Raises:
            NegotiationError: for systems unknown to the federation,
                and whatever the member negotiation raises.
        """
        source_found = self._lookup(source_name)
        if source_found is None:
            raise NegotiationError(
                f"system {source_name!r} is not registered with any "
                f"of the {len(self.members)} member agencies"
            )
        coordinator, _ = source_found
        try:
            coordinator.registration(target_name)
        except NegotiationError:
            target_registration = self.registration(target_name)
            coordinator.register(
                target_name,
                target_registration.fragmentation,
                target_registration.endpoint,
            )
            self._count("federation.mirrored")
        cache = plan_cache if plan_cache is not None else self.plan_cache
        with self.tracer.span(
            "federated negotiate", "federation",
            member=coordinator.service_name,
            source=source_name, target=target_name,
        ):
            plan = coordinator.negotiate(
                source_name, target_name,
                plan_cache=cache,
                metrics=metrics if metrics is not None else self.metrics,
                **kwargs,  # type: ignore[arg-type]
            )
        self._count("federation.negotiations")
        return plan
