"""The Web-services layer (Figure 2).

* :mod:`repro.services.endpoint` — the systems at each end of the
  exchange: they execute Scans/Writes over their own stores and expose
  the cost-probe interface,
* :mod:`repro.services.agency` — the discovery agency middleware:
  registers WSDL + fragmentations, derives the mapping and the data
  transfer program, optimizes it and assigns locations,
* :mod:`repro.services.exchange` — end-to-end runs: the optimized data
  exchange (steps 1–5 of Section 5.2) and the publish&map baseline
  (steps 1–6 of Section 5.1), with per-step timings for Figure 9,
* :mod:`repro.services.broker` — the negotiated-plan cache and the
  multi-session exchange broker that amortizes optimization across
  repeated exchanges and runs sessions concurrently on a bounded
  worker budget.
"""

from repro.services.agency import DiscoveryAgency, ExchangePlan
from repro.services.broker import (
    CachedPlan,
    ExchangeBroker,
    ExchangeSession,
    PlanCache,
    PlanFingerprint,
    plan_fingerprint,
)
from repro.services.endpoint import (
    DirectoryEndpoint,
    InMemoryEndpoint,
    RelationalEndpoint,
    SystemEndpoint,
)
from repro.services.selection import SelectiveEndpoint, ServiceArgument
from repro.services.exchange import (
    ExchangeOutcome,
    run_optimized_exchange,
    run_publish_and_map,
)

__all__ = [
    "SystemEndpoint",
    "RelationalEndpoint",
    "InMemoryEndpoint",
    "DirectoryEndpoint",
    "SelectiveEndpoint",
    "ServiceArgument",
    "DiscoveryAgency",
    "ExchangePlan",
    "PlanCache",
    "PlanFingerprint",
    "CachedPlan",
    "plan_fingerprint",
    "ExchangeBroker",
    "ExchangeSession",
    "ExchangeOutcome",
    "run_optimized_exchange",
    "run_publish_and_map",
]
