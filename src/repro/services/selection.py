"""Service arguments: selection pushed down to the source (Section 3.2).

    "If the Web service takes arguments as input, we assume the source
    system will filter the data accordingly and provide us with the
    relevant pieces.  For example, the service CustomerInfoService ...
    could take an argument that specifies customers location based on
    their state.  In this case, the ordering application will provide
    us with customers that reside in that state."

:class:`ServiceArgument` states a predicate over one element's subtree
(by default: a leaf equals a value); :class:`SelectiveEndpoint` wraps
any source endpoint and serves *filtered* fragment feeds — rows of the
argument element that fail the predicate disappear, and the cascade
removes every descendant fragment row that hangs off a removed subtree,
so downstream programs see a consistent, smaller world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import EndpointError
from repro.core.fragment import Fragment
from repro.core.fragmentation import Fragmentation
from repro.core.instance import ElementData, FragmentInstance
from repro.services.endpoint import SystemEndpoint


@dataclass(frozen=True, slots=True)
class ServiceArgument:
    """Keep only subtrees of ``element`` satisfying ``predicate``."""

    element: str
    predicate: Callable[[ElementData], bool]

    @classmethod
    def leaf_equals(cls, element: str, leaf: str,
                    value: str) -> "ServiceArgument":
        """The common form: ``element`` kept iff its ``leaf`` text is
        ``value`` (e.g. customers whose State is 'NJ')."""

        def check(row: ElementData) -> bool:
            return any(
                node.text == value
                for node in row.occurrences_of(leaf)
            )

        return cls(element, check)

    @classmethod
    def leaf_contains(cls, element: str, leaf: str,
                      needle: str) -> "ServiceArgument":
        """``element`` kept iff its ``leaf`` text contains ``needle``."""

        def check(row: ElementData) -> bool:
            return any(
                needle in node.text
                for node in row.occurrences_of(leaf)
            )

        return cls(element, check)


class SelectiveEndpoint(SystemEndpoint):
    """A source endpoint that filters its feeds by a service argument.

    The argument element must be a fragment root of the source's
    fragmentation (the natural case: the service subsets whole business
    objects).  Filtering cascades: rows of descendant fragments survive
    only if their PARENT chain still exists.
    """

    def __init__(self, inner: SystemEndpoint,
                 fragmentation: Fragmentation,
                 argument: ServiceArgument) -> None:
        super().__init__(f"{inner.name}[{argument.element}]",
                         inner.machine)
        self.inner = inner
        self.fragmentation = fragmentation
        self.argument = argument
        anchor = fragmentation.fragment_of(argument.element)
        if anchor.root_name != argument.element:
            raise EndpointError(
                f"service argument element {argument.element!r} must "
                "be a fragment root of the source fragmentation "
                f"(it is inside {anchor.name!r})"
            )
        self._filtered: dict[str, FragmentInstance] | None = None

    # -- the cascade ---------------------------------------------------------

    def _compute(self) -> dict[str, FragmentInstance]:
        if self._filtered is not None:
            return self._filtered
        anchor = self.fragmentation.fragment_of(self.argument.element)
        anchor_depth = self.fragmentation.schema.depth(
            anchor.root_name
        )
        survivors: set[int] = set()
        filtered: dict[str, FragmentInstance] = {}
        # Fragments ordered root-first (Fragmentation sorts by depth).
        for fragment in self.fragmentation:
            instance = self.inner.scan(fragment)
            depth = self.fragmentation.schema.depth(fragment.root_name)
            if depth < anchor_depth:
                kept = instance.rows  # above the argument: unaffected
            elif fragment is anchor:
                kept = [
                    row for row in instance.rows
                    if self.argument.predicate(row.data)
                ]
            else:
                kept = [
                    row for row in instance.rows
                    if row.parent in survivors
                ]
            for row in kept:
                for node in row.data.iter_all():
                    survivors.add(node.eid)
            filtered[fragment.name] = FragmentInstance(fragment, kept)
        self._filtered = filtered
        return filtered

    # -- SystemEndpoint interface ------------------------------------------------

    def scan(self, fragment: Fragment) -> FragmentInstance:
        try:
            return self._compute()[fragment.name].copy()
        except KeyError as exc:
            raise EndpointError(
                f"{self.name!r} stores no fragment {fragment.name!r}"
            ) from exc

    def write(self, fragment: Fragment,
              instance: FragmentInstance) -> None:
        raise EndpointError(
            "a selective endpoint is a read-only source view"
        )

    def estimate_cost(self, op) -> float:
        """Probes pass through to the wrapped system."""
        return self.inner.estimate_cost(op)
