"""End-to-end exchange runs with per-step timings.

Two pipelines, matching Sections 5.1/5.2:

* **Optimized data exchange (DE)** — (1) execute the program parts
  assigned to the source, (2) ship the cross-edge fragments, (3)
  execute the parts assigned to the target, (4) load, (5) index.
* **Publish&map (PM)** — (1) execute publishing queries, (2) tag, (3)
  ship the document, (4) parse & shred, (5) load, (6) index.

Step names in :class:`ExchangeOutcome` follow Figure 9's legend so the
benchmark harness can print the same stacked breakdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import EndpointError
from repro.core.delta import (
    DeltaSourceView,
    DeltaTargetView,
    compute_delta,
)
from repro.core.program.dag import Placement, TransferProgram
from repro.core.program.executor import ExecutionReport, ProgramExecutor
from repro.core.program.journal import ExchangeJournal
from repro.core.program.parallel_executor import ParallelProgramExecutor
from repro.net.faults import (
    FaultPlan,
    FaultyChannel,
    ReliableChannel,
    RetryPolicy,
    RobustnessStats,
)
from repro.net.transport import Transport
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.relational.publisher import publish_document
from repro.relational.shredder import shred_document
from repro.services.endpoint import RelationalEndpoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.adapt.executor import AdaptiveConfig
    from repro.services.endpoint import SystemEndpoint

#: Step keys, in Figure 9 stacking order (bottom to top).
STEPS = (
    "source_processing",
    "communication",
    "shredding",
    "target_processing",
    "loading",
    "indexing",
)


@dataclass(slots=True)
class ExchangeOutcome:
    """Per-step timings and volumes of one end-to-end run."""

    scenario: str
    method: str  # "DE" (optimized data exchange) or "PM" (publish&map)
    steps: dict[str, float] = field(
        default_factory=lambda: {step: 0.0 for step in STEPS}
    )
    comm_bytes: int = 0
    rows_written: int = 0
    indexes_built: int = 0
    #: Workers the program executor ran with (1 = sequential).
    parallel_workers: int = 1
    #: Measured wall-clock of the program-execution phase.  Equals the
    #: summed per-step attribution sequentially; with parallel workers
    #: it is the real makespan (smaller when overlap pays off).
    wall_seconds: float = 0.0
    #: Dataplane the program phase used (None = materialized).
    batch_rows: int | None = None
    #: Whether the program phase ran the columnar dataplane.
    columnar: bool = False
    #: Peak fragment rows / bytes resident in the dataplane (see
    #: :class:`~repro.core.program.executor.ExecutionReport`).
    peak_resident_rows: int = 0
    peak_resident_bytes: int = 0
    #: Healing work of the reliable shipping layer (all zero on a
    #: fault-free run): re-sends after transport failures, duplicate
    #: deliveries discarded, attempts recorded before this one in the
    #: run's journal, and faults the channel actually injected.
    retries: int = 0
    redelivered_batches: int = 0
    resume_count: int = 0
    faults_injected: int = 0
    #: Healing work attributed per cross-edge ``(producer op, port)``
    #: — summed across attempts and executors, never overwritten.
    retries_by_edge: dict = field(default_factory=dict)
    redelivered_by_edge: dict = field(default_factory=dict)
    #: The program phase's full :class:`~repro.core.program.executor.
    #: ExecutionReport` — the adaptive layer's raw feedback (per-op
    #: timings, shipment accounting).  ``None`` only for PM runs.
    report: "ExecutionReport | None" = None
    #: Mid-flight suffix re-placements the adaptive executor performed
    #: (0 on static runs) and how many operations they moved.
    replans: int = 0
    ops_moved: int = 0
    #: Delta-exchange accounting (all zero/False on full runs): the
    #: version window ``(delta_since, delta_high]`` this run covered,
    #: how many source rows had changed in it, how many the closure
    #: actually shipped (out of ``delta_total_rows`` stored), and how
    #: many target rows were tombstone-deleted.
    delta: bool = False
    delta_since: int = 0
    delta_high: int = 0
    delta_changed_rows: int = 0
    delta_shipped_rows: int = 0
    delta_total_rows: int = 0
    delta_deleted_rows: int = 0

    @property
    def total_seconds(self) -> float:
        """End-to-end time (sum of all steps)."""
        return sum(self.steps.values())

    @property
    def data_processing_seconds(self) -> float:
        """Processing-only time (everything except communication) —
        the quantity behind the paper's "six times faster in data
        processing" claim."""
        return self.total_seconds - self.steps["communication"]

    def breakdown(self) -> str:
        """One-line rendering of the step times."""
        parts = ", ".join(
            f"{step}={seconds:.3f}s"
            for step, seconds in self.steps.items()
            if seconds
        )
        return f"[{self.scenario} {self.method}] {parts}"


def run_optimized_exchange(
    program: TransferProgram,
    placement: Placement,
    source: RelationalEndpoint,
    target: RelationalEndpoint,
    channel: Transport,
    scenario: str = "exchange",
    parallel_workers: int = 1,
    batch_rows: int | None = None,
    columnar: bool = False,
    join_strategy: str | None = None,
    retry_policy: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    journal: ExchangeJournal | None = None,
    adaptive: "AdaptiveConfig | None" = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    reset_channel: bool = True,
    delta: bool = False,
    since: int | None = None,
) -> ExchangeOutcome:
    """Run the optimized data exchange (Section 5.2 steps 1–5).

    With ``parallel_workers > 1`` the program phase runs on the
    DAG-scheduled :class:`~repro.core.program.parallel_executor.
    ParallelProgramExecutor`: independent expressions execute
    concurrently and cross-edge shipping overlaps computation.  Written
    fragments are identical either way; the per-step attribution keeps
    its sequential meaning while ``wall_seconds`` carries the measured
    makespan.

    ``batch_rows`` selects the executor's dataplane: ``None`` moves
    materialized instances, an integer streams row batches of that size
    (bounded peak residency, chunked shipping, same written fragments).
    ``columnar=True`` (requires ``batch_rows``) streams flat-storable
    fragments as :class:`~repro.core.columnar.ColumnBatch` columns
    instead — Combine runs the build/probe join, Split projects
    columns, and the written fragments stay byte-identical.
    ``join_strategy`` pins the columnar join ("hash"/"merge"; default
    auto-selects from the observed feed order).

    ``fault_plan`` makes the channel lossy (see :mod:`repro.net.
    faults`); ``retry_policy`` arms the reliable layer that heals the
    loss; ``journal`` arms checkpoint/resume.  Communication cost then
    includes the wasted transmissions — loss is charged, not hidden.

    ``adaptive`` runs the program phase through the
    :class:`~repro.adapt.executor.AdaptiveRun` wrapper instead: per-op
    (or per-expression) checkpoints compare observed against predicted
    costs and re-place the not-yet-started DAG suffix when they
    diverge.  Written fragments stay byte-identical; the outcome's
    ``replans``/``ops_moved`` count what the wrapper did.  Adaptive
    runs do not compose with ``journal`` (resume bookkeeping assumes
    the placement it recorded is the placement that finishes the run).

    ``delta=True`` runs an *incremental* exchange: the source must have
    versioning enabled (:meth:`~repro.services.endpoint.SystemEndpoint.
    enable_versioning`), changed rows since ``since`` (default: the
    journal's last completed sync, else 0 — everything) are computed
    via :func:`~repro.core.delta.compute_delta`, the program runs over
    the filtered feed through :class:`~repro.core.delta.
    DeltaSourceView`, and the target merges by eid through
    :class:`~repro.core.delta.DeltaTargetView` (tombstoned target rows
    are deleted first).  The merged target is byte-identical to a full
    re-exchange on every dataplane; only the changed subset crosses
    the wire.  A completed run records the covered high-water version
    in the ``journal`` (``sync`` event), so the next delta resumes
    where this one *finished* — a killed run never advances it.  Delta
    does not compose with ``adaptive``.

    ``reset_channel=False`` leaves the channel's running totals alone
    and attributes only this run's delta window to the outcome —
    required when the channel is not exclusively this run's (resetting
    a channel another exchange still accounts against would silently
    zero *its* communication step).  Note the delta is only meaningful
    while no other session charges the channel concurrently; truly
    concurrent sessions must each get their own channel, which is what
    :class:`~repro.services.broker.ExchangeBroker` does.
    """
    if parallel_workers < 1:
        raise ValueError("parallel_workers must be >= 1")
    if adaptive is not None and journal is not None:
        raise ValueError(
            "adaptive execution does not compose with journaled "
            "resume; run one or the other"
        )
    if delta and adaptive is not None:
        raise ValueError(
            "delta exchange does not compose with adaptive "
            "re-placement; run one or the other"
        )
    tracer = tracer or NULL_TRACER
    outcome = ExchangeOutcome(
        scenario, "DE", parallel_workers=parallel_workers,
        batch_rows=batch_rows, columnar=columnar,
    )
    if reset_channel:
        channel.reset()
    comm_seconds_start = channel.total_seconds
    comm_bytes_start = channel.total_bytes
    exec_source: "SystemEndpoint | DeltaSourceView" = source
    exec_target: "SystemEndpoint | DeltaTargetView" = target
    sync_version: int | None = None
    if delta:
        versions = source.versions
        if versions is None:
            raise EndpointError(
                f"endpoint {source.name!r} has no version log; call "
                "enable_versioning() before a delta exchange"
            )
        resolved_since = since
        if resolved_since is None:
            resolved_since = (
                journal.last_sync_version()
                if journal is not None else 0
            )
        sync_version = versions.current
        delta_started = time.perf_counter()
        with tracer.span("compute delta", "step", scenario=scenario,
                         since=resolved_since, high=sync_version):
            delta_set = compute_delta(
                source,
                [op.fragment for op in program.scans()],
                [op.fragment for op in program.writes()],
                resolved_since,
            )
        delta_seconds = time.perf_counter() - delta_started
        outcome.steps["source_processing"] += delta_seconds
        deleted = 0
        for op in program.writes():
            doomed = delta_set.deletes.get(op.fragment.name)
            if doomed:
                deleted += target.delete_rows(op.fragment, doomed)
        outcome.delta = True
        outcome.delta_since = resolved_since
        outcome.delta_high = sync_version
        outcome.delta_changed_rows = delta_set.changed_rows
        outcome.delta_shipped_rows = delta_set.shipped_rows
        outcome.delta_total_rows = delta_set.total_rows
        outcome.delta_deleted_rows = deleted
        if metrics is not None:
            metrics.counter("delta.runs").add(1)
            metrics.counter("delta.changed_rows").add(
                delta_set.changed_rows
            )
            metrics.counter("delta.shipped_rows").add(
                delta_set.shipped_rows
            )
            metrics.counter("delta.deleted_rows").add(deleted)
            metrics.counter("delta.skipped_rows").add(
                delta_set.total_rows - delta_set.shipped_rows
            )
        exec_source = DeltaSourceView(source, delta_set)
        exec_target = DeltaTargetView(target, delta_set)
    elif journal is not None and source.versions is not None:
        # A journaled *full* run over a versioned source is a sync
        # point too: record its high-water so a later delta run ships
        # only what changed after it.
        sync_version = source.versions.current
    wire = (
        FaultyChannel(channel, fault_plan, tracer=tracer)
        if fault_plan is not None else channel
    )
    if adaptive is not None:
        from repro.adapt.executor import AdaptiveRun

        runner = AdaptiveRun(
            program, placement, source, target, wire,
            config=adaptive, parallel_workers=parallel_workers,
            batch_rows=batch_rows, columnar=columnar,
            join_strategy=join_strategy, retry=retry_policy,
            tracer=tracer, metrics=metrics,
        )
        with tracer.span("execute program", "step", scenario=scenario,
                         method="DE", workers=parallel_workers,
                         adaptive=True):
            report = runner.run()
        outcome.replans = runner.replans
        outcome.ops_moved = runner.ops_moved
    else:
        if parallel_workers > 1:
            executor: ProgramExecutor | ParallelProgramExecutor = \
                ParallelProgramExecutor(
                    exec_source, exec_target, wire,
                    workers=parallel_workers,
                    batch_rows=batch_rows,
                    retry=retry_policy, journal=journal,
                    tracer=tracer, metrics=metrics,
                    columnar=columnar, join_strategy=join_strategy,
                )
        else:
            executor = ProgramExecutor(
                exec_source, exec_target, wire, batch_rows=batch_rows,
                retry=retry_policy, journal=journal,
                tracer=tracer, metrics=metrics,
                columnar=columnar, join_strategy=join_strategy,
            )
        with tracer.span("execute program", "step", scenario=scenario,
                         method="DE", workers=parallel_workers):
            report = executor.run(program, placement)
    outcome.report = report
    outcome.wall_seconds = report.wall_seconds
    outcome.peak_resident_rows = report.peak_resident_rows
    outcome.peak_resident_bytes = report.peak_resident_bytes
    outcome.retries = report.retries
    outcome.redelivered_batches = report.redelivered_batches
    outcome.retries_by_edge = dict(report.retries_by_edge)
    outcome.redelivered_by_edge = dict(report.redelivered_by_edge)
    outcome.resume_count = report.resume_count
    if isinstance(wire, FaultyChannel):
        outcome.faults_injected = wire.stats.injected
    load_seconds = report.seconds_for_kind("write")
    outcome.steps["source_processing"] = report.source_seconds
    outcome.steps["communication"] = (
        channel.total_seconds - comm_seconds_start
    )
    outcome.steps["target_processing"] = (
        report.target_seconds - load_seconds
    )
    outcome.steps["loading"] = load_seconds
    started = time.perf_counter()
    outcome.indexes_built = target.build_indexes()
    indexing = time.perf_counter() - started
    outcome.steps["indexing"] = indexing
    tracer.record("indexing", "step", start=started, seconds=indexing,
                  indexes=outcome.indexes_built)
    outcome.comm_bytes = channel.total_bytes - comm_bytes_start
    outcome.rows_written = report.rows_written
    if journal is not None and sync_version is not None:
        # Only reached on success: a killed run records no sync, so
        # the next delta re-covers everything since the last one that
        # actually finished.
        journal.record_sync(sync_version)
    return outcome


def run_publish_and_map(
    source: RelationalEndpoint,
    target: RelationalEndpoint,
    channel: Transport,
    scenario: str = "exchange",
    retry_policy: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    tracer: Tracer | None = None,
) -> ExchangeOutcome:
    """Run publish&map (Section 5.1 steps 1–6).

    ``fault_plan``/``retry_policy`` behave as in
    :func:`run_optimized_exchange`; PM ships one monolithic document,
    so a drop or corruption re-sends the *whole* document — the
    robustness asymmetry against DE's per-fragment (or per-batch)
    retries.
    """
    tracer = tracer or NULL_TRACER
    outcome = ExchangeOutcome(scenario, "PM")
    channel.reset()
    wire = (
        FaultyChannel(channel, fault_plan, tracer=tracer)
        if fault_plan is not None else channel
    )
    stats = RobustnessStats()
    shipper = (
        ReliableChannel(wire, retry_policy, stats, tracer=tracer)
        if retry_policy is not None else wire
    )

    with tracer.span("publish", "step", scenario=scenario,
                     method="PM"):
        started = time.perf_counter()
        report = publish_document(source.db, source.mapper)
        outcome.steps["source_processing"] = \
            time.perf_counter() - started

    with tracer.span("ship document", "step",
                     bytes=len(report.document)):
        shipper.ship_document(report.document)
    # Totals rather than the receipt: failed attempts burned the wire
    # too, and PM pays them at whole-document size.
    outcome.steps["communication"] = channel.total_seconds
    outcome.comm_bytes = channel.total_bytes
    outcome.retries = stats.retries
    if isinstance(wire, FaultyChannel):
        outcome.faults_injected = wire.stats.injected

    with tracer.span("shred", "step"):
        started = time.perf_counter()
        shredded = shred_document(report.document, target.mapper)
        outcome.steps["shredding"] = time.perf_counter() - started

    with tracer.span("load", "step"):
        started = time.perf_counter()
        outcome.rows_written = shredded.load_into(target.db)
        outcome.steps["loading"] = time.perf_counter() - started

    with tracer.span("indexing", "step"):
        started = time.perf_counter()
        outcome.indexes_built = target.build_indexes()
        outcome.steps["indexing"] = time.perf_counter() - started
    return outcome
