"""System endpoints: the source and target of an exchange.

An endpoint owns a store (relational database, directory, or plain
memory), implements ``Scan``/``Write`` over it (Defs. 3.6/3.9 — each
system its own way, hidden behind the WSDL interface), and answers cost
probes (Figure 2, step 3) by pricing operations against its statistics
and machine profile with the same ``operation_work`` units the
middleware's models use.
"""

from __future__ import annotations

import abc
import threading

from repro.errors import EndpointError
from repro.core.columnar import ColumnBatch
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import (
    INFINITE_COST,
    MachineProfile,
    operation_work,
)
from repro.core.delta import VersionLog
from repro.core.fragment import Fragment
from repro.core.fragmentation import Fragmentation
from repro.core.instance import ElementData, FragmentInstance, FragmentRow
from repro.core.ops.base import Operation
from repro.core.stream import DEFAULT_BATCH_ROWS, FragmentStream
from repro.core.ops.combine import Combine
from repro.core.ops.split import Split
from repro.core.ops.write import Write
from repro.directory.store import DirectoryStore, ObjectClass
from repro.relational.engine import Database
from repro.relational.frag_store import FragmentRelationMapper


class SystemEndpoint(abc.ABC):
    """Base class: store-backed Scan/Write plus the cost interface."""

    #: Whether :meth:`write_stream` stores each batch durably as it
    #: arrives.  Endpoints that do (the relational one bulk-loads per
    #: batch) can resume a partially-stored write from the exchange
    #: journal's per-batch acknowledgements; endpoints that
    #: materialize and replace the whole instance at end of stream
    #: cannot, and resume at whole-write granularity only.
    incremental_writes = False

    def __init__(self, name: str,
                 machine: MachineProfile | None = None) -> None:
        self.name = name
        self.machine = machine or MachineProfile(name)
        self._statistics: StatisticsCatalog | None = None
        #: Version log of the stored data; ``None`` until
        #: :meth:`enable_versioning` arms delta exchange.
        self.versions: VersionLog | None = None
        # Serializes whole-store access for endpoints without finer
        # locking; the parallel executor calls scan/write concurrently.
        self._store_lock = threading.RLock()

    # -- data interface (used by the program executor) ---------------------

    @abc.abstractmethod
    def scan(self, fragment: Fragment) -> FragmentInstance:
        """Produce the stored instance of ``fragment``."""

    @abc.abstractmethod
    def write(self, fragment: Fragment,
              instance: FragmentInstance) -> None:
        """Store ``instance``."""

    # -- streaming data interface (the batch dataplane) --------------------

    def scan_stream(self, fragment: Fragment,
                    batch_rows: int = DEFAULT_BATCH_ROWS
                    ) -> FragmentStream:
        """Produce the stored feed of ``fragment`` as a batch stream.

        The default re-batches the materialized :meth:`scan` result;
        endpoints that can produce incrementally (the relational one
        streams straight off its table scan) override this to bound
        memory for real.
        """
        return FragmentStream.from_instance(
            self.scan(fragment), batch_rows
        )

    def write_stream(self, fragment: Fragment,
                     stream: FragmentStream) -> None:
        """Store a batch stream.

        The default materializes and delegates to :meth:`write`;
        endpoints with incremental stores (the relational one
        bulk-loads each batch) override this so the full instance is
        never resident.
        """
        self.write(fragment, stream.materialize())

    def scan_stream_columnar(self, fragment: Fragment,
                             batch_rows: int = DEFAULT_BATCH_ROWS
                             ) -> "FragmentStream":
        """Produce the stored feed as :class:`~repro.core.columnar.
        ColumnBatch` batches.

        The default flattens the row-batch stream batch by batch;
        endpoints whose store is already tabular (the relational one)
        override this to skip tree building entirely.
        """
        row_stream = self.scan_stream(fragment, batch_rows)
        return FragmentStream(
            fragment,
            (ColumnBatch.from_row_batch(batch)
             for batch in row_stream),
        )

    # -- versioned mutation (delta exchange) --------------------------------

    def stored_fragments(self) -> list[Fragment]:
        """Fragments this endpoint currently stores (the mutation and
        versioning surface iterates them; default: none known)."""
        return []

    def delete_rows(self, fragment: Fragment,
                    eids: "set[int] | list[int]") -> int:
        """Delete stored rows of ``fragment`` by root eid; returns how
        many were removed.

        Raises:
            EndpointError: when the store cannot delete rows.
        """
        raise EndpointError(
            f"endpoint {self.name!r} does not support row deletion"
        )

    def merge_rows(self, fragment: Fragment,
                   rows: list[FragmentRow]) -> int:
        """Upsert ``rows`` by eid: replace stored rows with matching
        ids, append the rest.  The write discipline of a delta merge.

        Raises:
            EndpointError: when the store cannot merge rows.
        """
        raise EndpointError(
            f"endpoint {self.name!r} does not support row merging"
        )

    def enable_versioning(self) -> VersionLog:
        """Arm delta exchange: start a :class:`~repro.core.delta.
        VersionLog` and stamp the current contents at version 1."""
        with self._store_lock:
            log = VersionLog()
            log.bump()
            for fragment in self.stored_fragments():
                for row in self.scan(fragment).rows:
                    log.stamp(fragment.name, row.eid)
            self.versions = log
            return log

    def scan_versioned(self, fragment: Fragment) -> FragmentInstance:
        """:meth:`scan`, with each row stamped with its stored version
        (0 when versioning is not enabled)."""
        instance = self.scan(fragment)
        if self.versions is not None:
            self.versions.stamp_rows(fragment.name, instance.rows)
        return instance

    def apply_changes(self, fragment: Fragment,
                      upserts: "list | tuple" = (),
                      deletes: "set[int] | list[int] | tuple" = ()
                      ) -> int:
        """Mutate the stored instance of ``fragment`` under one new
        version: ``deletes`` removes rows by eid (cascading to rows in
        other fragments whose PARENT pointed inside a removed row, each
        tombstoned), ``upserts`` merges rows in and stamps them.
        Returns the new version.

        Raises:
            EndpointError: if versioning is not enabled.
        """
        if self.versions is None:
            raise EndpointError(
                f"endpoint {self.name!r} has no version log; call "
                "enable_versioning() before apply_changes()"
            )
        upsert_rows = list(upserts)
        doomed = set(deletes)
        with self._store_lock:
            version = self.versions.bump()
            if doomed:
                self._delete_cascade(fragment, doomed, version)
            if upsert_rows:
                self.merge_rows(fragment, upsert_rows)
                for row in upsert_rows:
                    row.version = self.versions.stamp(
                        fragment.name, row.eid, version
                    )
            return version

    def _delete_cascade(self, fragment: Fragment, eids: set[int],
                        version: int) -> None:
        """Delete rows and, recursively, the rows of other fragments
        anchored inside them (a deleted subtree takes its cross-
        fragment children with it; every removed row is tombstoned)."""
        assert self.versions is not None
        removed = [
            row for row in self.scan(fragment).rows if row.eid in eids
        ]
        gone_occurrences: set[int] = set()
        for row in removed:
            self.versions.record_delete(fragment.name, row, version)
            gone_occurrences.update(
                node.eid for node in row.data.iter_all()
            )
        self.delete_rows(fragment, {row.eid for row in removed})
        if not gone_occurrences:
            return
        for other in self.stored_fragments():
            if other.name == fragment.name:
                continue
            dependents = {
                row.eid for row in self.scan(other).rows
                if row.parent in gone_occurrences
            }
            if dependents:
                self._delete_cascade(other, dependents, version)

    # -- statistics ----------------------------------------------------------

    def use_statistics(self, statistics: StatisticsCatalog) -> None:
        """Adopt a statistics catalog (the agency shares the source's
        statistics with the target during negotiation)."""
        self._statistics = statistics

    def statistics(self) -> StatisticsCatalog:
        """The catalog used to answer cost probes.

        Raises:
            EndpointError: if no statistics are available yet.
        """
        if self._statistics is None:
            raise EndpointError(
                f"endpoint {self.name!r} has no statistics; call "
                "use_statistics() or refresh_statistics() first"
            )
        return self._statistics

    # -- cost interface (Figure 2, step 3) ---------------------------------------

    def estimate_cost(self, op: Operation) -> float:
        """Cost of executing ``op`` here (the probe interface)."""
        if isinstance(op, Combine) and not self.machine.can_combine:
            return INFINITE_COST
        if isinstance(op, Split) and not self.machine.can_split:
            return INFINITE_COST
        work = operation_work(op, self.statistics())
        if isinstance(op, Write):
            work *= self.machine.index_factor
        return work / self.machine.speed

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class RelationalEndpoint(SystemEndpoint):
    """An endpoint backed by the relational engine (the paper's MySQL
    systems), storing one registered fragmentation."""

    incremental_writes = True

    def __init__(self, name: str, fragmentation: Fragmentation,
                 machine: MachineProfile | None = None,
                 db: Database | None = None) -> None:
        super().__init__(name, machine)
        self.fragmentation = fragmentation
        self.db = db or Database(name)
        self.mapper = FragmentRelationMapper(fragmentation)
        for fragment in fragmentation:
            if not self.db.has_table(self.mapper.table_name(fragment)):
                self.db.create_table(
                    self.mapper.layout_for(fragment).table_schema()
                )

    # -- data ----------------------------------------------------------------------

    def load_document(self, document: ElementData) -> int:
        """Initial population from an in-memory document."""
        loaded = self.mapper.load_document(self.db, document)
        self.refresh_statistics()
        return loaded

    def scan(self, fragment: Fragment) -> FragmentInstance:
        return self.mapper.scan_fragment(self.db, fragment)

    def write(self, fragment: Fragment,
              instance: FragmentInstance) -> None:
        self.mapper.load_instance(self.db, fragment, instance)

    def scan_stream(self, fragment: Fragment,
                    batch_rows: int = DEFAULT_BATCH_ROWS
                    ) -> FragmentStream:
        """Stream the fragment straight off the table scan: occurrence
        trees are built lazily, one batch at a time."""
        return FragmentStream(
            fragment,
            self.mapper.scan_fragment_batches(
                self.db, fragment, batch_rows
            ),
        )

    def scan_stream_columnar(self, fragment: Fragment,
                             batch_rows: int = DEFAULT_BATCH_ROWS
                             ) -> FragmentStream:
        """Stream the fragment as columnar batches sliced straight off
        the sorted table feed — no occurrence trees anywhere."""
        return FragmentStream(
            fragment,
            self.mapper.scan_fragment_columns(
                self.db, fragment, batch_rows
            ),
        )

    def write_stream(self, fragment: Fragment,
                     stream: FragmentStream) -> None:
        """Bulk-load each arriving batch into the fragment's table.
        Columnar batches load without flattening any trees; row
        batches flatten per row as before."""
        for batch in stream:
            if isinstance(batch, ColumnBatch):
                self.mapper.load_columns(self.db, fragment, batch)
            else:
                self.mapper.load_rows(self.db, fragment, batch.rows)

    def stored_fragments(self) -> list[Fragment]:
        return list(self.fragmentation)

    def delete_rows(self, fragment: Fragment,
                    eids: "set[int] | list[int]") -> int:
        return self.mapper.delete_rows(self.db, fragment, eids)

    def merge_rows(self, fragment: Fragment,
                   rows: list[FragmentRow]) -> int:
        """Upsert into the fragment table: delete matching ids, then
        bulk-load the replacement rows (the table scan's ``ORDER BY
        parent, id`` restores feed order regardless of heap order)."""
        self.mapper.delete_rows(
            self.db, fragment, [row.eid for row in rows]
        )
        self.mapper.load_rows(self.db, fragment, rows)
        return len(rows)

    def build_indexes(self) -> int:
        """Create/refresh the standard indexes (the separately timed
        step of Table 4); returns indexes built."""
        return self.mapper.create_indexes(self.db)

    def reset_storage(self) -> None:
        """Empty all fragment tables (fresh target before a run)."""
        self.mapper.truncate_all(self.db)

    def total_rows(self) -> int:
        """Rows across the fragment tables."""
        return self.db.total_rows()

    # -- statistics --------------------------------------------------------------------

    def refresh_statistics(self) -> StatisticsCatalog:
        """Measure statistics from the stored data."""
        catalog = statistics_from_store(self.db, self.mapper)
        self.use_statistics(catalog)
        return catalog


class InMemoryEndpoint(SystemEndpoint):
    """A minimal endpoint holding fragment instances in a dict (tests,
    and systems that are pure producers/consumers of feeds)."""

    def __init__(self, name: str,
                 machine: MachineProfile | None = None) -> None:
        super().__init__(name, machine)
        self.store: dict[str, FragmentInstance] = {}

    def put(self, instance: FragmentInstance) -> None:
        """Seed the store with an instance (keyed by fragment name)."""
        with self._store_lock:
            self.store[instance.fragment.name] = instance

    def scan(self, fragment: Fragment) -> FragmentInstance:
        with self._store_lock:
            try:
                stored = self.store[fragment.name]
            except KeyError as exc:
                raise EndpointError(
                    f"{self.name!r} stores no fragment {fragment.name!r}"
                ) from exc
            return stored.copy()

    def scan_stream(self, fragment: Fragment,
                    batch_rows: int = DEFAULT_BATCH_ROWS
                    ) -> FragmentStream:
        """Re-batch the stored instance, deep-copying rows lazily so
        only one batch of copies is resident at a time (the consumer
        may mutate rows, as :meth:`scan` callers may)."""
        with self._store_lock:
            try:
                stored = self.store[fragment.name]
            except KeyError as exc:
                raise EndpointError(
                    f"{self.name!r} stores no fragment {fragment.name!r}"
                ) from exc
            snapshot = list(stored.rows)
        return FragmentStream.from_rows(
            fragment,
            (FragmentRow(row.data.copy(), row.parent)
             for row in snapshot),
            batch_rows,
        )

    def write(self, fragment: Fragment,
              instance: FragmentInstance) -> None:
        with self._store_lock:
            self.store[fragment.name] = instance

    def write_stream(self, fragment: Fragment,
                     stream: FragmentStream) -> None:
        instance = stream.materialize()
        with self._store_lock:
            self.store[fragment.name] = instance

    def stored_fragments(self) -> list[Fragment]:
        with self._store_lock:
            return [
                instance.fragment for instance in self.store.values()
            ]

    def delete_rows(self, fragment: Fragment,
                    eids: "set[int] | list[int]") -> int:
        doomed = set(eids)
        with self._store_lock:
            stored = self.store.get(fragment.name)
            if stored is None:
                return 0
            before = len(stored.rows)
            stored.rows = [
                row for row in stored.rows if row.eid not in doomed
            ]
            return before - len(stored.rows)

    def merge_rows(self, fragment: Fragment,
                   rows: list[FragmentRow]) -> int:
        replaced = {row.eid for row in rows}
        with self._store_lock:
            stored = self.store.get(fragment.name)
            if stored is None:
                stored = self.store[fragment.name] = \
                    FragmentInstance(fragment)
            stored.rows = [
                row for row in stored.rows
                if row.eid not in replaced
            ]
            stored.rows.extend(rows)
            # Keep the canonical sorted-feed order, so a delta-merged
            # store reads back identical to a full rewrite.
            stored.sort()
            return len(rows)


class DirectoryEndpoint(SystemEndpoint):
    """An endpoint backed by the LDAP-like directory (the motivating
    example's provisioning system).

    Each fragment maps to an object class named ``<fragment>_T`` whose
    attributes are the fragment's leaf elements and XML attributes;
    each written row becomes an entry under its parent row's entry
    (PARENT references resolve through a shared eid → DN map).
    """

    def __init__(self, name: str, fragmentation: Fragmentation,
                 machine: MachineProfile | None = None,
                 store: DirectoryStore | None = None) -> None:
        super().__init__(name, machine)
        self.fragmentation = fragmentation
        self.store = store or DirectoryStore(name)
        self._dn_by_eid: dict[int, tuple[int, ...]] = {}
        self._written: dict[str, FragmentInstance] = {}
        self._materialized = False
        for fragment in fragmentation:
            leaves = tuple(
                leaf.lower() for leaf in fragment.leaf_elements()
            )
            self.store.define_class(
                ObjectClass(self._class_name(fragment), leaves)
            )

    @staticmethod
    def _class_name(fragment: Fragment) -> str:
        return f"{fragment.root_name.upper()}_T"

    def scan(self, fragment: Fragment) -> FragmentInstance:
        with self._store_lock:
            try:
                return self._written[fragment.name].copy()
            except KeyError as exc:
                raise EndpointError(
                    f"directory {self.name!r} holds no fragment "
                    f"{fragment.name!r}"
                ) from exc

    def write(self, fragment: Fragment,
              instance: FragmentInstance) -> None:
        """Accept a fragment feed.

        Entries are materialized lazily (:meth:`materialize`): Writes
        arrive in whatever order the program executes them, and a child
        fragment can land before the fragment holding its parent
        entries — the directory tree can only be built parent-first.
        """
        with self._store_lock:
            self._written[fragment.name] = instance
            self._materialized = False

    def write_stream(self, fragment: Fragment,
                     stream: FragmentStream) -> None:
        """Accept a fragment feed batch by batch (same deferred
        materialization as :meth:`write`; the directory tree itself is
        only built parent-first in :meth:`materialize`)."""
        instance = stream.materialize()
        with self._store_lock:
            self._written[fragment.name] = instance
            self._materialized = False

    def stored_fragments(self) -> list[Fragment]:
        with self._store_lock:
            return [
                instance.fragment
                for instance in self._written.values()
            ]

    def delete_rows(self, fragment: Fragment,
                    eids: "set[int] | list[int]") -> int:
        doomed = set(eids)
        with self._store_lock:
            stored = self._written.get(fragment.name)
            if stored is None:
                return 0
            before = len(stored.rows)
            stored.rows = [
                row for row in stored.rows if row.eid not in doomed
            ]
            self._materialized = False
            return before - len(stored.rows)

    def merge_rows(self, fragment: Fragment,
                   rows: list[FragmentRow]) -> int:
        replaced = {row.eid for row in rows}
        with self._store_lock:
            stored = self._written.get(fragment.name)
            if stored is None:
                stored = self._written[fragment.name] = \
                    FragmentInstance(fragment)
            stored.rows = [
                row for row in stored.rows
                if row.eid not in replaced
            ]
            stored.rows.extend(rows)
            stored.sort()
            self._materialized = False
            return len(rows)

    def materialize(self) -> DirectoryStore:
        """(Re)build the directory tree from every written fragment.

        Rows are inserted parents-before-children across fragments;
        nested element ids are registered so child fragments anchored
        at inner elements resolve too.

        Raises:
            EndpointError: if rows reference parents that were never
                written (orphans).
        """
        if self._materialized:
            return self.store
        self.store = DirectoryStore(self.name)
        for fragment in self.fragmentation:
            leaves = tuple(
                leaf.lower() for leaf in fragment.leaf_elements()
            )
            self.store.define_class(
                ObjectClass(self._class_name(fragment), leaves)
            )
        self._dn_by_eid = {}
        pending = [
            (self._class_name(instance.fragment), row)
            for instance in self._written.values()
            for row in instance.rows
        ]
        while pending:
            progressed = False
            deferred = []
            for class_name, row in pending:
                if row.parent is not None \
                        and row.parent not in self._dn_by_eid:
                    deferred.append((class_name, row))
                    continue
                attrs: dict[str, str] = {}
                for node in row.data.iter_all():
                    if node.text:
                        attrs[node.name.lower()] = node.text
                    for attribute, value in node.attrs.items():
                        attrs[
                            f"{node.name.lower()}_{attribute.lower()}"
                        ] = value
                parent_dn = (
                    self._dn_by_eid[row.parent]
                    if row.parent is not None else ()
                )
                dn = self.store.add_entry(parent_dn, class_name, attrs)
                for node in row.data.iter_all():
                    self._dn_by_eid[node.eid] = dn
                progressed = True
            if not progressed:
                raise EndpointError(
                    f"directory {self.name!r}: {len(deferred)} rows "
                    "reference parents that were never written"
                )
            pending = deferred
        self._materialized = True
        return self.store


def statistics_from_store(db: Database,
                          mapper: FragmentRelationMapper
                          ) -> StatisticsCatalog:
    """Measure per-element occurrence counts and widths from the
    fragment tables (what a live source system answers probes with)."""
    schema = mapper.fragmentation.schema
    counts: dict[str, float] = {
        name: 0.0 for name in schema.element_names()
    }
    value_bytes: dict[str, float] = {
        name: 0.0 for name in schema.element_names()
    }
    attr_tag_bytes: dict[str, float] = {
        name: 0.0 for name in schema.element_names()
    }
    for layout in mapper.layouts.values():
        table = db.table(layout.table_name)
        positions = {
            spec.name: index
            for index, spec in enumerate(layout.specs)
        }
        for row in table.scan():
            for spec in layout.specs:
                if spec.element is None:
                    continue
                value = row[positions[spec.name]]
                if spec.role in ("id", "eid") and value is not None:
                    counts[spec.element] += 1
                elif spec.role in ("text", "attr") and value is not None:
                    value_bytes[spec.element] += len(str(value))
                    if spec.role == "attr":
                        attr_tag_bytes[spec.element] += (
                            len(spec.attribute or "") + 4
                        )
    widths = {}
    value_widths = {}
    for name in counts:
        tag = 2 * len(name) + 5
        value = 0.0
        if counts[name]:
            value = value_bytes[name] / counts[name]
            tag += attr_tag_bytes[name] / counts[name]
        widths[name] = tag + value
        value_widths[name] = value
    return StatisticsCatalog(schema, counts, widths, value_widths)
