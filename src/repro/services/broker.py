"""Negotiated-plan cache and multi-session exchange broker.

The paper's agency derives one transfer program per source/target pair
and re-optimizes from scratch on every exchange (Section 4,
Algorithm 1) — fine for a one-shot negotiation, wasteful when the same
fragmentation pair exchanges documents thousands of times.  Mediation
architectures over XML sources amortize mediation plans across
requests; this module does the same for negotiated exchange plans:

* :class:`PlanCache` keys optimized ``TransferProgram`` + ``Placement``
  pairs on a deterministic :class:`PlanFingerprint` of (schema, source
  fragmentation, target fragmentation, probe cost signature, optimizer
  kind, formula-1 weights, executor knobs).  Entries store the plan
  through the :mod:`repro.core.program.serialize` round-trip — loads
  re-validate structure and placement legality, and every session gets
  its own program object.  Eviction is LRU; hit/miss/evict/invalidate
  counts feed a :class:`~repro.obs.metrics.MetricsRegistry`.  When a
  :class:`~repro.obs.drift.DriftReport` shows the substrate has drifted
  past a threshold, :meth:`PlanCache.note_drift` drops the entries
  whose cost signature the report discredits.

* :class:`ExchangeBroker` runs N concurrent exchange sessions against
  one :class:`~repro.services.agency.DiscoveryAgency` on a bounded
  worker budget with simple admission control (reject — or block — at
  ``max_pending`` in-flight sessions).  Each session negotiates through
  the shared plan cache (the first pays ``optimizer_seconds``, cache
  hits do not) and executes on its *own* channel — the shared-channel
  ``reset()`` hazard cannot arise — and its own target store.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.errors import BrokerError, BrokerSaturatedError
from repro.core.cost.model import CostWeights
from repro.core.cost.probe import CostProbe
from repro.core.fragmentation import Fragmentation
from repro.core.mapping import Mapping as FragmentMapping
from repro.core.mapping import derive_mapping
from repro.core.ops.base import Location
from repro.core.optimizer.placement import resolve_weights
from repro.core.program.builder import build_transfer_program
from repro.core.program.dag import Placement, TransferProgram
from repro.core.program.serialize import (
    program_from_json,
    program_to_json,
)
from repro.net.transport import SimulatedChannel, Transport
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.schema.model import SchemaTree
from repro.services.endpoint import SystemEndpoint
from repro.services.exchange import (
    ExchangeOutcome,
    run_optimized_exchange,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.adapt.executor import AdaptiveConfig
    from repro.adapt.reoptimizer import ReOptimizer
    from repro.adapt.stats import StatisticsStore
    from repro.core.program.journal import ExchangeJournal
    from repro.net.faults import FaultPlan, RetryPolicy
    from repro.obs.drift import DriftReport
    from repro.services.agency import DiscoveryAgency, ExchangePlan

__all__ = [
    "PlanFingerprint",
    "CachedPlan",
    "PlanCache",
    "plan_fingerprint",
    "ExchangeSession",
    "ExchangeBroker",
]


# -- fingerprinting ----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PlanFingerprint:
    """A deterministic cache key for one negotiation setup.

    ``digest`` identifies the full setup; ``cost_signature`` is the
    probe-derived component alone, the granularity at which drift
    invalidation operates (a drifted substrate discredits every plan
    optimized under that signature, whatever the optimizer knobs).
    """

    digest: str
    cost_signature: str


def _fragmentation_token(fragmentation: Fragmentation) -> str:
    """Canonical text form: fragments by name with sorted elements."""
    fragments = ";".join(
        f"{fragment.name}={','.join(sorted(fragment.elements))}"
        for fragment in sorted(
            fragmentation.fragments, key=lambda f: f.name
        )
    )
    return f"{fragmentation.name}:{fragments}"


def _cost_signature(mapping: FragmentMapping,
                    probe: CostProbe) -> str:
    """Hash the probe's answers over the canonical transfer program.

    The probe is opaque (a cost model, or two live endpoints behind a
    channel), so the signature samples it: ``comp_cost`` of every
    canonical-program operation at both locations plus ``comm_cost`` of
    every fragment an edge carries, in topological order.  Two probes
    that answer identically — the only thing the optimizers can see —
    get the same signature.
    """
    program = build_transfer_program(mapping)
    readings: list[str] = []
    for node in program.topological_order():
        source = probe.comp_cost(node, Location.SOURCE)
        target = probe.comp_cost(node, Location.TARGET)
        readings.append(f"{node.label()}|{source:.9g}|{target:.9g}")
    seen: set[str] = set()
    for edge in program.edges:
        name = edge.fragment.name
        if name in seen:
            continue
        seen.add(name)
        readings.append(f"{name}~{probe.comm_cost(edge.fragment):.9g}")
    return hashlib.sha256(
        "\n".join(readings).encode("utf-8")
    ).hexdigest()


def plan_fingerprint(source: Fragmentation, target: Fragmentation,
                     probe: CostProbe, optimizer: str,
                     weights: CostWeights | None = None,
                     knobs: Mapping[str, object] | None = None,
                     mapping: FragmentMapping | None = None
                     ) -> PlanFingerprint:
    """Fingerprint one negotiation setup.

    ``knobs`` carries whatever else the plan's consumer keys on (the
    agency passes ``order_limit``; the broker adds its executor knobs);
    it must be JSON-serializable.  ``mapping`` avoids re-deriving when
    the caller already holds the source → target mapping.
    """
    if mapping is None:
        mapping = derive_mapping(source, target)
    resolved = resolve_weights(probe, weights)
    signature = _cost_signature(mapping, probe)
    parts = "\n".join([
        source.schema.fingerprint(),
        _fragmentation_token(source),
        _fragmentation_token(target),
        signature,
        f"optimizer={optimizer}",
        f"weights={resolved.computation:.9g}/{resolved.communication:.9g}",
        "knobs=" + json.dumps(
            dict(knobs or {}), sort_keys=True, default=str
        ),
    ])
    digest = hashlib.sha256(parts.encode("utf-8")).hexdigest()
    return PlanFingerprint(digest, signature)


# -- the cache ---------------------------------------------------------------------


@dataclass(slots=True)
class CachedPlan:
    """One cached negotiation result.

    ``payload`` is the serialized program + placement (the
    :mod:`repro.core.program.serialize` JSON form); ``optimizer_seconds``
    is what the cold negotiation paid, kept so amortization reports can
    charge it to the first exchange only.
    """

    payload: str
    estimated_cost: float
    optimizer: str
    optimizer_seconds: float
    cost_signature: str
    hits: int = 0


class PlanCache:
    """LRU cache of negotiated exchange plans, keyed by fingerprint.

    Thread-safe: the broker's sessions share one cache.  Counters are
    kept locally (``hits``/``misses``/``evictions``/``invalidations``)
    and mirrored into ``metrics`` as ``plancache.*`` counters when a
    registry is supplied.
    """

    def __init__(self, capacity: int = 128,
                 metrics: MetricsRegistry | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.invalidations_explicit = 0
        self.invalidations_drift = 0
        self.replacements = 0
        self._entries: OrderedDict[str, CachedPlan] = OrderedDict()
        self._lock = threading.Lock()

    def _count(self, event: str, amount: int = 1) -> None:
        setattr(self, event, getattr(self, event) + amount)
        if self.metrics is not None:
            self.metrics.counter(f"plancache.{event}").add(amount)

    def _count_invalidations(self, reason: str, amount: int) -> None:
        self._count("invalidations", amount)
        attr = f"invalidations_{reason}"
        setattr(self, attr, getattr(self, attr) + amount)
        if self.metrics is not None:
            self.metrics.counter(
                f"plancache.invalidations.{reason}"
            ).add(amount)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    fingerprint = staticmethod(plan_fingerprint)

    def get(self, fingerprint: PlanFingerprint) -> CachedPlan | None:
        """The cached entry for ``fingerprint`` (LRU-touched), else
        ``None``.  Counts a hit or a miss either way."""
        with self._lock:
            entry = self._entries.get(fingerprint.digest)
            if entry is None:
                self._count("misses")
                return None
            self._entries.move_to_end(fingerprint.digest)
            entry.hits += 1
            self._count("hits")
            return entry

    def load(self, fingerprint: PlanFingerprint, schema: SchemaTree
             ) -> tuple[TransferProgram, Placement, CachedPlan] | None:
        """Deserialize a cached plan against the agreed ``schema``.

        Every load round-trips through the serializer, so the caller
        gets a *fresh* program object (concurrent sessions never share
        one) and the placement is re-validated on the way in.
        """
        entry = self.get(fingerprint)
        if entry is None:
            return None
        program, placement = program_from_json(entry.payload, schema)
        assert placement is not None  # put() always stores locations
        return program, placement, entry

    def put(self, fingerprint: PlanFingerprint,
            program: TransferProgram, placement: Placement, *,
            estimated_cost: float, optimizer: str,
            optimizer_seconds: float) -> CachedPlan:
        """Store one optimized plan, evicting the LRU tail beyond
        ``capacity``."""
        entry = CachedPlan(
            payload=program_to_json(program, placement),
            estimated_cost=estimated_cost,
            optimizer=optimizer,
            optimizer_seconds=optimizer_seconds,
            cost_signature=fingerprint.cost_signature,
        )
        with self._lock:
            self._entries[fingerprint.digest] = entry
            self._entries.move_to_end(fingerprint.digest)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._count("evictions")
        return entry

    def replace(self, digest: str, program: TransferProgram,
                placement: Placement, *, estimated_cost: float,
                optimizer: str | None = None,
                optimizer_seconds: float | None = None) -> bool:
        """Atomically swap the plan stored under ``digest`` in place.

        This is the re-optimizer's landing pad: the entry keeps its
        key, cost signature, hit count and LRU position — only the
        serialized plan (and its estimated cost) changes, so sessions
        that were hitting the old plan seamlessly pick up the new one.
        Returns ``False`` when ``digest`` is no longer cached (evicted
        or invalidated while the re-optimization ran): a swap must
        never resurrect a dropped entry.
        """
        payload = program_to_json(program, placement)
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                return False
            entry.payload = payload
            entry.estimated_cost = estimated_cost
            if optimizer is not None:
                entry.optimizer = optimizer
            if optimizer_seconds is not None:
                entry.optimizer_seconds = optimizer_seconds
            self._count("replacements")
        return True

    def invalidate(self, digest: str | None = None,
                   cost_signature: str | None = None, *,
                   reason: str = "explicit") -> int:
        """Drop entries by exact digest, by cost signature, or — with
        neither — all of them.  Returns how many were dropped.

        ``reason`` splits the accounting: caller-initiated drops count
        ``plancache.invalidations.explicit``, drift-triggered drops
        (:meth:`note_drift`) count ``plancache.invalidations.drift`` —
        both still feed the ``invalidations`` total.
        """
        if reason not in ("explicit", "drift"):
            raise ValueError(
                f"reason must be 'explicit' or 'drift', got {reason!r}"
            )
        with self._lock:
            if digest is not None:
                dropped = 1 if self._entries.pop(digest, None) else 0
            elif cost_signature is not None:
                stale = [
                    key for key, entry in self._entries.items()
                    if entry.cost_signature == cost_signature
                ]
                for key in stale:
                    del self._entries[key]
                dropped = len(stale)
            else:
                dropped = len(self._entries)
                self._entries.clear()
            if dropped:
                self._count_invalidations(reason, dropped)
        return dropped

    @staticmethod
    def drift_factor(report: "DriftReport") -> float:
        """How far the report's per-kind measured/predicted ratios
        stray from *proportional* drift.

        A calibrated substrate that merely runs uniformly slower or
        faster scales every kind by the same factor and changes no
        optimization decision; what invalidates a plan is the *spread*
        between kinds (combines drifting against scans re-ranks
        placements).  The factor is ``max_ratio / min_ratio - 1`` over
        the report's kind ratios — 0.0 for uniform (or no) drift.
        """
        ratios = [
            ratio for ratio in report.kind_ratios().values()
            if ratio > 0
        ]
        if len(ratios) < 2:
            return 0.0
        return max(ratios) / min(ratios) - 1.0

    def note_drift(self, report: "DriftReport", *,
                   threshold: float = 0.5,
                   cost_signature: str | None = None) -> int:
        """Invalidate when ``report`` shows the substrate drifted.

        If :meth:`drift_factor` exceeds ``threshold``, entries carrying
        ``cost_signature`` are dropped (all entries when no signature
        is given — the report discredits the probe wholesale).  Returns
        the number of invalidated entries.
        """
        if self.drift_factor(report) <= threshold:
            return 0
        return self.invalidate(
            cost_signature=cost_signature, reason="drift"
        )

    def stats(self) -> dict[str, int]:
        """Counter snapshot plus current size."""
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "invalidations_explicit": self.invalidations_explicit,
            "invalidations_drift": self.invalidations_drift,
            "replacements": self.replacements,
        }


# -- the broker --------------------------------------------------------------------


@dataclass(slots=True)
class ExchangeSession:
    """The result of one brokered exchange session."""

    session_id: int
    source_name: str
    target_name: str
    outcome: ExchangeOutcome
    target: SystemEndpoint
    #: Whether negotiation was served from the plan cache.
    cached: bool
    #: Time spent negotiating (cache lookup included).
    negotiation_seconds: float
    #: What the optimizer itself cost this session (0.0 on cache hits).
    optimizer_seconds: float
    estimated_cost: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Per-session latency: negotiation plus the exchange run."""
        return self.negotiation_seconds + self.outcome.total_seconds


class ExchangeBroker:
    """Run concurrent exchange sessions over one discovery agency.

    Sessions share the agency (and its registered source endpoints)
    plus the optional :class:`PlanCache`; each session gets its *own*
    channel (from ``channel_factory``) and its own target endpoint
    (from the per-request factory), so no session ever resets or
    double-counts another's wire.  ``max_workers`` bounds concurrent
    execution; ``max_pending`` bounds admitted-but-unfinished sessions
    — :meth:`submit` beyond it either raises
    :class:`~repro.errors.BrokerSaturatedError` or, with ``wait=True``,
    blocks until capacity frees (what :meth:`run` does).
    """

    def __init__(self, agency: "DiscoveryAgency", *,
                 plan_cache: PlanCache | None = None,
                 max_workers: int = 4,
                 max_pending: int | None = None,
                 optimizer: str = "greedy",
                 probe: CostProbe | None = None,
                 weights: CostWeights | None = None,
                 order_limit: int | None = None,
                 channel_factory: Callable[[], Transport]
                 = SimulatedChannel,
                 parallel_workers: int = 1,
                 batch_rows: int | None = None,
                 columnar: bool = False,
                 delta: bool = False,
                 retry_policy: "RetryPolicy | None" = None,
                 fault_plan: "FaultPlan | None" = None,
                 stats_store: "StatisticsStore | None" = None,
                 reoptimizer: "ReOptimizer | None" = None,
                 adaptive: "AdaptiveConfig | None" = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        if max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if max_pending is None:
            max_pending = 2 * max_workers
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.agency = agency
        self.plan_cache = plan_cache
        self.max_workers = max_workers
        self.max_pending = max_pending
        self.optimizer = optimizer
        self.probe = probe
        self.weights = weights
        self.order_limit = order_limit
        self.channel_factory = channel_factory
        self.parallel_workers = parallel_workers
        self.batch_rows = batch_rows
        self.columnar = columnar
        #: Broker-wide default for delta sessions.  Deliberately NOT a
        #: plan knob: a delta run executes the same negotiated program
        #: over a filtered feed, so full and delta sessions share one
        #: cached plan.
        self.delta = delta
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.stats_store = stats_store
        self.reoptimizer = reoptimizer
        self.adaptive = adaptive
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self._next_session = 0
        self._inflight = 0
        self._closed = False
        self._capacity = threading.Condition()
        # Negotiation is serialized: the agency and plan cache are
        # shared, and a single negotiation is orders of magnitude
        # cheaper than the exchange it plans (cache hits doubly so).
        self._negotiation_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers,
            thread_name_prefix="exchange-broker",
        )

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Finish in-flight sessions and refuse new ones."""
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ExchangeBroker":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- admission control ----------------------------------------------------

    def _admit(self, wait: bool) -> None:
        with self._capacity:
            while self._inflight >= self.max_pending:
                if not wait:
                    self.rejected += 1
                    if self.metrics is not None:
                        self.metrics.counter("broker.rejected").add(1)
                    raise BrokerSaturatedError(
                        f"broker at max_pending={self.max_pending} "
                        f"in-flight sessions; retry later or submit "
                        f"with wait=True"
                    )
                self._capacity.wait()
            self._inflight += 1
            self.admitted += 1
        if self.metrics is not None:
            self.metrics.counter("broker.admitted").add(1)
            self.metrics.gauge("broker.inflight").add(1)

    def _release(self) -> None:
        with self._capacity:
            self._inflight -= 1
            self.completed += 1
            self._capacity.notify_all()
        if self.metrics is not None:
            self.metrics.counter("broker.completed").add(1)
            self.metrics.gauge("broker.inflight").add(-1)

    # -- sessions -------------------------------------------------------------

    def submit(self, source_name: str, target_name: str,
               target_factory: Callable[[], SystemEndpoint], *,
               scenario: str | None = None,
               wait: bool = False,
               fault_plan: "FaultPlan | None" = None,
               retry_policy: "RetryPolicy | None" = None,
               delta: bool | None = None,
               journal: "ExchangeJournal | None" = None,
               since: int | None = None
               ) -> "Future[ExchangeSession]":
        """Admit one session and schedule it on the worker pool.

        ``target_factory`` builds the session's private target endpoint
        (sessions concurrently bulk-loading one shared store would
        interleave their appends; a fresh store per requester is the
        multi-user serving model).  Returns a future resolving to the
        session's :class:`ExchangeSession`.

        ``fault_plan`` / ``retry_policy`` / ``delta`` override the
        broker-wide defaults for this session only — the
        scatter/gather coordinator uses this to degrade a single
        shard's channel while its siblings run clean.  A delta session
        reuses the cached plan of its full predecessor (delta is not
        part of the plan fingerprint) and runs it through the delta
        views; pass the exchange's ``journal`` so the session resolves
        ``since`` from (and records its sync into) the right
        high-water record, and note the ``target_factory`` must then
        return the *same* target the previous sync wrote.

        Raises:
            BrokerError: if the broker is closed or the source system
                has no registered endpoint.
            BrokerSaturatedError: when admission control rejects the
                session (``wait=False`` and ``max_pending`` reached).
        """
        if self._closed:
            raise BrokerError("broker is closed")
        source = self.agency.registration(source_name)
        if source.endpoint is None:
            raise BrokerError(
                f"system {source_name!r} registered no endpoint; the "
                "broker needs one to run exchanges"
            )
        self._admit(wait)
        with self._capacity:
            session_id = self._next_session
            self._next_session += 1
        try:
            return self._pool.submit(
                self._run_session, session_id, source_name,
                target_name, target_factory,
                scenario or f"{source_name}->{target_name}",
                fault_plan if fault_plan is not None
                else self.fault_plan,
                retry_policy if retry_policy is not None
                else self.retry_policy,
                self.delta if delta is None else delta,
                journal,
                since,
            )
        except BaseException:
            self._release()
            raise

    def run(self, requests: Sequence[tuple[
            str, str, Callable[[], SystemEndpoint]]]
            ) -> list[ExchangeSession]:
        """Run a batch of ``(source, target, target_factory)`` requests
        and return their sessions in request order, blocking at the
        admission gate instead of rejecting."""
        futures = [
            self.submit(source_name, target_name, target_factory,
                        wait=True)
            for source_name, target_name, target_factory in requests
        ]
        return [future.result() for future in futures]

    def _run_session(self, session_id: int, source_name: str,
                     target_name: str,
                     target_factory: Callable[[], SystemEndpoint],
                     scenario: str,
                     fault_plan: "FaultPlan | None" = None,
                     retry_policy: "RetryPolicy | None" = None,
                     delta: bool = False,
                     journal: "ExchangeJournal | None" = None,
                     since: int | None = None
                     ) -> ExchangeSession:
        try:
            with self.tracer.span("broker session", "broker",
                                  session=session_id,
                                  scenario=scenario):
                started = time.perf_counter()
                with self._negotiation_lock:
                    plan = self.agency.negotiate(
                        source_name, target_name,
                        optimizer=self.optimizer,
                        probe=self.probe,
                        weights=self.weights,
                        order_limit=self.order_limit,
                        plan_cache=self.plan_cache,
                        plan_knobs={
                            "parallel_workers": self.parallel_workers,
                            "batch_rows": self.batch_rows,
                            "columnar": self.columnar,
                        },
                        stats_store=self.stats_store,
                        metrics=self.metrics,
                    )
                negotiation_seconds = time.perf_counter() - started
                source = self.agency.registration(source_name)
                target = target_factory()
                outcome = run_optimized_exchange(
                    plan.annotate(), plan.placement,
                    source.endpoint, target,
                    self.channel_factory(),
                    scenario=scenario,
                    parallel_workers=self.parallel_workers,
                    batch_rows=self.batch_rows,
                    columnar=self.columnar,
                    retry_policy=retry_policy,
                    fault_plan=fault_plan,
                    journal=journal,
                    adaptive=self.adaptive,
                    tracer=self.tracer,
                    metrics=self.metrics,
                    delta=delta,
                    since=since,
                )
                self._learn(plan, source, outcome)
                return ExchangeSession(
                    session_id=session_id,
                    source_name=source_name,
                    target_name=target_name,
                    outcome=outcome,
                    target=target,
                    cached=plan.cached,
                    negotiation_seconds=negotiation_seconds,
                    optimizer_seconds=plan.optimizer_seconds,
                    estimated_cost=plan.estimated_cost,
                )
        finally:
            self._release()

    def _learn(self, plan: "ExchangePlan", source: object,
               outcome: ExchangeOutcome) -> None:
        """Post-exchange feedback: feed the run's measurements into the
        statistics store and hand drifted plans to the re-optimizer.

        Both hooks need the broker's pricing ``probe`` to compare
        against; endpoint-probed negotiations (``probe=None``) have no
        stable prediction to diff, so they learn nothing.
        """
        if self.probe is None or outcome.report is None:
            return
        if self.stats_store is None and self.reoptimizer is None:
            return
        from repro.adapt.stats import pair_key

        pair = pair_key(plan.source_name, plan.target_name)
        if self.stats_store is not None:
            statistics = None
            endpoint = getattr(source, "endpoint", None)
            if endpoint is not None:
                try:
                    statistics = endpoint.statistics()
                except Exception:
                    statistics = None
            drift = self.stats_store.observe_exchange(
                pair, plan.program, plan.placement, outcome.report,
                self.probe, statistics=statistics,
            )
        else:
            from repro.obs.drift import cost_drift_report

            drift = cost_drift_report(
                plan.program, plan.placement, outcome.report,
                self.probe,
            )
        if self.reoptimizer is not None and plan.fingerprint is not None:
            self.reoptimizer.note_drift(
                plan.fingerprint.digest, plan.program, plan.placement,
                self.probe, drift, weights=self.weights, pair=pair,
            )
