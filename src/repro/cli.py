"""Command-line interface: inspect programs, run exchanges, simulate.

Usage::

    python -m repro program MF LF            # print the negotiated program
    python -m repro exchange MF LF --size 25 # run DE vs publish&map
    python -m repro exchange MF MF --workers 4   # parallel DE execution
    python -m repro exchange MF MF --batch-rows 64  # streaming dataplane
    python -m repro exchange MF LF --columnar    # columnar dataplane
    python -m repro exchange MF LF --fault-plan drop=0.1,corrupt=0.05 \
        --retries 6                          # lossy channel, healed
    python -m repro exchange MF MF --trace run.trace \
        --trace-format chrome --metrics --drift  # observability
    python -m repro exchange MF LF --plan-cache --sessions 4 \
        # brokered concurrent sessions sharing one negotiated plan
    python -m repro exchange MF LF --transport tcp \
        # ship every byte over a real loopback socket
    python -m repro wsdl LF                  # the registration document
    python -m repro simulate --ratio 1/5     # a Table 5 configuration
    python -m repro serve --duration 60      # live SOAP/HTTP service tier
    python -m repro loadgen --sessions 100   # concurrent load harness

Workload selectors: ``MF``/``LF`` (the XMark fragmentations of
Section 5) and ``S``/``T``/``DOC`` (the Section 1.1 customer scenario;
``DOC`` is the whole-document default).
"""

from __future__ import annotations

import argparse
import itertools
import os
import random
import sys
import time
from typing import Sequence, TextIO

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel, MachineProfile
from repro.core.fragmentation import Fragmentation
from repro.core.mapping import derive_mapping
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.core.program.render import summary, to_dot, to_text
from repro.core.stream import DEFAULT_BATCH_ROWS
from repro.net.faults import FaultPlan, RetryPolicy
from repro.net.loadgen import run_load
from repro.net.server import ExchangeServer, FeedSink
from repro.net.transport import (
    SimulatedChannel,
    TcpTransport,
    Transport,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    cost_drift_report,
    report_from_trace,
    write_chrome_trace,
    write_jsonl_trace,
)
from repro.reporting.tables import format_table
from repro.schema.generator import balanced_schema
from repro.services.agency import DiscoveryAgency
from repro.services.broker import ExchangeBroker, PlanCache
from repro.services.endpoint import RelationalEndpoint
from repro.services.exchange import (
    run_optimized_exchange,
    run_publish_and_map,
)
from repro.sim.simulator import ExchangeSimulator
from repro.workloads.customer import (
    customer_schema,
    s_fragmentation,
    t_fragmentation,
)
from repro.workloads.sizes import scaled_bytes
from repro.workloads.xmark import (
    generate_xmark_document,
    xmark_lf_fragmentation,
    xmark_mf_fragmentation,
    xmark_schema,
)

_XMARK_KEYS = ("MF", "LF")
_CUSTOMER_KEYS = ("S", "T", "DOC")


def _resolve_pair(source_key: str, target_key: str
                  ) -> tuple[Fragmentation, Fragmentation]:
    """Resolve two fragmentation selectors over one shared schema.

    Raises:
        SystemExit: via argparse-style error for unknown/mixed keys.
    """
    source_key = source_key.upper()
    target_key = target_key.upper()
    if {source_key, target_key} <= set(_XMARK_KEYS):
        schema = xmark_schema()
        table = {
            "MF": xmark_mf_fragmentation(schema),
            "LF": xmark_lf_fragmentation(schema),
        }
    elif {source_key, target_key} <= set(_CUSTOMER_KEYS):
        schema = customer_schema()
        table = {
            "S": s_fragmentation(schema),
            "T": t_fragmentation(schema),
            "DOC": Fragmentation.whole_document(schema),
        }
    else:
        raise SystemExit(
            f"cannot pair {source_key!r} with {target_key!r}: use "
            f"{_XMARK_KEYS} together or {_CUSTOMER_KEYS} together"
        )
    return table[source_key], table[target_key]


def cmd_program(args: argparse.Namespace, out: TextIO) -> int:
    source, target = _resolve_pair(args.source, args.target)
    mapping = derive_mapping(source, target)
    model = CostModel(StatisticsCatalog.synthetic(source.schema))
    agency = DiscoveryAgency(source.schema)
    agency.register("source", source)
    agency.register("target", target)
    plan = agency.negotiate(
        "source", "target", optimizer=args.optimizer, probe=model,
        order_limit=args.order_limit,
    )
    program = plan.annotate()
    print(f"# {args.source} -> {args.target}: {summary(program)} "
          f"(estimated cost {plan.estimated_cost:,.0f}, "
          f"optimizer={plan.optimizer})", file=out)
    print(to_dot(program) if args.dot else to_text(program), file=out)
    del mapping
    return 0


def cmd_wsdl(args: argparse.Namespace, out: TextIO) -> int:
    source, _ = _resolve_pair(args.fragmentation, args.fragmentation)
    agency = DiscoveryAgency(source.schema)
    registration = agency.register("system", source)
    print(registration.wsdl_text, file=out)
    return 0


def _export_trace(tracer: Tracer, path: str, trace_format: str,
                  out: TextIO) -> None:
    """Write the recorded spans to ``path`` in the chosen format."""
    with open(path, "w", encoding="utf-8") as stream:
        if trace_format == "chrome":
            count = write_chrome_trace(tracer, stream)
        else:
            count = write_jsonl_trace(tracer, stream)
    print(f"trace: {count} spans -> {path} ({trace_format})", file=out)


def _run_sharded_exchange(args: argparse.Namespace, out: TextIO,
                          source_frag: Fragmentation,
                          target_frag: Fragmentation,
                          source: RelationalEndpoint,
                          make_channel, retry_policy, fault_plan,
                          tracer, metrics) -> int:
    """The ``--shards K`` path: scatter over K broker sessions, gather
    one merged target, and verify byte-identity against a direct
    unsharded run.  Returns a non-zero exit code on divergence."""
    from repro.relational.publisher import publish_document
    from repro.services.shard import (
        ScatterGatherCoordinator,
        ShardingSpec,
    )

    model = CostModel(StatisticsCatalog.synthetic(source_frag.schema))
    agency = DiscoveryAgency(source_frag.schema)
    agency.register("source", source_frag, source)
    agency.register("target", target_frag)
    coordinator = ScatterGatherCoordinator(
        agency, ShardingSpec(args.shards, args.shard_by),
        probe=model,
        plan_cache=PlanCache(metrics=metrics),
        channel_factory=make_channel,
        parallel_workers=args.workers,
        batch_rows=args.batch_rows,
        columnar=args.columnar,
        retry_policy=retry_policy,
        fault_plans=(
            {index: fault_plan for index in range(args.shards)}
            if fault_plan is not None else None
        ),
        metrics=metrics,
        tracer=tracer,
    )
    outcome = coordinator.run(
        "source", "target",
        lambda index: RelationalEndpoint(
            f"shard-target-{index}" if index >= 0
            else "gathered-target",
            target_frag,
        ),
        scenario=f"{args.source}->{args.target}",
    )

    # The unsharded reference (simulated channel: identity is about
    # bytes written, not about which wire carried them).
    program = build_transfer_program(
        derive_mapping(source_frag, target_frag)
    )
    reference_target = RelationalEndpoint(
        "reference-target", target_frag
    )
    run_optimized_exchange(
        program, source_heavy_placement(program), source,
        reference_target, SimulatedChannel(),
        f"{args.source}->{args.target}",
        parallel_workers=args.workers,
        batch_rows=args.batch_rows,
        columnar=args.columnar,
    )
    identical = publish_document(
        outcome.merged_target.db, outcome.merged_target.mapper
    ).document == publish_document(
        reference_target.db, reference_target.mapper
    ).document

    print(format_table(
        ["shard", "cached", "rows", "bytes", "seconds"],
        [
            [index,
             "-" if session is None
             else ("yes" if session.cached else "no"),
             "-" if session is None
             else session.outcome.rows_written,
             outcome.per_shard_comm_bytes[index],
             "-" if session is None else session.total_seconds]
            for index, session in enumerate(outcome.sessions)
        ],
        title=f"{args.shards} shard session(s) by {args.shard_by}, "
              f"grains {', '.join(outcome.grains)}",
    ), file=out)
    print(
        f"gathered {outcome.merged_rows} rows "
        f"({outcome.duplicate_rows} spine duplicates merged away), "
        f"{outcome.comm_bytes} bytes shipped, "
        f"scatter {outcome.exchange_seconds:.3f}s + "
        f"gather {outcome.gather_seconds:.3f}s",
        file=out,
    )
    print(
        "byte-identity vs unsharded run: "
        + ("OK" if identical else "MISMATCH"),
        file=out,
    )
    if args.trace:
        _export_trace(tracer, args.trace, args.trace_format, out)
    if args.metrics:
        print(metrics.render(), file=out)
    return 0 if identical else 1


def _run_delta_exchange(args: argparse.Namespace, out: TextIO,
                        source_frag: Fragmentation,
                        target_frag: Fragmentation,
                        source: RelationalEndpoint,
                        make_channel, retry_policy, fault_plan,
                        tracer, metrics) -> int:
    """The ``--delta`` path: one cold full exchange, an in-place
    mutation of ``--change-rate`` of the source rows, then a delta
    re-exchange through the same journal — verified byte-identical
    against a fresh full re-exchange.  Returns non-zero on
    divergence."""
    from repro.core.delta import endpoint_digest
    from repro.core.program.journal import ExchangeJournal
    from repro.workloads.mutate import mutate_endpoint

    program = build_transfer_program(
        derive_mapping(source_frag, target_frag)
    )
    placement = source_heavy_placement(program)
    scenario = f"{args.source}->{args.target}"
    source.enable_versioning()
    journal = ExchangeJournal()
    run_kwargs = dict(
        parallel_workers=args.workers,
        batch_rows=args.batch_rows,
        columnar=args.columnar,
        retry_policy=retry_policy,
        fault_plan=fault_plan,
        tracer=tracer,
        metrics=metrics,
    )
    de_target = RelationalEndpoint("de-target", target_frag)
    full = run_optimized_exchange(
        program, placement, source, de_target, make_channel(),
        scenario, journal=journal, **run_kwargs,
    )
    report = mutate_endpoint(
        source, args.change_rate, seed=args.seed,
        delete_fraction=args.change_rate / 5.0,
    )
    delta = run_optimized_exchange(
        program, placement, source, de_target, make_channel(),
        scenario, journal=journal, delta=True, since=args.since,
        **run_kwargs,
    )
    # The reference: re-exchange the mutated source from scratch.
    reference = RelationalEndpoint("reference-target", target_frag)
    run_optimized_exchange(
        program, placement, source, reference, make_channel(),
        scenario, **run_kwargs,
    )
    fragments = list(target_frag)
    identical = endpoint_digest(de_target, fragments) \
        == endpoint_digest(reference, fragments)

    print(format_table(
        ["run", "comm bytes", "rows written", "seconds"],
        [
            ["full", full.comm_bytes, full.rows_written,
             full.total_seconds],
            ["delta", delta.comm_bytes, delta.rows_written,
             delta.total_seconds],
        ],
        title=f"delta re-exchange {scenario}, change rate "
              f"{args.change_rate:g}",
    ), file=out)
    ratio = (
        delta.comm_bytes / full.comm_bytes
        if full.comm_bytes else 0.0
    )
    print(
        f"mutated {report.updated} row(s), deleted {report.deleted}; "
        f"window ({delta.delta_since}, {delta.delta_high}] changed "
        f"{delta.delta_changed_rows} of {delta.delta_total_rows} "
        f"row(s), closure shipped {delta.delta_shipped_rows}, "
        f"tombstoned {delta.delta_deleted_rows}",
        file=out,
    )
    print(f"delta/full communication: {ratio:.3f}x", file=out)
    print(
        "byte-identity vs full re-exchange: "
        + ("OK" if identical else "MISMATCH"),
        file=out,
    )
    if args.trace:
        _export_trace(tracer, args.trace, args.trace_format, out)
    if args.metrics:
        print(metrics.render(), file=out)
    return 0 if identical else 1


def cmd_exchange(args: argparse.Namespace, out: TextIO) -> int:
    """Run DE vs publish&map on XMark data; ``--workers N`` executes
    the DE program phase on the N-way parallel executor; ``--sessions
    N`` brokers N concurrent DE sessions (``--plan-cache`` memoizes
    their negotiations so only the first pays the optimizer)."""
    if args.source.upper() not in _XMARK_KEYS \
            or args.target.upper() not in _XMARK_KEYS:
        raise SystemExit(
            "exchange runs on the XMark workload: use MF or LF"
        )
    if args.workers < 1:
        raise SystemExit(
            f"--workers must be >= 1, got {args.workers}"
        )
    if args.sessions < 1:
        raise SystemExit(
            f"--sessions must be >= 1, got {args.sessions}"
        )
    if args.batch_rows is not None and args.batch_rows < 1:
        raise SystemExit(
            f"--batch-rows must be >= 1, got {args.batch_rows}"
        )
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    if args.shards > 1 and (args.sessions > 1 or args.drift):
        raise SystemExit(
            "--shards runs its own broker fleet; it does not combine "
            "with --sessions or --drift"
        )
    if args.shards > 1 and (args.adaptive or args.stats_store):
        raise SystemExit(
            "--adaptive/--stats-store do not combine with --shards"
        )
    if args.delta:
        if args.shards > 1 or args.sessions > 1 or args.adaptive \
                or args.drift or args.plan_cache or args.stats_store:
            raise SystemExit(
                "--delta runs its own full+delta pair; it does not "
                "combine with --shards, --sessions, --plan-cache, "
                "--adaptive, --stats-store or --drift"
            )
        if not 0.0 < args.change_rate <= 1.0:
            raise SystemExit(
                f"--change-rate must be in (0, 1], got "
                f"{args.change_rate}"
            )
        if args.since is not None and args.since < 0:
            raise SystemExit(
                f"--since must be >= 0, got {args.since}"
            )
    if args.columnar and args.batch_rows is None:
        # The columnar dataplane is a streaming dataplane; give it the
        # standard batch size rather than refusing.
        args.batch_rows = DEFAULT_BATCH_ROWS
    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            raise SystemExit(f"--fault-plan: {exc}") from exc
    retry_policy = None
    if args.retries is not None or fault_plan is not None:
        attempts = args.retries if args.retries is not None else 4
        if attempts < 1:
            raise SystemExit(
                f"--retries must be >= 1, got {attempts}"
            )
        retry_policy = RetryPolicy(max_attempts=attempts)
    tracer = Tracer() if (args.trace or args.drift) else None
    metrics = MetricsRegistry() if args.metrics else None
    sink = FeedSink().start() if args.transport == "tcp" else None
    transports: list[Transport] = []

    def make_channel() -> Transport:
        """One private channel per session over the chosen
        transport (tcp opens its own loopback socket)."""
        if sink is None:
            return SimulatedChannel()
        transport = TcpTransport.connect(sink.host, sink.port)
        transports.append(transport)
        return transport

    try:
        source_frag, target_frag = _resolve_pair(args.source, args.target)
        document = generate_xmark_document(
            scaled_bytes(args.size, scale=args.scale), seed=args.seed
        )
        source = RelationalEndpoint("source", source_frag)
        source.load_document(document)
        stats_store = None
        if args.stats_store:
            from repro.adapt import StatisticsStore

            if os.path.exists(args.stats_store):
                stats_store = StatisticsStore.load(args.stats_store)
            else:
                stats_store = StatisticsStore()
        adaptive_config = None
        if args.adaptive:
            from repro.adapt import AdaptiveConfig

            statistics = StatisticsCatalog.synthetic(source_frag.schema)
            adaptive_config = AdaptiveConfig(
                probe=CostModel(statistics),
                replan_threshold=args.replan_threshold,
                stats_store=stats_store,
                pair="source->target",
                statistics=statistics,
            )
        if args.shards > 1:
            return _run_sharded_exchange(
                args, out, source_frag, target_frag, source,
                make_channel, retry_policy, fault_plan, tracer,
                metrics,
            )
        if args.delta:
            return _run_delta_exchange(
                args, out, source_frag, target_frag, source,
                make_channel, retry_policy, fault_plan, tracer,
                metrics,
            )
        if args.sessions > 1 or args.plan_cache:
            model = CostModel(
                StatisticsCatalog.synthetic(source_frag.schema)
            )
            agency = DiscoveryAgency(source_frag.schema)
            agency.register("source", source_frag, source)
            agency.register("target", target_frag)
            if args.plan_cache and metrics is None:
                metrics = MetricsRegistry()
            cache = PlanCache(metrics=metrics) if args.plan_cache else None
            plan = agency.negotiate(
                "source", "target", probe=model, plan_cache=cache,
                plan_knobs={
                    "parallel_workers": args.workers,
                    "batch_rows": args.batch_rows,
                    "columnar": args.columnar,
                },
                stats_store=stats_store,
                metrics=metrics,
            )
            program, placement = plan.program, plan.placement
            ids = itertools.count()
            broker = ExchangeBroker(
                agency,
                plan_cache=cache,
                channel_factory=make_channel,
                max_workers=min(args.sessions, 4),
                probe=model,
                parallel_workers=args.workers,
                batch_rows=args.batch_rows,
                columnar=args.columnar,
                retry_policy=retry_policy,
                fault_plan=fault_plan,
                stats_store=stats_store,
                adaptive=adaptive_config,
                metrics=metrics,
                tracer=tracer,
            )
            with broker:
                sessions = broker.run([
                    ("source", "target", lambda: RelationalEndpoint(
                        f"de-target-{next(ids)}", target_frag
                    ))
                ] * args.sessions)
            de = sessions[0].outcome
            de_target = sessions[0].target
            print(format_table(
                ["session", "cached", "negotiate", "exchange", "TOTAL"],
                [
                    [session.session_id,
                     "yes" if session.cached else "no",
                     session.negotiation_seconds,
                     session.outcome.total_seconds,
                     session.total_seconds]
                    for session in sessions
                ],
                title=f"{args.sessions} brokered session(s), plan cache "
                      f"{'on' if cache is not None else 'off'}",
            ), file=out)
            if cache is not None:
                stats = cache.stats()
                print(
                    f"plan cache: {stats['hits']} hits, "
                    f"{stats['misses']} misses, "
                    f"{stats['evictions']} evictions; optimizer ran "
                    f"{int(metrics.counter('optimizer.runs').value)} "
                    f"time(s) across "
                    f"{args.sessions + 1} negotiation(s)",
                    file=out,
                )
        else:
            program = build_transfer_program(
                derive_mapping(source_frag, target_frag)
            )
            placement = source_heavy_placement(program)
            de_target = RelationalEndpoint("de-target", target_frag)
            de = run_optimized_exchange(
                program, placement, source, de_target, make_channel(),
                f"{args.source}->{args.target}",
                parallel_workers=args.workers,
                batch_rows=args.batch_rows,
                columnar=args.columnar,
                retry_policy=retry_policy,
                fault_plan=fault_plan,
                adaptive=adaptive_config,
                tracer=tracer,
                metrics=metrics,
            )
        pm_target = RelationalEndpoint("pm-target", target_frag)
        pm = run_publish_and_map(
            source, pm_target, make_channel(),
            f"{args.source}->{args.target}",
            retry_policy=retry_policy,
            fault_plan=fault_plan,
            tracer=tracer,
        )
        rows = [
            [outcome.method] + [
                outcome.steps[step] for step in (
                    "source_processing", "communication", "shredding",
                    "loading", "indexing",
                )
            ] + [outcome.total_seconds]
            for outcome in (de, pm)
        ]
        print(format_table(
            ["method", "source", "comm", "shred", "load", "index",
             "TOTAL"],
            rows,
            title=f"{args.source} -> {args.target}, "
                  f"{args.size} MB x scale {args.scale}",
        ), file=out)
        saving = 100 * (1 - de.total_seconds / pm.total_seconds)
        print(f"optimized exchange saving: {saving:.1f}%", file=out)
        if args.workers > 1:
            print(
                f"parallel program execution ({args.workers} workers): "
                f"{de.wall_seconds:.3f}s wall",
                file=out,
            )
        if args.batch_rows is not None:
            dataplane = "columnar" if args.columnar else "streaming"
            print(
                f"{dataplane} dataplane (batch_rows={args.batch_rows}): "
                f"peak {de.peak_resident_rows} resident rows "
                f"({de.peak_resident_bytes:,} bytes)",
                file=out,
            )
        if args.adaptive:
            print(
                f"adaptive execution: {de.replans} replan(s) moved "
                f"{de.ops_moved} op(s) mid-flight "
                f"(threshold {args.replan_threshold:g})",
                file=out,
            )
        if stats_store is not None:
            stats_store.save(args.stats_store)
            print(
                f"statistics store: {len(stats_store)} endpoint "
                f"pair(s) learned -> {args.stats_store}",
                file=out,
            )
        if fault_plan is not None:
            print(
                f"lossy channel ({fault_plan.describe()}): "
                f"DE injected {de.faults_injected} faults, healed with "
                f"{de.retries} retries "
                f"({de.redelivered_batches} duplicates discarded); "
                f"PM {pm.faults_injected} faults, {pm.retries} retries",
                file=out,
            )
        if args.trace:
            _export_trace(tracer, args.trace, args.trace_format, out)
        if args.metrics:
            print(metrics.render(), file=out)
        if args.drift:
            probe = CostModel(StatisticsCatalog.synthetic(source_frag.schema))
            trace_report = report_from_trace(program, tracer)
            print(cost_drift_report(
                program, placement, trace_report, probe
            ).render(), file=out)
    finally:
        for transport in transports:
            transport.close()
        if sink is not None:
            sink.stop()
    return 0


def cmd_serve(args: argparse.Namespace, out: TextIO) -> int:
    """Stand up the live service tier: the SOAP-over-HTTP discovery
    agency + feed endpoints plus the framed-socket feed sink, ready
    for ``loadgen`` (or any SOAP client) to drive."""
    if args.duration is not None and args.duration <= 0:
        raise SystemExit(
            f"--duration must be positive, got {args.duration}"
        )
    schema = xmark_schema()
    agency = DiscoveryAgency(schema)
    probe = CostModel(StatisticsCatalog.synthetic(schema))
    metrics = MetricsRegistry()
    server = ExchangeServer(
        agency, host=args.host, http_port=args.http_port,
        feed_port=args.feed_port, probe=probe, metrics=metrics,
    )
    with server:
        http_host, http_port = server.http_address
        feed_host, feed_port = server.feed_address
        print(
            f"control plane: http://{http_host}:{http_port} "
            "(POST /soap/agency, /soap/feeds)",
            file=out,
        )
        print(f"data plane: {feed_host}:{feed_port} "
              "(length-prefixed SOAP frames)", file=out)
        if args.duration is not None:
            print(f"serving for {args.duration:g}s ...", file=out)
        else:
            print("serving until interrupted (Ctrl-C) ...", file=out)
        try:
            if args.duration is not None:
                time.sleep(args.duration)
            else:  # pragma: no cover - interactive mode
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
    print(metrics.render(), file=out)
    return 0


def cmd_loadgen(args: argparse.Namespace, out: TextIO) -> int:
    """Fire a burst of concurrent broker sessions over real sockets;
    without ``--host`` an in-process server is self-served."""
    if args.sessions < 1:
        raise SystemExit(
            f"--sessions must be >= 1, got {args.sessions}"
        )
    if args.workers < 1:
        raise SystemExit(
            f"--workers must be >= 1, got {args.workers}"
        )
    report = run_load(
        sessions=args.sessions,
        workers=args.workers,
        host=args.host,
        http_port=args.http_port,
        feed_port=args.feed_port,
        document_bytes=scaled_bytes(args.size, scale=args.scale),
        seed=args.seed,
        batch_rows=args.batch_rows,
        columnar=args.columnar,
        out=args.out,
    )
    print(report.render(), file=out)
    if args.out:
        print(f"report -> {args.out}", file=out)
    if report.failed:
        for failure in report.failures:
            print(f"FAILED: {failure}", file=out)
        return 1
    return 0


def cmd_simulate(args: argparse.Namespace, out: TextIO) -> int:
    try:
        source_part, target_part = args.ratio.split("/")
        source_speed = float(source_part)
        target_speed = float(target_part)
    except ValueError as exc:
        raise SystemExit(
            f"--ratio must look like 5/1, got {args.ratio!r}"
        ) from exc
    schema = balanced_schema(2, 5, seed=3)
    tracer = Tracer() if args.trace else None
    simulator = ExchangeSimulator(schema, tracer=tracer)
    rng = random.Random(args.seed)
    trials = [
        simulator.greedy_quality_trial(
            n_fragments=args.fragments,
            source=MachineProfile("s", speed=source_speed),
            target=MachineProfile("t", speed=target_speed),
            rng=rng, order_limit=args.order_limit,
        )
        for _ in range(args.trials)
    ]
    print(format_table(
        ["metric", "value"],
        [
            ["Worst/Optimal",
             sum(t.worst_over_optimal for t in trials) / len(trials)],
            ["Greedy/Optimal",
             sum(t.greedy_over_optimal for t in trials) / len(trials)],
            ["optimal secs",
             sum(t.optimal_seconds for t in trials) / len(trials)],
            ["greedy secs",
             sum(t.greedy_seconds for t in trials) / len(trials)],
        ],
        title=f"speed ratio {args.ratio}, {args.trials} trials "
              "(compare Table 5)",
    ), file=out)
    if args.trace:
        _export_trace(tracer, args.trace, args.trace_format, out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Fragment-based XML data exchange "
            "(Amer-Yahia & Kotidis, ICDE 2004)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    program = commands.add_parser(
        "program", help="print a negotiated transfer program"
    )
    program.add_argument("source", help="MF|LF or S|T|DOC")
    program.add_argument("target", help="MF|LF or S|T|DOC")
    program.add_argument("--optimizer", default="canonical",
                         choices=("canonical", "greedy", "optimal"))
    program.add_argument("--order-limit", type=int, default=60)
    program.add_argument("--dot", action="store_true",
                         help="emit Graphviz DOT instead of text")
    program.set_defaults(handler=cmd_program)

    wsdl = commands.add_parser(
        "wsdl", help="print a system's registration WSDL"
    )
    wsdl.add_argument("fragmentation", help="MF|LF or S|T|DOC")
    wsdl.set_defaults(handler=cmd_wsdl)

    exchange = commands.add_parser(
        "exchange", help="run DE vs publish&map on XMark data"
    )
    exchange.add_argument("source", help="MF|LF")
    exchange.add_argument("target", help="MF|LF")
    exchange.add_argument("--size", type=float, default=25.0,
                          help="document size in MB (paper ladder)")
    exchange.add_argument("--scale", type=float, default=0.02,
                          help="fraction of the paper size")
    exchange.add_argument("--seed", type=int, default=42)
    exchange.add_argument(
        "--workers", type=int, default=1,
        help="run the DE program phase with this many parallel "
             "workers (1 = sequential, the paper's setup)",
    )
    exchange.add_argument(
        "--fault-plan", default=None,
        help="inject channel faults: rates like "
             "'drop=0.1,corrupt=0.05,seed=7' or a script like "
             "'drop@3,corrupt@5' (see repro.net.faults.FaultPlan)",
    )
    exchange.add_argument(
        "--retries", type=int, default=None,
        help="max delivery attempts per message (default 4 when "
             "--fault-plan is set; without it sends are not retried)",
    )
    exchange.add_argument(
        "--batch-rows", type=int, default=None,
        help="stream the DE program phase in row batches of this size "
             "(bounded memory; default: materialized instances)",
    )
    exchange.add_argument(
        "--columnar", action="store_true",
        help="run the DE program phase on the columnar dataplane: "
             "flat fragments stream as column batches and Combine "
             "runs the build/probe join (implies --batch-rows "
             f"{DEFAULT_BATCH_ROWS} when not set; written fragments "
             "are byte-identical to the row path)",
    )
    exchange.add_argument(
        "--sessions", type=int, default=1,
        help="run this many concurrent DE sessions through the "
             "exchange broker (each gets its own channel and target "
             "store; default 1 = direct single exchange)",
    )
    exchange.add_argument(
        "--plan-cache", action="store_true",
        help="memoize the negotiated plan: the first session pays the "
             "optimizer, later sessions reuse the cached program and "
             "placement (implies the brokered path)",
    )
    exchange.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a structured trace of both runs to FILE "
             "(tracing is off — zero overhead — without this flag)",
    )
    exchange.add_argument(
        "--trace-format", default="jsonl",
        choices=("jsonl", "chrome"),
        help="trace file format: one JSON span per line, or Chrome "
             "trace-event JSON (load in chrome://tracing / Perfetto)",
    )
    exchange.add_argument(
        "--metrics", action="store_true",
        help="collect and print the metrics registry "
             "(op/ship counters and latency histograms)",
    )
    exchange.add_argument(
        "--drift", action="store_true",
        help="print the cost-drift report: the optimizer's predicted "
             "comp/comm costs vs the measured seconds, per op and "
             "per cross-edge (implies tracing internally)",
    )
    exchange.add_argument(
        "--transport", default="sim", choices=("sim", "tcp"),
        help="channel implementation: the costed simulated channel "
             "(default) or real loopback TCP sockets into a live "
             "feed sink (every byte crosses the kernel)",
    )
    exchange.add_argument(
        "--shards", type=int, default=1,
        help="scatter the exchange over this many concurrent shard "
             "sessions and gather one merged target (verified "
             "byte-identical against the unsharded run; default 1 = "
             "no sharding)",
    )
    exchange.add_argument(
        "--shard-by", default="key-range",
        choices=("key-range", "prefix-label"),
        help="row-to-shard strategy: contiguous element-id ranges or "
             "Dewey prefix labels dealt round-robin",
    )
    exchange.add_argument(
        "--adaptive", action="store_true",
        help="run the DE program phase adaptively: checkpoint "
             "observed-vs-predicted costs mid-exchange and re-place "
             "the not-yet-started DAG suffix when they diverge "
             "(written fragments stay byte-identical)",
    )
    exchange.add_argument(
        "--stats-store", default=None, metavar="PATH",
        help="persist learned per-pair cost statistics at PATH: "
             "loaded before the run (when the file exists) so "
             "negotiation prices with learned scales, saved after "
             "with this run's observations folded in",
    )
    exchange.add_argument(
        "--replan-threshold", type=float, default=0.5,
        help="adaptive divergence (ratio spread) that triggers a "
             "suffix replan; <= 0 replans at every checkpoint, 'inf' "
             "never (default 0.5)",
    )
    exchange.add_argument(
        "--delta", action="store_true",
        help="incremental sync ablation: run one cold full exchange, "
             "mutate --change-rate of the source rows in place, then "
             "delta re-exchange only the changed subset through the "
             "same journal (verified byte-identical against a fresh "
             "full re-exchange)",
    )
    exchange.add_argument(
        "--change-rate", type=float, default=0.1,
        help="fraction of each fragment's rows mutated between the "
             "full and delta runs (plus a fifth as many deletes on "
             "cascade-free fragments; default 0.1)",
    )
    exchange.add_argument(
        "--since", type=int, default=None,
        help="explicit source version the delta run syncs from "
             "(default: the journal's last completed-sync high-water "
             "mark)",
    )
    exchange.set_defaults(handler=cmd_exchange)

    serve = commands.add_parser(
        "serve", help="run the live SOAP-over-HTTP service tier"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--http-port", type=int, default=8080,
                       help="control-plane port (0 = ephemeral)")
    serve.add_argument("--feed-port", type=int, default=8081,
                       help="data-plane port (0 = ephemeral)")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for this many seconds, then exit "
                            "(default: until interrupted)")
    serve.set_defaults(handler=cmd_serve)

    loadgen = commands.add_parser(
        "loadgen",
        help="drive concurrent broker sessions over real sockets",
    )
    loadgen.add_argument("--sessions", type=int, default=100,
                         help="concurrent exchange sessions to fire")
    loadgen.add_argument("--workers", type=int, default=8,
                         help="broker worker threads")
    loadgen.add_argument("--host", default=None,
                         help="target a running `serve` instance "
                              "(default: self-serve in-process)")
    loadgen.add_argument("--http-port", type=int, default=8080)
    loadgen.add_argument("--feed-port", type=int, default=8081)
    loadgen.add_argument("--size", type=float, default=2.0,
                         help="document size in MB (paper ladder)")
    loadgen.add_argument("--scale", type=float, default=0.02,
                         help="fraction of the paper size")
    loadgen.add_argument("--seed", type=int, default=99)
    loadgen.add_argument("--batch-rows", type=int, default=None)
    loadgen.add_argument("--columnar", action="store_true")
    loadgen.add_argument("--out", default=None, metavar="FILE",
                         help="write the JSON report here "
                              "(e.g. BENCH_load.json)")
    loadgen.set_defaults(handler=cmd_loadgen)

    simulate = commands.add_parser(
        "simulate", help="run a Table 5 configuration"
    )
    simulate.add_argument("--ratio", default="1/1",
                          help="source/target speed, e.g. 5/1")
    simulate.add_argument("--trials", type=int, default=5)
    simulate.add_argument("--fragments", type=int, default=11)
    simulate.add_argument("--order-limit", type=int, default=60)
    simulate.add_argument("--seed", type=int, default=42)
    simulate.add_argument("--trace", default=None, metavar="FILE",
                          help="record the optimizer-phase trace")
    simulate.add_argument("--trace-format", default="jsonl",
                          choices=("jsonl", "chrome"))
    simulate.set_defaults(handler=cmd_simulate)
    return parser


def main(argv: Sequence[str] | None = None,
         out: TextIO | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args, out or sys.stdout)
    except BrokenPipeError:
        # Downstream pipe reader (e.g. `| head`) closed early; exit
        # quietly like any well-behaved Unix filter.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
