"""repro — A Web-Services Architecture for Efficient XML Data Exchange.

A full reproduction of Amer-Yahia & Kotidis (ICDE 2004): fragment-based
XML data exchange negotiated through a WSDL extension, with the
discovery-agency middleware, the Scan/Combine/Split/Write program
algebra, cost-based exhaustive and greedy optimizers, and the relational
/ directory / network substrates the evaluation needs.

Quick tour::

    from repro.workloads import xmark_schema, xmark_mf_fragmentation
    from repro.services import DiscoveryAgency, RelationalEndpoint

See README.md for the architecture overview and examples/ for runnable
scenarios.
"""

from repro.core import (
    ElementData,
    Fragment,
    Fragmentation,
    FragmentInstance,
    Mapping,
    derive_mapping,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "Fragment",
    "Fragmentation",
    "ElementData",
    "FragmentInstance",
    "Mapping",
    "derive_mapping",
]
