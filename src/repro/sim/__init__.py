"""The simulator of Section 5.4.

All algorithms run on the same code base as the live pipeline (the core
optimizers), but costs are *estimated* through a
:class:`~repro.core.cost.model.CostModel` instead of measured — exactly
how the paper's simulator explores configurations (different relative
machine speeds, random fragmentations) that the two-PC testbed cannot.
"""

from repro.sim.random_fragmentation import random_fragmentation
from repro.sim.simulator import (
    AmortizedPlanCosts,
    DeltaCostEstimate,
    ExchangeSimulator,
    GreedyQualityTrial,
    SimulatedCosts,
)

__all__ = [
    "random_fragmentation",
    "ExchangeSimulator",
    "SimulatedCosts",
    "GreedyQualityTrial",
    "AmortizedPlanCosts",
    "DeltaCostEstimate",
]
