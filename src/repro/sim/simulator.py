"""Estimated-cost exchange simulation (Section 5.4).

:class:`ExchangeSimulator` prices data-exchange and publishing programs
for arbitrary machine-speed configurations:

* :meth:`ExchangeSimulator.exchange_costs` — the optimized DE program
  (Algorithm 1 placement over combine orders) vs publishing-only, as
  charted in Figures 10 and 11;
* :meth:`ExchangeSimulator.greedy_quality_trial` — optimal vs greedy vs
  worst-case program costs plus optimizer runtimes, the material of
  Table 5;
* :meth:`ExchangeSimulator.repeated_exchange_costs` — what a stream of
  identical exchanges costs when the negotiated plan is cached: only
  the first exchange pays the optimizer, every later one reuses the
  plan (the amortization argument behind the
  :class:`~repro.services.broker.PlanCache`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import (
    CostBreakdown,
    CostModel,
    CostWeights,
    MachineProfile,
)
from repro.core.fragmentation import Fragmentation
from repro.core.mapping import derive_mapping
from repro.core.ops.base import Location
from repro.core.ops.write import Write
from repro.core.optimizer.exhaustive import (
    cost_based_optim,
    cost_based_pessim,
)
from repro.core.optimizer.search import (
    greedy_exchange,
    optimal_exchange,
    worst_exchange,
)
from repro.core.program.builder import build_transfer_program
from repro.core.program.parallel import ParallelEstimate
from repro.obs.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - keeps the sim layer net-free
    from repro.net.faults import FaultPlan
from repro.schema.model import SchemaTree
from repro.sim.random_fragmentation import random_fragmentation


@dataclass(slots=True)
class SimulatedCosts:
    """DE vs publishing cost split (the bars of Figures 10/11)."""

    exchange: CostBreakdown
    publish: CostBreakdown

    @property
    def relative_cost(self) -> float:
        """DE total divided by publish total (< 1 means DE wins)."""
        return self.exchange.total / self.publish.total

    @property
    def reduction_percent(self) -> float:
        """Percentage saved by DE over publishing only."""
        return 100.0 * (1.0 - self.relative_cost)


@dataclass(slots=True)
class GreedyQualityTrial:
    """One Table 5 data point."""

    optimal_cost: float
    greedy_cost: float
    worst_cost: float
    optimal_seconds: float
    greedy_seconds: float

    @property
    def worst_over_optimal(self) -> float:
        """The optimization window (Table 5, column 2)."""
        return self.worst_cost / self.optimal_cost

    @property
    def greedy_over_optimal(self) -> float:
        """The greedy quality ratio (Table 5, column 3)."""
        return self.greedy_cost / self.optimal_cost


@dataclass(slots=True)
class AmortizedPlanCosts:
    """Cost of ``n_exchanges`` identical exchanges, with and without a
    negotiated-plan cache."""

    n_exchanges: int
    #: Estimated data cost of one exchange (formula-1 units).
    per_exchange_cost: float
    #: Wall seconds one optimizer run took (paid once when cached).
    optimizer_seconds: float
    #: Total cost without a plan cache: every exchange re-optimizes.
    cold_total: float
    #: Total cost with the cache: exchange 1 optimizes, the rest hit.
    warm_total: float

    @property
    def savings(self) -> float:
        """Absolute cost saved by the cache over the stream."""
        return self.cold_total - self.warm_total

    @property
    def speedup(self) -> float:
        """Cold total over warm total (>= 1; grows with the stream)."""
        if self.warm_total == 0.0:
            return 1.0
        return self.cold_total / self.warm_total


@dataclass(slots=True)
class AdaptiveCostEstimate:
    """Mis-calibrated static vs mid-flight adaptive vs oracle, all
    priced under the *true* cost model (formula-1 units).

    ``static_cost`` is what a plan optimized under the mis-calibrated
    model really costs; ``oracle_cost`` is the best a clairvoyant
    optimizer could do; ``adaptive_cost`` runs the first expression
    under the static plan (the adaptive executor cannot observe drift
    before executing something), then re-places the remaining suffix
    under corrected costs with the executed prefix pinned.
    """

    static_cost: float
    adaptive_cost: float
    oracle_cost: float
    #: Operations executed (and pinned) before the replan fired.
    pinned_ops: int
    #: Suffix operations the replan moved off the static placement.
    moved_ops: int

    @property
    def gap(self) -> float:
        """What mis-calibration costs: static minus oracle."""
        return self.static_cost - self.oracle_cost

    @property
    def recovered_fraction(self) -> float:
        """How much of the gap adaptive execution claws back (1.0 =
        all of it; 0.0 = none, or no gap to recover)."""
        if self.gap <= 0.0:
            return 1.0 if self.adaptive_cost <= self.oracle_cost else 0.0
        return (self.static_cost - self.adaptive_cost) / self.gap


@dataclass(slots=True)
class DeltaCostEstimate:
    """Predicted cost of one incremental delta re-exchange at a given
    change rate, against re-running the exchange from scratch.

    A delta run cannot skip change detection: ``compute_delta`` scans
    every source row to rebuild the occurrence maps, so the scan-side
    computation is a fixed floor (``detect_cost``).  Everything
    downstream of the scans — shipping, splits, combines, writes —
    scales with the fraction of rows that actually changed, inflated
    by ``amplification`` when the contribution closure drags unchanged
    rows along (mutating a spine row re-ships its whole subtree)."""

    #: Fraction of source rows changed since the last sync, in [0, 1].
    change_rate: float
    #: One full re-exchange, formula-1 units.
    full_cost: float
    #: Fixed change-detection floor (the full source scan).
    detect_cost: float
    #: Predicted cost of the delta run at this change rate.
    delta_cost: float

    @property
    def relative_cost(self) -> float:
        """Delta over full (< 1 means the delta run wins)."""
        if self.full_cost == 0.0:
            return 1.0
        return self.delta_cost / self.full_cost

    @property
    def savings_percent(self) -> float:
        """Percentage saved by syncing incrementally."""
        return 100.0 * (1.0 - self.relative_cost)


@dataclass(slots=True)
class ShardedCostEstimate:
    """Predicted cost of scattering one exchange over K shards.

    The grain rows divide over the shards; the spine replicates into
    every one (the price of shard-local PARENT resolution).  With
    ``s`` the spine's fraction of the exchanged bytes, a shard costs
    ``base * (s + (1 - s) / K)`` and the fleet's aggregate work is
    ``base * (K * s + (1 - s))`` — speedup saturates at ``1 / s`` no
    matter how many shards are added (Amdahl over the spine)."""

    shards: int
    grains: tuple[str, ...]
    #: One unsharded exchange, formula-1 units.
    base_cost: float
    #: Replicated (spine) fraction of the exchanged bytes, in [0, 1].
    spine_fraction: float
    #: Predicted cost of one shard session (the makespan, since the
    #: shards run concurrently).
    per_shard_cost: float
    #: Aggregate work across all K sessions.
    total_cost: float

    @property
    def speedup(self) -> float:
        """Unsharded cost over the sharded makespan (>= 1)."""
        if self.per_shard_cost == 0.0:
            return 1.0
        return self.base_cost / self.per_shard_cost

    @property
    def replication_overhead(self) -> float:
        """Extra aggregate work paid for spine replication
        (``total / base - 1``; 0 at K=1)."""
        if self.base_cost == 0.0:
            return 0.0
        return self.total_cost / self.base_cost - 1.0


class ExchangeSimulator:
    """Prices exchanges over one schema under synthetic statistics."""

    def __init__(self, schema: SchemaTree,
                 statistics: StatisticsCatalog | None = None,
                 weights: CostWeights | None = None,
                 bandwidth: float = 100.0,
                 tracer: Tracer | None = None) -> None:
        self.schema = schema
        self.statistics = statistics or StatisticsCatalog.synthetic(schema)
        self.weights = weights or CostWeights()
        self.tracer = tracer or NULL_TRACER
        # A fast interconnect by default, as in Section 5.4.2 ("we
        # assumed a fast interconnect network, so computation cost was
        # the major factor").
        self.bandwidth = bandwidth

    @classmethod
    def for_transport(cls, schema: SchemaTree, transport: object,
                      statistics: StatisticsCatalog | None = None,
                      weights: CostWeights | None = None,
                      tracer: Tracer | None = None
                      ) -> "ExchangeSimulator":
        """A simulator pricing communication at ``transport``'s speed.

        ``transport`` is anything carrying a ``profile`` with a
        ``bandwidth_bytes_per_second`` (every
        :class:`~repro.net.transport.Transport` does) — duck-typed so
        the sim layer stays import-free of :mod:`repro.net`.  Feed
        sizes are bytes, so the resulting ``comm`` component is an
        estimated transfer time in seconds over that link.

        Raises:
            ValueError: if ``transport`` exposes no usable profile.
        """
        profile = getattr(transport, "profile", None)
        bandwidth = getattr(
            profile, "bandwidth_bytes_per_second", None
        )
        if not bandwidth:
            raise ValueError(
                f"{type(transport).__name__} carries no network "
                "profile with a bandwidth to price communication from"
            )
        return cls(schema, statistics, weights,
                   bandwidth=float(bandwidth), tracer=tracer)

    def model(self, source: MachineProfile,
              target: MachineProfile) -> CostModel:
        """The cost model for one machine configuration."""
        return CostModel(
            self.statistics, source, target, self.weights, self.bandwidth
        )

    # -- Figures 10 / 11 -------------------------------------------------------

    def publish_cost(self, source_fragmentation: Fragmentation,
                     source: MachineProfile,
                     target: MachineProfile) -> CostBreakdown:
        """Publishing only, as in Figures 10/11: the paper prices "a
        single query for producing the document" and "did not try
        optimizing this part" — an unoptimized nested query
        materializes every intermediate result, so each combine is
        charged for the *accumulated* fragment it materializes (not the
        cheap pairwise merge the DE programs use).  The tagged document
        then ships to the requester."""
        from repro.core.cost.model import UNIT_COMBINE, UNIT_SCAN

        whole = Fragmentation.whole_document(self.schema)
        mapping = derive_mapping(source_fragmentation, whole)
        program = build_transfer_program(mapping)
        breakdown = CostBreakdown()
        statistics = self.statistics
        for node in program.nodes:
            if isinstance(node, Write):
                continue  # publishing ends with a shipped document
            if node.kind == "scan":
                work = UNIT_SCAN * statistics.fragment_elements(
                    node.outputs[0]
                )
            elif node.kind == "combine":
                # Materialize the combined intermediate result and
                # re-read it for the next join step (temp-table
                # evaluation of one big unoptimized query).
                work = 2.0 * UNIT_COMBINE * statistics.fragment_elements(
                    node.outputs[0]
                )
            else:  # pragma: no cover - publish programs have no splits
                continue
            cost = self.weights.computation * work / source.speed
            breakdown.computation += cost
            breakdown.by_location[Location.SOURCE] += cost
        document = whole.root_fragment()
        breakdown.communication = (
            self.weights.communication
            * statistics.fragment_size(document) / self.bandwidth
        )
        return breakdown

    def exchange_costs(self, source_fragmentation: Fragmentation,
                       target_fragmentation: Fragmentation,
                       source: MachineProfile, target: MachineProfile,
                       order_limit: int | None = 200,
                       parallel: ParallelEstimate | None = None,
                       batch_rows: int | None = None,
                       columnar: bool = False,
                       fault_plan: "FaultPlan | None" = None,
                       retry_attempts: int = 4
                       ) -> SimulatedCosts:
        """Optimized DE vs publishing-only for one configuration.

        Writes are excluded from the DE side for comparability — the
        publishing-only baseline ends with a shipped document and does
        no storing either.

        ``parallel`` re-runs the scenario in parallel mode: pass a
        measured (or simulated) makespan and the DE side is compressed
        by its observed speedup — the publishing baseline is a single
        monolithic query and stays sequential, exactly the asymmetry
        the Section 5.2 remark points at.

        ``batch_rows`` prices the streaming dataplane's intra-edge
        pipelining: chunked shipping lets transfer of batch *i* hide
        behind production of batch *i+1*, so up to ``min(comm, comp)``
        of the communication cost disappears, scaled by the pipeline
        efficiency ``(n-1)/n`` for ``n`` batches per feed (one batch
        cannot overlap itself; many small batches approach full
        overlap).  Batch counts come from the statistics catalog.  The
        publishing baseline ships one monolithic document and gets no
        credit.

        ``columnar=True`` (requires ``batch_rows``, like the live
        executors) prices DE's computation at the columnar dataplane's
        per-strategy work scales (:data:`~repro.core.cost.model.
        DEFAULT_STRATEGY_SCALES`): scans, splits and writes at the
        ``"columnar"`` scale and combines at the ``"merge"`` scale —
        sorted feeds make the merge join the auto-selected strategy on
        an in-order simulated exchange.  Communication is unchanged
        (the wire format stays row feeds).  The publishing baseline is
        one monolithic query with no columnar variant.

        ``fault_plan`` prices communication under loss: both sides'
        communication cost is multiplied by the plan's expected
        transmissions per delivered message (a truncated geometric
        series over ``retry_attempts``, see
        :meth:`~repro.net.faults.FaultPlan.
        expected_transmission_factor`) — failed and duplicated sends
        burn the wire too, and both methods pay the same per-message
        inflation.
        """
        if columnar and batch_rows is None:
            raise ValueError(
                "columnar pricing requires batch_rows (the columnar "
                "dataplane is a streaming dataplane)"
            )
        model = self.model(source, target)
        mapping = derive_mapping(
            source_fragmentation, target_fragmentation
        )
        with self.tracer.span("optimize exchange", "sim",
                              order_limit=order_limit or 0):
            best = optimal_exchange(
                mapping, model, self.weights, order_limit
            )
        strategies: dict[str, str] | None = None
        if columnar:
            strategies = {
                "scan": "columnar", "split": "columnar",
                "write": "columnar", "combine": "merge",
            }
        with self.tracer.span("price exchange", "sim"):
            exchange = model.breakdown(
                best.program, best.placement, strategies
            )
        write_strategy = "columnar" if columnar else "row"
        for node in best.program.nodes:
            if isinstance(node, Write):
                location = best.placement[node.op_id]
                cost = self.weights.computation * model.comp_cost(
                    node, location, write_strategy
                )
                exchange.computation -= cost
                exchange.by_location[location] -= cost
        if parallel is not None:
            shrink = 1.0 / max(parallel.speedup, 1.0)
            exchange.computation *= shrink
            exchange.communication *= shrink
            for location in exchange.by_location:
                exchange.by_location[location] *= shrink
        if batch_rows is not None:
            if batch_rows < 1:
                raise ValueError("batch_rows must be >= 1 or None")
            largest_feed = max(
                (self.statistics.count(fragment.root_name)
                 for fragment in source_fragmentation),
                default=0.0,
            )
            n_batches = max(
                1, -(-int(largest_feed) // batch_rows)  # ceil division
            )
            efficiency = (n_batches - 1) / n_batches
            hidden = efficiency * min(
                exchange.communication, exchange.computation
            )
            exchange.communication -= hidden
        with self.tracer.span("price publish", "sim"):
            publish = self.publish_cost(
                source_fragmentation, source, target
            )
        if fault_plan is not None:
            factor = fault_plan.expected_transmission_factor(
                retry_attempts
            )
            exchange.communication *= factor
            publish.communication *= factor
        return SimulatedCosts(exchange, publish)

    # -- sharded scatter/gather ----------------------------------------------------

    def sharded_exchange_costs(
            self, source_fragmentation: Fragmentation,
            target_fragmentation: Fragmentation,
            source: MachineProfile, target: MachineProfile,
            shards: int, order_limit: int | None = 200,
            grains: "list[str] | tuple[str, ...] | None" = None
            ) -> ShardedCostEstimate:
        """Predict the scatter/gather speedup of K shard sessions.

        Resolves the grain plan exactly as the live
        :class:`~repro.services.shard.ScatterGatherCoordinator` does,
        prices one unsharded exchange, then splits it by the spine's
        byte fraction: grain bytes divide over the shards while spine
        bytes replicate into every one.  The optimizer is *not*
        charged per shard — the K sessions share one plan-cache
        fingerprint, so negotiation runs once either way.

        Raises:
            ShardingError: when the fragmentation pair cannot shard.
            ValueError: on ``shards < 1``.
        """
        from repro.core.partition import resolve_grains

        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        plan = resolve_grains(
            source_fragmentation, target_fragmentation, grains
        )
        model = self.model(source, target)
        mapping = derive_mapping(
            source_fragmentation, target_fragmentation
        )
        with self.tracer.span("optimize exchange", "sim",
                              order_limit=order_limit or 0):
            best = optimal_exchange(
                mapping, model, self.weights, order_limit
            )
        with self.tracer.span("price exchange", "sim"):
            base = model.breakdown(best.program, best.placement).total
        statistics = self.statistics
        total_bytes = sum(
            statistics.fragment_size(fragment)
            for fragment in source_fragmentation
        )
        spine_bytes = sum(
            statistics.fragment_size(fragment)
            for fragment in source_fragmentation
            if fragment.name in plan.spine
        )
        spine_fraction = (
            spine_bytes / total_bytes if total_bytes > 0 else 0.0
        )
        grain_fraction = 1.0 - spine_fraction
        per_shard = base * (spine_fraction + grain_fraction / shards)
        total = base * (shards * spine_fraction + grain_fraction)
        return ShardedCostEstimate(
            shards=shards,
            grains=plan.grains,
            base_cost=base,
            spine_fraction=spine_fraction,
            per_shard_cost=per_shard,
            total_cost=total,
        )

    # -- adaptive mid-flight re-placement ------------------------------------------

    def adaptive_exchange_costs(
            self, source_fragmentation: Fragmentation,
            target_fragmentation: Fragmentation,
            source: MachineProfile, target: MachineProfile, *,
            miscalibration: "dict[str, float]"
            ) -> AdaptiveCostEstimate:
        """Predict the mid-flight adaptation ablation analytically.

        ``miscalibration`` maps operation kinds (``"combine"``, …, or
        ``"comm"``) to the factor the *believed* model overprices them
        by — ``{"combine": 4.0}`` is the ISSUE's scenario.  All three
        variants run over the same canonical transfer program and are
        priced under the true model:

        * **static** — Algorithm 1 placement under the believed model;
        * **oracle** — Algorithm 1 placement under the true model;
        * **adaptive** — the first expression executes under the
          static placement (drift is only observable *after* running
          something), then the suffix is re-placed under corrected
          costs with the executed prefix pinned, exactly what
          :class:`~repro.adapt.executor.AdaptiveRun` does at its first
          checkpoint.
        """
        from repro.adapt.executor import _expression_groups
        from repro.adapt.replan import ScaledProbe, replan_placement

        true_model = self.model(source, target)
        scales = {
            kind: float(miscalibration.get(kind, 1.0))
            for kind in ("scan", "combine", "split", "write")
        }
        believed = ScaledProbe(
            true_model, scales,
            float(miscalibration.get("comm", 1.0)),
        )
        mapping = derive_mapping(
            source_fragmentation, target_fragmentation
        )
        program = build_transfer_program(mapping)
        with self.tracer.span("optimize static", "sim"):
            static_placement, _ = cost_based_optim(
                program, believed, self.weights
            )
        with self.tracer.span("optimize oracle", "sim"):
            _, oracle_cost = cost_based_optim(
                program, true_model, self.weights
            )
        static_cost = true_model.breakdown(
            program, static_placement
        ).total
        first = _expression_groups(program)[0]
        pinned = {
            op_id: static_placement[op_id] for op_id in first
        }
        with self.tracer.span("replan suffix", "sim",
                              pinned=len(pinned)):
            adaptive_placement, adaptive_cost = replan_placement(
                program, true_model, self.weights, pinned=pinned
            )
        moved = sum(
            1 for op_id, location in adaptive_placement.items()
            if static_placement[op_id] is not location
        )
        return AdaptiveCostEstimate(
            static_cost=static_cost,
            adaptive_cost=adaptive_cost,
            oracle_cost=oracle_cost,
            pinned_ops=len(pinned),
            moved_ops=moved,
        )

    # -- plan-cache amortization ---------------------------------------------------

    def repeated_exchange_costs(
            self, source_fragmentation: Fragmentation,
            target_fragmentation: Fragmentation,
            source: MachineProfile, target: MachineProfile,
            n_exchanges: int,
            order_limit: int | None = 200) -> AmortizedPlanCosts:
        """Price ``n_exchanges`` identical exchanges under plan caching.

        Without a cache every exchange renegotiates, so each pays the
        measured optimizer runtime on top of its data cost; with a
        :class:`~repro.services.broker.PlanCache` only the first does
        (cache hits deserialize a stored plan, whose cost is noise next
        to an optimizer search).  The cost model's units are seconds
        (work over machine speed, bytes over bandwidth), so optimizer
        wall seconds add onto the estimated data cost directly.
        """
        if n_exchanges < 1:
            raise ValueError(
                f"n_exchanges must be >= 1, got {n_exchanges}"
            )
        model = self.model(source, target)
        mapping = derive_mapping(
            source_fragmentation, target_fragmentation
        )
        with self.tracer.span("optimize exchange", "sim",
                              order_limit=order_limit or 0):
            best = optimal_exchange(
                mapping, model, self.weights, order_limit
            )
        with self.tracer.span("price exchange", "sim"):
            per_exchange = model.breakdown(
                best.program, best.placement
            ).total
        optimizer_seconds = best.elapsed_seconds
        return AmortizedPlanCosts(
            n_exchanges=n_exchanges,
            per_exchange_cost=per_exchange,
            optimizer_seconds=optimizer_seconds,
            cold_total=n_exchanges * (per_exchange + optimizer_seconds),
            warm_total=n_exchanges * per_exchange + optimizer_seconds,
        )

    # -- incremental delta sync ----------------------------------------------------

    def delta_exchange_costs(
            self, source_fragmentation: Fragmentation,
            target_fragmentation: Fragmentation,
            source: MachineProfile, target: MachineProfile,
            change_rates: "list[float] | tuple[float, ...]",
            order_limit: int | None = 200,
            amplification: float = 1.0) -> list[DeltaCostEstimate]:
        """Price incremental delta syncs over a change-rate sweep.

        For each rate ``r`` in ``change_rates``, predicts what a delta
        re-exchange costs when ``r`` of the source rows changed since
        the last sync.  The full exchange is optimized and priced once
        (Algorithm 1 placement over combine orders); a delta run then
        pays:

        * the **detection floor** — the scan-side computation in full,
          because :func:`~repro.core.delta.compute_delta` reads every
          source row to rebuild the occurrence maps before it can tell
          changed from unchanged;
        * ``min(1, r * amplification)`` of **everything else** —
          shipping, splits, combines and writes all scale with the
          rows that travel.  ``amplification`` (>= 1) models the
          contribution closure dragging unchanged rows along so no
          dataplane sees a combine orphan: 1.0 is the fine-grained
          best case (each changed row is its own island); coarse
          spine mutations push it well above 1.

        Raises ``ValueError`` on a rate outside [0, 1] or
        ``amplification < 1``.
        """
        if amplification < 1.0:
            raise ValueError(
                f"amplification must be >= 1, got {amplification}"
            )
        for rate in change_rates:
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"change rates must be in [0, 1], got {rate}"
                )
        model = self.model(source, target)
        mapping = derive_mapping(
            source_fragmentation, target_fragmentation
        )
        with self.tracer.span("optimize exchange", "sim",
                              order_limit=order_limit or 0):
            best = optimal_exchange(
                mapping, model, self.weights, order_limit
            )
        with self.tracer.span("price exchange", "sim"):
            breakdown = model.breakdown(best.program, best.placement)
        full = breakdown.total
        detect = sum(
            self.weights.computation * model.comp_cost(
                node, best.placement[node.op_id], "row"
            )
            for node in best.program.scans()
        )
        variable = max(0.0, full - detect)
        return [
            DeltaCostEstimate(
                change_rate=rate,
                full_cost=full,
                detect_cost=detect,
                delta_cost=detect + variable * min(
                    1.0, rate * amplification
                ),
            )
            for rate in change_rates
        ]

    # -- Table 5 ------------------------------------------------------------------

    def greedy_quality_trial(self, *, n_fragments: int,
                             source: MachineProfile,
                             target: MachineProfile,
                             rng: random.Random,
                             order_limit: int | None = 200
                             ) -> GreedyQualityTrial:
        """One random-fragmentation trial: optimal vs greedy vs worst."""
        source_fragmentation = random_fragmentation(
            self.schema, n_fragments=n_fragments, rng=rng, name="simS"
        )
        target_fragmentation = random_fragmentation(
            self.schema, n_fragments=n_fragments, rng=rng, name="simT"
        )
        model = self.model(source, target)
        mapping = derive_mapping(
            source_fragmentation, target_fragmentation
        )
        with self.tracer.span("optimal search", "sim",
                              n_fragments=n_fragments):
            best = optimal_exchange(
                mapping, model, self.weights, order_limit
            )
        with self.tracer.span("worst search", "sim",
                              n_fragments=n_fragments):
            worst = worst_exchange(
                mapping, model, self.weights, order_limit
            )
        with self.tracer.span("greedy search", "sim",
                              n_fragments=n_fragments):
            greedy = greedy_exchange(mapping, model, self.weights)
        # A capped enumeration can miss the greedy combine order; fold
        # the greedy program into both search frontiers so the ratios
        # are well defined (greedy/optimal >= 1 by construction).
        greedy_best = cost_based_optim(
            greedy.program, model, self.weights
        )[1]
        greedy_worst = cost_based_pessim(
            greedy.program, model, self.weights
        )[1]
        return GreedyQualityTrial(
            optimal_cost=min(best.cost, greedy_best),
            greedy_cost=greedy.cost,
            worst_cost=max(worst.cost, greedy_worst),
            optimal_seconds=best.elapsed_seconds,
            greedy_seconds=greedy.elapsed_seconds,
        )
