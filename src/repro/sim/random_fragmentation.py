"""Random valid fragmentations (Section 5.4's random fragment sets)."""

from __future__ import annotations

import random

from repro.errors import FragmentationError
from repro.core.fragmentation import Fragmentation
from repro.schema.model import SchemaTree


def random_fragmentation(schema: SchemaTree, *, n_fragments: int,
                         rng: random.Random | None = None,
                         seed: int | None = None,
                         name: str = "random") -> Fragmentation:
    """Draw a uniform random valid fragmentation with exactly
    ``n_fragments`` fragments.

    A valid fragmentation of a tree schema is determined by its set of
    fragment roots (the schema root plus any subset of other elements),
    so we sample ``n_fragments - 1`` distinct non-root elements.

    Raises:
        FragmentationError: if ``n_fragments`` is out of range.
        ValueError: if both or neither of ``rng``/``seed`` are given.
    """
    if (rng is None) == (seed is None):
        raise ValueError("pass exactly one of rng= or seed=")
    if rng is None:
        rng = random.Random(seed)
    elements = schema.element_names()
    if not 1 <= n_fragments <= len(elements):
        raise FragmentationError(
            f"n_fragments must be in [1, {len(elements)}], "
            f"got {n_fragments}"
        )
    non_root = [
        element for element in elements if element != schema.root.name
    ]
    extra_roots = rng.sample(non_root, n_fragments - 1)
    return Fragmentation.from_roots(
        schema, [schema.root.name, *extra_roots], name
    )
