"""WSDL 1.1 (subset) with the paper's fragmentation extension.

:mod:`repro.wsdl.model` covers the parts of WSDL the paper manipulates
(definitions, embedded XML Schema types, service/port/binding and
documentation — Figure 1); :mod:`repro.wsdl.extension` adds the
``<fragmentation>``/``<fragment>`` elements of Section 3.1 with which a
system advertises the document fragments it is willing to produce or
consume.
"""

from repro.wsdl.extension import (
    fragment_from_element,
    fragment_to_element,
    fragmentation_from_element,
    fragmentation_to_element,
)
from repro.wsdl.model import (
    Definitions,
    Port,
    Service,
    parse_wsdl,
    serialize_wsdl,
)

__all__ = [
    "Definitions",
    "Service",
    "Port",
    "parse_wsdl",
    "serialize_wsdl",
    "fragment_to_element",
    "fragment_from_element",
    "fragmentation_to_element",
    "fragmentation_from_element",
]
