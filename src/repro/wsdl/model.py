"""The WSDL 1.1 subset of Figure 1.

A :class:`Definitions` holds embedded schema types, services with their
ports, and — via the extension of Section 3.1 — registered
fragmentations.  Message/portType/binding details beyond what Figure 1
shows are intentionally out of scope (the paper omits them too).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WsdlError
from repro.xmlkit.tree import Element, parse_tree
from repro.xmlkit.writer import serialize

WSDL_NS = "http://schemas.xmlsoap.org/wsdl/"
SOAP_NS = "http://schemas.xmlsoap.org/wsdl/soap/"


@dataclass(slots=True)
class Port:
    """A service port: name, binding reference and SOAP address."""

    name: str
    binding: str
    address: str


@dataclass(slots=True)
class Service:
    """A named service with documentation and ports."""

    name: str
    documentation: str = ""
    ports: list[Port] = field(default_factory=list)


@dataclass(slots=True)
class Definitions:
    """A WSDL document: name, namespace, types, services, extensions."""

    name: str
    target_namespace: str = ""
    #: Raw embedded ``<schema>``/extension elements from ``<types>``.
    types: list[Element] = field(default_factory=list)
    services: list[Service] = field(default_factory=list)

    def service(self, name: str) -> Service:
        """Return the service called ``name``.

        Raises:
            WsdlError: if it does not exist.
        """
        for service in self.services:
            if service.name == name:
                return service
        raise WsdlError(f"no service {name!r} in definitions "
                        f"{self.name!r}")

    def find_extension(self, local_name: str) -> Element | None:
        """First ``<types>`` child with the given local name."""
        for element in self.types:
            if element.local_name() == local_name:
                return element
        return None


def serialize_wsdl(definitions: Definitions) -> str:
    """Render a :class:`Definitions` as a WSDL document string."""
    root = Element(
        "definitions",
        {
            "name": definitions.name,
            "targetNamespace": definitions.target_namespace,
            "xmlns": WSDL_NS,
            "xmlns:soap": SOAP_NS,
        },
    )
    if definitions.types:
        types = root.append(Element("types"))
        types.children.extend(definitions.types)
    for service in definitions.services:
        service_element = root.append(
            Element("service", {"name": service.name})
        )
        if service.documentation:
            service_element.append(
                Element("documentation", text=service.documentation)
            )
        for port in service.ports:
            port_element = service_element.append(
                Element(
                    "port",
                    {"name": port.name, "binding": port.binding},
                )
            )
            port_element.append(
                Element("soap:address", {"location": port.address})
            )
    return serialize(root)


def parse_wsdl(text: str) -> Definitions:
    """Parse a WSDL document produced by :func:`serialize_wsdl` (or a
    hand-written one using the same subset).

    Raises:
        WsdlError: if the root element is not ``definitions``.
        XmlSyntaxError: on malformed XML.
    """
    root = parse_tree(text)
    if root.local_name() != "definitions":
        raise WsdlError(f"not a WSDL document: <{root.name}>")
    definitions = Definitions(
        name=root.get("name", "") or "",
        target_namespace=root.get("targetNamespace", "") or "",
    )
    types = root.child("types")
    if types is not None:
        definitions.types.extend(types.children)
    for service_element in root.find_all("service"):
        service = Service(service_element.get("name", "") or "")
        documentation = service_element.child("documentation")
        if documentation is not None:
            service.documentation = documentation.text
        for port_element in service_element.find_all("port"):
            address = ""
            for child in port_element.children:
                if child.local_name() == "address":
                    address = child.get("location", "") or ""
            service.ports.append(
                Port(
                    port_element.get("name", "") or "",
                    port_element.get("binding", "") or "",
                    address,
                )
            )
        definitions.services.append(service)
    return definitions
