"""The WSDL fragmentation extension (Section 3.1).

A fragment is advertised in the paper's XSD-like syntax::

    <fragment name="Order_Service.xsd">
      <element name="Order">
        <attribute name="ID" type="string"/>
        <attribute name="PARENT" type="string"/>
        <element name="Service">
          <element name="ServiceName" type="string"/>
        </element>
      </element>
    </fragment>

and a fragmentation is a named list of fragments.  Serialization needs
only the fragment; parsing needs the agreed XML Schema too (to recover
cardinalities and validate element names), mirroring how the discovery
agency always interprets fragmentations against the registered schema.
"""

from __future__ import annotations

from repro.errors import WsdlError
from repro.core.fragment import Fragment
from repro.core.fragmentation import Fragmentation
from repro.schema.model import SchemaTree
from repro.xmlkit.tree import Element


def fragment_to_element(fragment: Fragment) -> Element:
    """Render one fragment in the paper's extension syntax."""
    schema = fragment.schema

    def render(element_name: str, is_root: bool) -> Element:
        node = schema.node(element_name)
        attrs = {"name": element_name}
        if node.cardinality.repeated and not is_root:
            attrs["maxOccurs"] = "unbounded"
        rendered = Element("element", attrs)
        if is_root:
            rendered.append(
                Element(
                    "attribute", {"name": "ID", "type": "string"}
                )
            )
            rendered.append(
                Element(
                    "attribute", {"name": "PARENT", "type": "string"}
                )
            )
        for attribute in node.attributes:
            rendered.append(
                Element(
                    "attribute",
                    {"name": attribute, "type": "string"},
                )
            )
        children = fragment.children_of(element_name)
        if not children and node.is_leaf:
            rendered.attrs["type"] = "string"
        for child in children:
            rendered.append(render(child.name, False))
        return rendered

    container = Element("fragment", {"name": fragment.name})
    container.append(render(fragment.root_name, True))
    return container


def fragment_from_element(element: Element,
                          schema: SchemaTree) -> Fragment:
    """Parse one ``<fragment>`` element against the agreed schema.

    Raises:
        WsdlError: on structural problems (no root element, unknown
            element names are reported by the Fragment constructor).
    """
    if element.local_name() != "fragment":
        raise WsdlError(f"expected <fragment>, got <{element.name}>")
    roots = element.find_all("element")
    if len(roots) != 1:
        raise WsdlError("a fragment declares exactly one root element")

    names: list[str] = []

    def collect(node: Element) -> None:
        name = node.get("name")
        if not name:
            raise WsdlError("fragment element without a name")
        names.append(name)
        for child in node.find_all("element"):
            collect(child)

    collect(roots[0])
    return Fragment(schema, names, element.get("name"))


def fragmentation_to_element(fragmentation: Fragmentation) -> Element:
    """Render a full fragmentation for registration in ``<types>``."""
    container = Element(
        "fragmentation", {"name": fragmentation.name}
    )
    for fragment in fragmentation:
        container.append(fragment_to_element(fragment))
    return container


def fragmentation_from_element(element: Element,
                               schema: SchemaTree) -> Fragmentation:
    """Parse a ``<fragmentation>`` element against the agreed schema.

    Validity (Definition 3.4) is checked by the Fragmentation
    constructor, so an invalid registration fails here.

    Raises:
        WsdlError: if the element is not a fragmentation.
        FragmentationError: if the fragmentation is invalid.
    """
    if element.local_name() != "fragmentation":
        raise WsdlError(
            f"expected <fragmentation>, got <{element.name}>"
        )
    fragments = [
        fragment_from_element(child, schema)
        for child in element.find_all("fragment")
    ]
    return Fragmentation(
        schema, fragments, element.get("name") or "fragmentation"
    )
