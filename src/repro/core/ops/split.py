"""``Split`` (Definition 3.8): project a fragment into disjoint pieces.

``Split(f, f1, ..., fn)`` partitions ``f``'s elements into fragments
``f1 ... fn``, introducing fresh ``ID``/``PARENT`` exposure on each piece
to preserve the parent/child relationships the schema dictates.

Like ``Combine``, the operation evaluates two ways: :meth:`Split.apply`
over whole instances, and :meth:`Split.apply_batches`, which maps the
instance-level split over each input batch independently — splitting is
row-local, so concatenating the per-batch piece rows reproduces the
materialized output exactly.  Because the n piece streams are drained
by different consumers, undrained piece batches queue inside a shared
(thread-safe) state; at most one input batch is split ahead of the
slowest consumer's need.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.columnar import ColumnBatch, layout_of
from repro.core.fragment import Fragment
from repro.core.instance import FragmentInstance
from repro.core.ops.base import Location, Operation
from repro.core.stream import ResidencyMeter, RowBatch


class Split(Operation):
    """Split ``fragment`` into the given disjoint pieces."""

    kind = "split"

    def __init__(self, fragment: Fragment, pieces: Sequence[Fragment],
                 location: Location | None = None) -> None:
        # Validates that `pieces` partitions `fragment`.
        fragment.split_into(
            [piece.elements for piece in pieces],
            [piece.name for piece in pieces],
        )
        super().__init__((fragment,), tuple(pieces), location)

    @property
    def fragment(self) -> Fragment:
        """The fragment being split."""
        return self.inputs[0]

    @property
    def pieces(self) -> tuple[Fragment, ...]:
        """The output fragments, in positional order."""
        return self.outputs

    def apply(self, instance: FragmentInstance) -> list[FragmentInstance]:
        """Instance-level split (consumes the input)."""
        return instance.split(list(self.pieces))

    def apply_batches(self, batches: Iterable[RowBatch], *,
                      tick: Callable[[float, int], None] | None = None,
                      meter: ResidencyMeter | None = None
                      ) -> list[Iterator[RowBatch]]:
        """Streaming split: one output batch iterator per piece.

        Each pulled input batch is split with the instance-level
        semantics and its piece rows are queued on every piece's
        output; pulling any piece refills from the input as needed.
        Safe to drain from concurrent threads (the parallel executor
        runs each downstream expression in its own task).
        """
        state = _SplitBatchState(self, iter(batches), tick, meter)
        return [state.stream(index) for index in range(len(self.pieces))]

    def apply_column_batches(
        self, batches: Iterable[ColumnBatch], *,
        tick: Callable[[float, int], None] | None = None,
        meter: ResidencyMeter | None = None,
    ) -> "list[Iterator[ColumnBatch]]":
        """Columnar split: pure projection/partition, no tree work.

        Each piece selects the input rows where its root's key column
        is non-null and projects the piece's columns by name — the
        piece root's key becomes its ``id``, the key of its schema
        parent becomes its ``parent`` (fresh ID/PARENT exposure straight
        from existing key columns).  The root piece keeps every row and
        reuses the input's column arrays zero-copy.  Queueing/refill
        discipline matches :meth:`apply_batches`.
        """
        state = _ColumnSplitState(self, iter(batches), tick, meter)
        return [state.stream(index) for index in range(len(self.pieces))]


class _SplitBatchState:
    """Shared refill state behind the piece streams of one Split."""

    def __init__(self, op: Split, batches: Iterator[RowBatch],
                 tick: Callable[[float, int], None] | None,
                 meter: ResidencyMeter | None) -> None:
        self._op = op
        self._batches = batches
        self._tick = tick
        self._meter = meter
        self._lock = threading.Lock()
        self._queues: list[deque[RowBatch]] = [
            deque() for _ in op.pieces
        ]
        self._seqs = [0] * len(op.pieces)
        self._exhausted = False
        self._failure: BaseException | None = None

    def _refill(self) -> None:
        """Split one more input batch into the queues (lock held).

        Raises:
            StopIteration: when the input stream is exhausted.
        """
        batch = next(self._batches)
        started = time.perf_counter()
        in_bytes = batch.estimated_size() if self._meter else 0
        pieces = FragmentInstance(
            self._op.fragment, batch.rows
        ).split(list(self._op.pieces))
        rows = sum(len(piece.rows) for piece in pieces)
        if self._tick is not None:
            self._tick(time.perf_counter() - started, rows)
        for index, piece in enumerate(pieces):
            if not piece.rows:
                continue
            if self._meter is not None:
                self._meter.acquire(
                    len(piece.rows), piece.estimated_size()
                )
            self._queues[index].append(
                RowBatch(piece.fragment, piece.rows, self._seqs[index])
            )
            self._seqs[index] += 1
        if self._meter is not None:
            self._meter.release(len(batch.rows), in_bytes)

    def _pull(self, index: int) -> RowBatch | None:
        with self._lock:
            while not self._queues[index]:
                if self._failure is not None:
                    raise self._failure
                if self._exhausted:
                    return None
                try:
                    self._refill()
                except StopIteration:
                    self._exhausted = True
                except BaseException as exc:
                    self._failure = exc
                    raise
            return self._queues[index].popleft()

    def stream(self, index: int) -> Iterator[RowBatch]:
        while True:
            batch = self._pull(index)
            if batch is None:
                return
            yield batch


class _ColumnSplitState:
    """Shared refill state behind the columnar piece streams.

    Same locking/queueing discipline as :class:`_SplitBatchState`; the
    per-batch work is column projection instead of tree surgery.
    """

    def __init__(self, op: Split, batches: Iterator[ColumnBatch],
                 tick: Callable[[float, int], None] | None,
                 meter: ResidencyMeter | None) -> None:
        self._op = op
        self._batches = batches
        self._tick = tick
        self._meter = meter
        self._lock = threading.Lock()
        self._queues: list[deque[ColumnBatch]] = [
            deque() for _ in op.pieces
        ]
        self._seqs = [0] * len(op.pieces)
        self._exhausted = False
        self._failure: BaseException | None = None
        # Per-piece projection plan: (layout, key column in the input,
        # input column name per piece spec).
        input_layout = layout_of(op.fragment)
        schema = op.fragment.schema
        self._plans = []
        for piece in op.pieces:
            layout = layout_of(piece)
            key_column = input_layout.eid_column(piece.root_name)
            sources: list[str] = []
            for spec in layout.specs:
                if spec.role == "id":
                    sources.append(key_column)
                elif spec.role == "parent":
                    if piece.root_name == op.fragment.root_name:
                        sources.append("parent")
                    else:
                        anchor = schema.parent_name(piece.root_name)
                        sources.append(
                            input_layout.eid_column(anchor)
                        )
                else:
                    sources.append(spec.name)
            self._plans.append((layout, key_column, sources))

    def _refill(self) -> None:
        """Project one more input batch into the queues (lock held).

        Raises:
            StopIteration: when the input stream is exhausted.
        """
        batch = next(self._batches)
        started = time.perf_counter()
        in_bytes = batch.estimated_size() if self._meter else 0
        in_rows = batch.row_count()
        out: list[ColumnBatch | None] = []
        rows = 0
        for index, piece in enumerate(self._op.pieces):
            layout, key_column, sources = self._plans[index]
            keys = batch.column(key_column)
            if key_column == "id":
                kept = None  # the root piece keeps every row
                count = in_rows
            else:
                kept = [position for position, key in enumerate(keys)
                        if key is not None]
                count = len(kept)
            if count == 0:
                out.append(None)
                continue
            if kept is None or count == in_rows:
                columns = [batch.column(name) for name in sources]
            else:
                columns = [
                    [cells[position] for position in kept]
                    for cells in (batch.column(name)
                                  for name in sources)
                ]
            out.append(ColumnBatch(piece, columns,
                                   self._seqs[index], layout))
            rows += count
        if self._tick is not None:
            self._tick(time.perf_counter() - started, rows)
        for index, piece_batch in enumerate(out):
            if piece_batch is None:
                continue
            if self._meter is not None:
                self._meter.acquire(piece_batch.row_count(),
                                    piece_batch.estimated_size())
            self._queues[index].append(piece_batch)
            self._seqs[index] += 1
        if self._meter is not None:
            self._meter.release(in_rows, in_bytes)

    def _pull(self, index: int) -> ColumnBatch | None:
        with self._lock:
            while not self._queues[index]:
                if self._failure is not None:
                    raise self._failure
                if self._exhausted:
                    return None
                try:
                    self._refill()
                except StopIteration:
                    self._exhausted = True
                except BaseException as exc:
                    self._failure = exc
                    raise
            return self._queues[index].popleft()

    def stream(self, index: int) -> Iterator[ColumnBatch]:
        while True:
            batch = self._pull(index)
            if batch is None:
                return
            yield batch
