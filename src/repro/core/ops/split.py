"""``Split`` (Definition 3.8): project a fragment into disjoint pieces.

``Split(f, f1, ..., fn)`` partitions ``f``'s elements into fragments
``f1 ... fn``, introducing fresh ``ID``/``PARENT`` exposure on each piece
to preserve the parent/child relationships the schema dictates.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.fragment import Fragment
from repro.core.instance import FragmentInstance
from repro.core.ops.base import Location, Operation


class Split(Operation):
    """Split ``fragment`` into the given disjoint pieces."""

    kind = "split"

    def __init__(self, fragment: Fragment, pieces: Sequence[Fragment],
                 location: Location | None = None) -> None:
        # Validates that `pieces` partitions `fragment`.
        fragment.split_into(
            [piece.elements for piece in pieces],
            [piece.name for piece in pieces],
        )
        super().__init__((fragment,), tuple(pieces), location)

    @property
    def fragment(self) -> Fragment:
        """The fragment being split."""
        return self.inputs[0]

    @property
    def pieces(self) -> tuple[Fragment, ...]:
        """The output fragments, in positional order."""
        return self.outputs

    def apply(self, instance: FragmentInstance) -> list[FragmentInstance]:
        """Instance-level split (consumes the input)."""
        return instance.split(list(self.pieces))
