"""``Write`` (Definition 3.9): store a fragment at a system.

What "store" means is the executing system's business: the relational
endpoint LOADs rows into the fragment's table (and maintains indexes),
the directory endpoint adds entries under their parents, and a
file-system endpoint would publish documents.  The node records only the
fragment written.  Under the streaming dataplane the delegation is
``endpoint.write_stream(fragment, stream)``: batches are stored as they
arrive (the relational endpoint bulk-loads each batch), so the write
never holds the whole instance.
"""

from __future__ import annotations

from repro.core.fragment import Fragment
from repro.core.ops.base import Location, Operation


class Write(Operation):
    """Store fragment ``fragment`` at the system this node is placed on."""

    kind = "write"

    def __init__(self, fragment: Fragment,
                 location: Location | None = None) -> None:
        super().__init__((fragment,), (), location)

    @property
    def fragment(self) -> Fragment:
        """The fragment this write stores."""
        return self.inputs[0]
