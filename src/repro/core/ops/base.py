"""Base class and location annotation for primitive operations."""

from __future__ import annotations

import enum
import itertools

from repro.core.fragment import Fragment


class Location(enum.Enum):
    """Where an operation executes: the source or the target system.

    Each DAG node carries an S or T annotation (Section 4.1); ``None``
    on an operation means "not yet assigned" during optimization.
    """

    SOURCE = "S"
    TARGET = "T"

    def other(self) -> "Location":
        """The opposite endpoint."""
        return (
            Location.TARGET if self is Location.SOURCE else Location.SOURCE
        )


_op_counter = itertools.count(1)


class Operation:
    """A node of a data-transfer program.

    Attributes:
        inputs: fragments consumed, in positional order.
        outputs: fragments produced, in positional order.
        location: S/T annotation (``None`` until placement).
        op_id: unique id used by renderers and the optimizer.
    """

    kind: str = "op"

    __slots__ = ("inputs", "outputs", "location", "op_id")

    def __init__(self, inputs: tuple[Fragment, ...],
                 outputs: tuple[Fragment, ...],
                 location: Location | None = None) -> None:
        self.inputs = inputs
        self.outputs = outputs
        self.location = location
        self.op_id = next(_op_counter)

    def label(self) -> str:
        """Human-readable label, e.g. ``Combine(Line, Switch)``."""
        names = ", ".join(fragment.name for fragment in self.inputs)
        return f"{type(self).__name__}({names})"

    def __repr__(self) -> str:
        loc = f"@{self.location.value}" if self.location else ""
        return f"<{self.label()}{loc}>"
