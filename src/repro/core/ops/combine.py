"""``Combine`` (Definition 3.7): inline a child fragment into its parent.

``Combine(f1, f2)`` modifies ``f1`` by attaching each ``f2`` row under
the occurrence of ``f2``'s schema parent whose id matches the row's
``PARENT``; the child's ID/PARENT exposure is removed.  Order and
repetition of the inlined element are recovered from the schema
(:meth:`repro.core.instance.ElementData.to_xml` serializes children in
schema order).

Two evaluation strategies share these semantics: :meth:`Combine.apply`
consumes whole materialized instances, and :meth:`Combine.apply_batches`
runs a streaming grouped merge over :class:`~repro.core.stream.RowBatch`
pipelines — child rows are buffered (grouped by their PARENT key, the
frontier of rows still awaiting their parents) while the parent side,
which accumulates the combined result and is the large side in a
combine chain, streams through batch by batch.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Iterator

from repro.errors import OperationError
from repro.core.fragment import Fragment
from repro.core.instance import (
    FragmentInstance,
    FragmentRow,
    row_estimated_size,
)
from repro.core.ops.base import Location, Operation
from repro.core.stream import ResidencyMeter, RowBatch


class Combine(Operation):
    """Combine ``child`` into ``parent`` (both fragments of one schema)."""

    kind = "combine"

    def __init__(self, parent: Fragment, child: Fragment,
                 location: Location | None = None) -> None:
        result = parent.combined_with(child)
        super().__init__((parent, child), (result,), location)

    @property
    def parent_fragment(self) -> Fragment:
        """The fragment being extended."""
        return self.inputs[0]

    @property
    def child_fragment(self) -> Fragment:
        """The fragment being inlined."""
        return self.inputs[1]

    @property
    def result(self) -> Fragment:
        """The combined fragment."""
        return self.outputs[0]

    def apply(self, parent: FragmentInstance,
              child: FragmentInstance) -> FragmentInstance:
        """Instance-level combine (consumes both inputs)."""
        return parent.combine(child, self.result.name)

    def apply_batches(self, parent: Iterable[RowBatch],
                      child: Iterable[RowBatch], *,
                      tick: Callable[[float, int], None] | None = None,
                      meter: ResidencyMeter | None = None
                      ) -> Iterator[RowBatch]:
        """Streaming grouped merge (same semantics as :meth:`apply`).

        The child stream is drained first into a PARENT-keyed frontier
        of pending rows; parent batches then stream through, each row
        adopting its pending children, and are re-emitted under the
        result fragment — so only the child frontier plus one parent
        batch is resident here at any time.  Emitted rows are the
        parent's own row objects in their original order, and children
        attach per anchor in child-feed order: byte-identical to the
        materialized path.

        ``tick(seconds, rows)`` reports local work (excluding upstream
        production time) to the executor's per-operation accounting;
        ``meter`` tracks row residency.

        Raises:
            OperationError: if child rows reference parent occurrences
                that never arrive.  Detection happens at end-of-stream,
                after earlier parent batches were already forwarded
                downstream — a failed streaming run may leave partial
                output behind where the materialized path leaves none.
        """
        result_fragment = self.result
        anchor = self.child_fragment.parent_element()
        parent_name = self.parent_fragment.name
        child_name = self.child_fragment.name

        def generate() -> Iterator[RowBatch]:
            pending: dict[int, list[FragmentRow]] = {}
            for batch in child:
                started = time.perf_counter()
                for row in batch.rows:
                    key = row.parent if row.parent is not None else -1
                    pending.setdefault(key, []).append(row)
                if tick is not None:
                    tick(time.perf_counter() - started, 0)
            seq = 0
            for batch in parent:
                started = time.perf_counter()
                in_rows = len(batch.rows)
                in_bytes = batch.estimated_size() if meter else 0
                attached_rows = 0
                attached_bytes = 0
                for row in batch.rows:
                    for occurrence in row.data.occurrences_of(anchor):
                        group = pending.pop(occurrence.eid, None)
                        if group is None:
                            continue
                        for child_row in group:
                            if meter is not None:
                                attached_rows += 1
                                attached_bytes += row_estimated_size(
                                    child_row
                                )
                            occurrence.add_child(child_row.data)
                out = RowBatch(result_fragment, batch.rows, seq)
                seq += 1
                if tick is not None:
                    tick(time.perf_counter() - started, len(out.rows))
                if meter is not None:
                    meter.acquire(len(out.rows), out.estimated_size())
                    meter.release(in_rows + attached_rows,
                                  in_bytes + attached_bytes)
                yield out
            if pending:
                orphans = sum(len(group) for group in pending.values())
                raise OperationError(
                    f"combine({parent_name!r}, {child_name!r}):"
                    f" {orphans} child rows reference missing parents"
                )

        return generate()
