"""``Combine`` (Definition 3.7): inline a child fragment into its parent.

``Combine(f1, f2)`` modifies ``f1`` by attaching each ``f2`` row under
the occurrence of ``f2``'s schema parent whose id matches the row's
``PARENT``; the child's ID/PARENT exposure is removed.  Order and
repetition of the inlined element are recovered from the schema
(:meth:`repro.core.instance.ElementData.to_xml` serializes children in
schema order).
"""

from __future__ import annotations

from repro.core.fragment import Fragment
from repro.core.instance import FragmentInstance
from repro.core.ops.base import Location, Operation


class Combine(Operation):
    """Combine ``child`` into ``parent`` (both fragments of one schema)."""

    kind = "combine"

    def __init__(self, parent: Fragment, child: Fragment,
                 location: Location | None = None) -> None:
        result = parent.combined_with(child)
        super().__init__((parent, child), (result,), location)

    @property
    def parent_fragment(self) -> Fragment:
        """The fragment being extended."""
        return self.inputs[0]

    @property
    def child_fragment(self) -> Fragment:
        """The fragment being inlined."""
        return self.inputs[1]

    @property
    def result(self) -> Fragment:
        """The combined fragment."""
        return self.outputs[0]

    def apply(self, parent: FragmentInstance,
              child: FragmentInstance) -> FragmentInstance:
        """Instance-level combine (consumes both inputs)."""
        return parent.combine(child, self.result.name)
