"""``Combine`` (Definition 3.7): inline a child fragment into its parent.

``Combine(f1, f2)`` modifies ``f1`` by attaching each ``f2`` row under
the occurrence of ``f2``'s schema parent whose id matches the row's
``PARENT``; the child's ID/PARENT exposure is removed.  Order and
repetition of the inlined element are recovered from the schema
(:meth:`repro.core.instance.ElementData.to_xml` serializes children in
schema order).

Two evaluation strategies share these semantics: :meth:`Combine.apply`
consumes whole materialized instances, and :meth:`Combine.apply_batches`
runs a streaming grouped merge over :class:`~repro.core.stream.RowBatch`
pipelines — child rows are buffered (grouped by their PARENT key, the
frontier of rows still awaiting their parents) while the parent side,
which accumulates the combined result and is the large side in a
combine chain, streams through batch by batch.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Callable, Iterable, Iterator

from repro.errors import OperationError
from repro.core.columnar import ColumnBatch, layout_of
from repro.core.fragment import Fragment
from repro.core.instance import (
    FragmentInstance,
    FragmentRow,
    combine_orphan_message,
    row_estimated_size,
)
from repro.core.ops.base import Location, Operation
from repro.core.stream import ResidencyMeter, RowBatch

#: Join strategies of the columnar combine.
JOIN_STRATEGIES = ("hash", "merge")

#: Columnar build-side stand-in for a NULL PARENT key.  It orders
#: strictly before every real eid (so the merge join's sortedness check
#: and binary search stay valid) and can never equal one — unlike the
#: old sentinel ``-1``, which a genuine negative eid would collide
#: with.  Orphan reports translate it back to ``None``.
_NO_PARENT = float("-inf")


class Combine(Operation):
    """Combine ``child`` into ``parent`` (both fragments of one schema)."""

    kind = "combine"

    def __init__(self, parent: Fragment, child: Fragment,
                 location: Location | None = None) -> None:
        result = parent.combined_with(child)
        super().__init__((parent, child), (result,), location)

    @property
    def parent_fragment(self) -> Fragment:
        """The fragment being extended."""
        return self.inputs[0]

    @property
    def child_fragment(self) -> Fragment:
        """The fragment being inlined."""
        return self.inputs[1]

    @property
    def result(self) -> Fragment:
        """The combined fragment."""
        return self.outputs[0]

    def apply(self, parent: FragmentInstance,
              child: FragmentInstance) -> FragmentInstance:
        """Instance-level combine (consumes both inputs)."""
        return parent.combine(child, self.result.name)

    def apply_batches(self, parent: Iterable[RowBatch],
                      child: Iterable[RowBatch], *,
                      tick: Callable[[float, int], None] | None = None,
                      meter: ResidencyMeter | None = None
                      ) -> Iterator[RowBatch]:
        """Streaming grouped merge (same semantics as :meth:`apply`).

        The child stream is drained first into a PARENT-keyed frontier
        of pending rows; parent batches then stream through, each row
        adopting its pending children, and are re-emitted under the
        result fragment — so only the child frontier plus one parent
        batch is resident here at any time.  Emitted rows are the
        parent's own row objects in their original order, and children
        attach per anchor in child-feed order: byte-identical to the
        materialized path.

        ``tick(seconds, rows)`` reports local work (excluding upstream
        production time) to the executor's per-operation accounting;
        ``meter`` tracks row residency.

        Raises:
            OperationError: if child rows reference parent occurrences
                that never arrive.  Detection happens at end-of-stream,
                after earlier parent batches were already forwarded
                downstream — a failed streaming run may leave partial
                output behind where the materialized path leaves none.
        """
        result_fragment = self.result
        anchor = self.child_fragment.parent_element()
        parent_name = self.parent_fragment.name
        child_name = self.child_fragment.name

        def generate() -> Iterator[RowBatch]:
            pending: dict[int | None, list[FragmentRow]] = {}
            for batch in child:
                started = time.perf_counter()
                for row in batch.rows:
                    # None keys can never match an anchor eid, so such
                    # rows simply stay pending and surface as orphans;
                    # folding them onto -1 (the old sentinel) would
                    # collide with a genuine negative eid.
                    pending.setdefault(row.parent, []).append(row)
                if tick is not None:
                    tick(time.perf_counter() - started, 0)
            seq = 0
            for batch in parent:
                started = time.perf_counter()
                in_rows = len(batch.rows)
                in_bytes = batch.estimated_size() if meter else 0
                attached_rows = 0
                attached_bytes = 0
                for row in batch.rows:
                    for occurrence in row.data.occurrences_of(anchor):
                        group = pending.pop(occurrence.eid, None)
                        if group is None:
                            continue
                        for child_row in group:
                            if meter is not None:
                                attached_rows += 1
                                attached_bytes += row_estimated_size(
                                    child_row
                                )
                            occurrence.add_child(child_row.data)
                out = RowBatch(result_fragment, batch.rows, seq)
                seq += 1
                if tick is not None:
                    tick(time.perf_counter() - started, len(out.rows))
                if meter is not None:
                    meter.acquire(len(out.rows), out.estimated_size())
                    meter.release(in_rows + attached_rows,
                                  in_bytes + attached_bytes)
                yield out
            if pending:
                orphan_keys = [
                    key for key, group in pending.items()
                    for _ in group
                ]
                raise OperationError(combine_orphan_message(
                    parent_name, child_name, orphan_keys
                ))

        return generate()

    def apply_column_batches(
        self, parent: Iterable[ColumnBatch],
        child: Iterable[ColumnBatch], *,
        tick: Callable[[float, int], None] | None = None,
        meter: ResidencyMeter | None = None,
        observe: Callable[[str, int, int], None] | None = None,
        force: str | None = None,
    ) -> Iterator[ColumnBatch]:
        """Columnar build/probe join (same semantics as :meth:`apply`).

        **Build**: the child stream — the small side, since a combine
        chain accumulates everything into the parent — is drained into
        consolidated column arrays plus a join index on its PARENT key.
        **Probe**: parent batches stream through; each parent row's
        anchor key (its own ``id`` when the anchor is the parent root,
        the anchor's ``eid`` column otherwise) probes the index, and
        result columns are assembled without building a single tree:
        parent-derived columns are reused zero-copy, child-derived
        columns are gathered by match position.

        Strategy selection: the sorted-outer-union feeds arrive
        ``ORDER BY parent, id``, so when the child's PARENT keys are
        observed non-decreasing during the build the probe runs a
        **merge** join (binary search on the sorted key array); shuffled
        feeds fall back to a **hash** join (dict index).  ``force``
        pins ``"hash"`` or ``"merge"`` regardless (a forced merge over
        unsorted keys sorts a permutation first).

        ``observe(strategy, build_rows, probe_rows)`` fires once after
        probing, feeding the ``join.*`` metrics.

        Raises:
            OperationError: end-of-stream, listing orphaned PARENT
                keys, exactly as the row paths do.
        """
        if force is not None and force not in JOIN_STRATEGIES:
            raise OperationError(
                f"unknown join strategy {force!r} "
                f"(expected one of {JOIN_STRATEGIES})"
            )
        result_fragment = self.result
        result_layout = layout_of(result_fragment)
        parent_fragment = self.parent_fragment
        child_fragment = self.child_fragment
        parent_layout = layout_of(parent_fragment)
        child_layout = layout_of(child_fragment)
        anchor = child_fragment.parent_element()
        anchor_column = parent_layout.eid_column(anchor)
        child_elements = child_fragment.elements
        child_root = child_fragment.root_name

        # Result columns come from one side each: (from_child, name).
        column_plan: list[tuple[bool, str]] = []
        for spec in result_layout.specs:
            if spec.role in ("id", "parent"):
                column_plan.append((False, spec.name))
            elif spec.element in child_elements:
                source = ("id" if spec.role == "eid"
                          and spec.element == child_root else spec.name)
                column_plan.append((True, source))
            else:
                column_plan.append((False, spec.name))

        def generate() -> Iterator[ColumnBatch]:
            # ---- build: drain the child side into column arrays ----
            keys: list[int | float] = []
            child_columns: dict[str, list] = {
                name: [] for from_child, name in column_plan
                if from_child
            }
            child_sizes: list[int] = []
            sorted_keys = True
            for batch in child:
                started = time.perf_counter()
                for key in batch.column("parent"):
                    normalized = _NO_PARENT if key is None else key
                    if keys and normalized < keys[-1]:
                        sorted_keys = False
                    keys.append(normalized)
                for name, cells in child_columns.items():
                    cells.extend(batch.column(name))
                if meter is not None:
                    child_sizes.extend(batch.row_sizes())
                if tick is not None:
                    tick(time.perf_counter() - started, 0)

            strategy = force or ("merge" if sorted_keys else "hash")
            build_rows = len(keys)
            matched = [False] * build_rows
            if strategy == "merge":
                if sorted_keys:
                    order = None
                    probe_keys = keys
                else:
                    order = sorted(range(build_rows),
                                   key=keys.__getitem__)
                    probe_keys = [keys[i] for i in order]

                def lookup(key: int) -> int | None:
                    index = bisect_left(probe_keys, key)
                    if (index < build_rows
                            and probe_keys[index] == key):
                        return order[index] if order else index
                    return None
            else:
                by_key = {key: index
                          for index, key in enumerate(keys)}

                def lookup(key: int) -> int | None:
                    return by_key.get(key)

            # ---- probe: stream parent batches through the index ----
            probe_rows = 0
            seq = 0
            for batch in parent:
                started = time.perf_counter()
                in_rows = batch.row_count()
                in_bytes = batch.estimated_size() if meter else 0
                probe_rows += in_rows
                anchor_cells = batch.column(anchor_column)
                matches: list[int | None] = [
                    None if key is None else lookup(key)
                    for key in anchor_cells
                ]
                out_columns: list[list] = []
                for from_child, name in column_plan:
                    if from_child:
                        cells = child_columns[name]
                        out_columns.append([
                            None if hit is None else cells[hit]
                            for hit in matches
                        ])
                    else:
                        out_columns.append(batch.column(name))
                attached_rows = 0
                attached_bytes = 0
                for hit in matches:
                    if hit is None:
                        continue
                    matched[hit] = True
                    if meter is not None:
                        attached_rows += 1
                        attached_bytes += child_sizes[hit]
                out = ColumnBatch(result_fragment, out_columns, seq,
                                  result_layout)
                seq += 1
                if tick is not None:
                    tick(time.perf_counter() - started,
                         out.row_count())
                if meter is not None:
                    meter.acquire(out.row_count(),
                                  out.estimated_size())
                    meter.release(in_rows + attached_rows,
                                  in_bytes + attached_bytes)
                yield out
            if observe is not None:
                observe(strategy, build_rows, probe_rows)
            if not all(matched):
                raise OperationError(combine_orphan_message(
                    parent_fragment.name, child_fragment.name,
                    [None if keys[index] == _NO_PARENT else keys[index]
                     for index, hit in enumerate(matched) if not hit],
                ))

        return generate()
