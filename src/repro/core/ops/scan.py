"""``Scan`` (Definition 3.6): read a fragment from a system's store.

``Scan(f)`` returns the instance of ``f`` and computes the ``ID`` and
``PARENT`` attributes of each row.  How that happens is the producing
system's business — a relational endpoint runs a SQL query, a directory
endpoint walks its tree — so the executor delegates to the endpoint and
this node only records *which* fragment is read.  Under the streaming
dataplane the delegation is ``endpoint.scan_stream(fragment,
batch_rows)``: the endpoint yields the same feed as bounded
:class:`~repro.core.stream.RowBatch` slices instead of one whole
instance.
"""

from __future__ import annotations

from repro.core.fragment import Fragment
from repro.core.ops.base import Location, Operation


class Scan(Operation):
    """Read fragment ``fragment`` from the system it is stored at."""

    kind = "scan"

    def __init__(self, fragment: Fragment,
                 location: Location | None = None) -> None:
        super().__init__((fragment,), (fragment,), location)

    @property
    def fragment(self) -> Fragment:
        """The fragment this scan produces."""
        return self.outputs[0]
