"""The four primitive operations on fragments (Definitions 3.6–3.9).

``Scan`` and ``Write`` are the endpoint-facing operations (each system
implements its own, hiding its internal store); ``Combine`` and ``Split``
are the structural operations the middleware reasons about.  Operation
objects are *descriptions* — DAG nodes holding the fragments they consume
and produce plus a location annotation (S or T); the instance-level
semantics live in :mod:`repro.core.instance` and are invoked by the
program executor.
"""

from repro.core.ops.base import Location, Operation
from repro.core.ops.combine import Combine
from repro.core.ops.scan import Scan
from repro.core.ops.split import Split
from repro.core.ops.write import Write

__all__ = ["Location", "Operation", "Scan", "Combine", "Split", "Write"]
