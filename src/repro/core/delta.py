"""Incremental delta exchange: ship only rows changed since a sync.

A full exchange re-ships the entire source instance even when almost
nothing changed since the previous run.  This module adds the
version-aware machinery that makes repeated synchronization cheap while
keeping the merged target *byte-identical* to a full re-exchange:

* :class:`VersionLog` — a monotone per-endpoint version counter plus
  per-row stamps and delete :class:`Tombstone` records.  Endpoints with
  versioning enabled stamp every scanned :class:`~repro.core.instance.
  FragmentRow` with the version at which it last changed.
* :func:`compute_delta` — given the last synced version, derives the
  :class:`DeltaSet`: which source rows must ship, which target rows
  must be merged (upserted), and which target rows must be deleted.
* :class:`DeltaSourceView` / :class:`DeltaTargetView` — endpoint
  wrappers that filter the scan side to the ship set and turn the
  write side into an eid-keyed merge.  They present the ordinary
  endpoint data interface, so the existing transfer program runs
  unmodified over any dataplane (materialized, parallel, streaming,
  columnar).

**Why shipping just the changed rows is not enough.**  A changed source
row rebuilds the target rows it contributes to — but those target rows
may also take contributions from *unchanged* source rows (a Combine
attaches child pieces under parent occurrences).  Conversely a shipped
child piece needs its parent piece present or Combine reports orphans.
:func:`compute_delta` therefore closes the changed set over the
bipartite source-row ↔ target-row contribution graph: an affected
target row pulls in all its contributing source rows, and every target
row a shipped source row touches becomes affected in turn.  At the
fixpoint the program sees a self-consistent sub-feed, every produced
target row is in the affected set, and no dataplane can see an orphan.
"""

from __future__ import annotations

import hashlib
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.errors import EndpointError, FragmentationError
from repro.core.columnar import ColumnBatch
from repro.core.fragment import Fragment
from repro.core.instance import FragmentInstance, FragmentRow
from repro.core.stream import DEFAULT_BATCH_ROWS, FragmentStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.services.endpoint import SystemEndpoint


@dataclass(frozen=True, slots=True)
class Tombstone:
    """Deletion record for one source row.

    ``occurrences`` keeps the ``(eid, element)`` pair of every element
    occurrence the row held when it died: delta computation uses them
    to find the target rows that were rooted inside the deleted row
    (those become target deletes) without needing the data back.
    ``parent`` is the row's PARENT reference at delete time — if that
    occurrence survives, its containing target row lost a child and
    must be rebuilt.
    """

    version: int
    fragment: str
    eid: int
    parent: int | None
    occurrences: tuple[tuple[int, str], ...]


class VersionLog:
    """Monotone version counter plus per-row stamps for one endpoint.

    ``current`` only moves forward; every mutation batch
    (:meth:`~repro.services.endpoint.SystemEndpoint.apply_changes`)
    bumps it once and stamps the touched rows with the new value.
    Thread-safe — endpoints are scanned and mutated from executor
    worker threads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.current = 0
        self._stamps: dict[str, dict[int, int]] = {}
        self.tombstones: list[Tombstone] = []

    def bump(self) -> int:
        """Advance and return the current version."""
        with self._lock:
            self.current += 1
            return self.current

    def stamp(self, fragment_name: str, eid: int,
              version: int | None = None) -> int:
        """Record that row ``eid`` of ``fragment_name`` last changed at
        ``version`` (default: the current version)."""
        with self._lock:
            value = self.current if version is None else version
            self._stamps.setdefault(fragment_name, {})[eid] = value
            return value

    def version_of(self, fragment_name: str, eid: int) -> int:
        """The stamped version of one row (0 when never stamped)."""
        with self._lock:
            return self._stamps.get(fragment_name, {}).get(eid, 0)

    def stamp_rows(self, fragment_name: str,
                   rows: Iterable[FragmentRow]) -> None:
        """Write the stored stamps onto scanned rows — the feed-side
        version stamping of a versioned endpoint."""
        with self._lock:
            stamps = self._stamps.get(fragment_name, {})
            for row in rows:
                row.version = stamps.get(row.eid, 0)

    def record_delete(self, fragment_name: str, row: FragmentRow,
                      version: int | None = None) -> Tombstone:
        """Tombstone ``row`` (drops its stamp; keeps its occurrence
        eids for delta computation)."""
        occurrences = tuple(
            (node.eid, node.name) for node in row.data.iter_all()
        )
        with self._lock:
            value = self.current if version is None else version
            tombstone = Tombstone(
                value, fragment_name, row.eid, row.parent, occurrences
            )
            self.tombstones.append(tombstone)
            self._stamps.get(fragment_name, {}).pop(row.eid, None)
            return tombstone

    def tombstones_since(self, since: int) -> list[Tombstone]:
        """Tombstones recorded after version ``since``."""
        with self._lock:
            return [
                tombstone for tombstone in self.tombstones
                if tombstone.version > since
            ]


@dataclass(slots=True)
class DeltaSet:
    """What one delta run must ship, merge and delete.

    All three maps are keyed by fragment *name*: ``ship`` holds source
    row eids the program must re-read, ``affected`` the target row eids
    the write side merges (every row the filtered program produces is
    in here, by the closure argument in the module docstring), and
    ``deletes`` the target row eids that vanished at the source.
    """

    since: int
    high: int
    ship: dict[str, set[int]] = field(default_factory=dict)
    affected: dict[str, set[int]] = field(default_factory=dict)
    deletes: dict[str, set[int]] = field(default_factory=dict)
    changed_rows: int = 0
    total_rows: int = 0

    @property
    def shipped_rows(self) -> int:
        """Source rows the filtered scans will produce."""
        return sum(len(eids) for eids in self.ship.values())

    @property
    def deleted_rows(self) -> int:
        """Target rows the merge will delete."""
        return sum(len(eids) for eids in self.deletes.values())

    def is_empty(self) -> bool:
        """Whether nothing changed since ``since``."""
        return not self.ship and not self.deletes


def compute_delta(source: "SystemEndpoint",
                  source_fragments: Sequence[Fragment],
                  target_fragments: Sequence[Fragment],
                  since: int) -> DeltaSet:
    """Derive the :class:`DeltaSet` for one delta run.

    Scans the source instance locally (nothing here crosses the wire
    — the executor re-reads only the filtered feed through
    :class:`DeltaSourceView`), seeds the affected target rows from
    version stamps newer than ``since`` and from tombstones, then
    closes over the source-row ↔ target-row contribution graph so the
    filtered program is orphan-free on every dataplane.

    Raises:
        EndpointError: if ``source`` has no version log.
        FragmentationError: if an occurrence resolves to no target row
            (the target fragmentation does not cover the schema).
    """
    log = getattr(source, "versions", None)
    if log is None:
        raise EndpointError(
            f"endpoint {source.name!r} has no version log; call "
            "enable_versioning() before delta exchange"
        )
    delta = DeltaSet(since=since, high=log.current)

    # One full local scan, stamped with stored versions.
    rows_by_fragment: dict[str, list[FragmentRow]] = {}
    for fragment in source_fragments:
        instance = source.scan(fragment)
        log.stamp_rows(fragment.name, instance.rows)
        rows_by_fragment[fragment.name] = instance.rows

    # Occurrence maps over the current instance: element name, parent
    # occurrence (within-row tree edges plus the cross-row PARENT
    # reference of each row root).
    element_of: dict[int, str] = {}
    parent_of: dict[int, int | None] = {}
    for rows in rows_by_fragment.values():
        for row in rows:
            parent_of[row.data.eid] = row.parent
            for node in row.data.iter_all():
                element_of[node.eid] = node.name
                for group in node.children.values():
                    for child in group:
                        parent_of[child.eid] = node.eid

    target_by_root = {
        fragment.root_name: fragment.name
        for fragment in target_fragments
    }

    # target_of(eid): the target row containing an occurrence — the
    # nearest ancestor-or-self occurrence whose element roots a target
    # fragment.  Memoized along the walked trail.
    target_memo: dict[int, tuple[str, int]] = {}

    def target_of(eid: int) -> tuple[str, int]:
        trail: list[int] = []
        cursor: int | None = eid
        while True:
            if cursor is None:
                raise FragmentationError(
                    f"occurrence {eid} resolves to no target row; the "
                    "target fragmentation does not cover the schema"
                )
            hit = target_memo.get(cursor)
            if hit is not None:
                break
            target_name = target_by_root.get(element_of[cursor])
            if target_name is not None:
                hit = (target_name, cursor)
                target_memo[cursor] = hit
                break
            trail.append(cursor)
            cursor = parent_of.get(cursor)
        for walked in trail:
            target_memo[walked] = hit
        return hit

    # The bipartite contribution graph.
    row_targets: dict[tuple[str, int], set[tuple[str, int]]] = {}
    contributors: dict[tuple[str, int], set[tuple[str, int]]] = {}
    changed: list[tuple[str, int]] = []
    for name, rows in rows_by_fragment.items():
        for row in rows:
            delta.total_rows += 1
            source_key = (name, row.eid)
            targets = {
                target_of(node.eid) for node in row.data.iter_all()
            }
            row_targets[source_key] = targets
            for target_key in targets:
                contributors.setdefault(target_key, set()).add(
                    source_key
                )
            if row.version > since:
                changed.append(source_key)
    delta.changed_rows = len(changed)

    # Seed the affected targets: every target a changed row touches,
    # plus (for deletions) the surviving target row that contained the
    # deleted row.  Target rows rooted *inside* a deleted row are gone
    # outright — they become target deletes.
    affected: set[tuple[str, int]] = set()
    work: deque[tuple[str, int]] = deque()

    def mark(target_key: tuple[str, int]) -> None:
        if target_key not in affected:
            affected.add(target_key)
            work.append(target_key)

    for source_key in changed:
        for target_key in row_targets[source_key]:
            mark(target_key)
    for tombstone in log.tombstones_since(since):
        for occurrence_eid, element in tombstone.occurrences:
            target_name = target_by_root.get(element)
            if target_name is not None:
                delta.deletes.setdefault(target_name, set()).add(
                    occurrence_eid
                )
        if tombstone.parent is not None \
                and tombstone.parent in element_of:
            mark(target_of(tombstone.parent))

    # Fixpoint closure: affected targets pull all their contributing
    # source rows; shipped rows make their other targets affected.
    shipped: set[tuple[str, int]] = set()
    while work:
        target_key = work.popleft()
        for source_key in contributors.get(target_key, ()):
            if source_key in shipped:
                continue
            shipped.add(source_key)
            name, eid = source_key
            delta.ship.setdefault(name, set()).add(eid)
            for other in row_targets[source_key]:
                mark(other)

    for target_name, target_eid in affected:
        delta.affected.setdefault(target_name, set()).add(target_eid)
    # A target row that is rebuilt is not deleted (eid re-creation).
    for target_name, doomed in list(delta.deletes.items()):
        doomed -= delta.affected.get(target_name, set())
        if not doomed:
            del delta.deletes[target_name]
    return delta


class _EndpointView:
    """Delegating endpoint wrapper: everything not delta-related
    (statistics, cost probes, machine profile, ``incremental_writes``)
    passes straight through to the wrapped endpoint."""

    def __init__(self, endpoint: "SystemEndpoint",
                 delta: DeltaSet) -> None:
        self._endpoint = endpoint
        self.delta = delta

    def __getattr__(self, name: str):
        return getattr(self._endpoint, name)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} over {self._endpoint!r}>"


class DeltaSourceView(_EndpointView):
    """Source endpoint view producing only the delta's ship set.

    Filtering preserves the stored feed order, so sorted feeds stay
    sorted and the columnar combine's merge-join auto-selection works
    exactly as on a full run.
    """

    def _keep(self, fragment: Fragment) -> set[int]:
        return self.delta.ship.get(fragment.name, set())

    def scan(self, fragment: Fragment) -> FragmentInstance:
        keep = self._keep(fragment)
        instance = self._endpoint.scan(fragment)
        return FragmentInstance(
            fragment,
            [row for row in instance.rows if row.eid in keep],
        )

    def scan_stream(self, fragment: Fragment,
                    batch_rows: int = DEFAULT_BATCH_ROWS
                    ) -> FragmentStream:
        keep = self._keep(fragment)
        inner = self._endpoint.scan_stream(fragment, batch_rows)
        return FragmentStream.from_rows(
            fragment,
            (row for batch in inner for row in batch.rows
             if row.eid in keep),
            batch_rows,
        )

    def scan_stream_columnar(self, fragment: Fragment,
                             batch_rows: int = DEFAULT_BATCH_ROWS
                             ) -> FragmentStream:
        keep = self._keep(fragment)
        inner = self._endpoint.scan_stream_columnar(
            fragment, batch_rows
        )

        def generate() -> Iterator[ColumnBatch]:
            seq = 0
            for batch in inner:
                filtered = _filter_column_batch(batch, keep, seq)
                if filtered is not None:
                    yield filtered
                    seq += 1

        return FragmentStream(fragment, generate())


def _filter_column_batch(batch: ColumnBatch, keep: set[int],
                         seq: int) -> ColumnBatch | None:
    """Select the batch rows whose ``id`` is in ``keep`` (None when
    none survive — empty batches are simply skipped)."""
    ids = batch.column("id")
    positions = [
        index for index, eid in enumerate(ids) if eid in keep
    ]
    if not positions:
        return None
    if len(positions) == len(ids):
        return ColumnBatch(
            batch.fragment, [batch.column(spec.name)
                             for spec in batch.layout.specs],
            seq, batch.layout,
        )
    columns: list[list] = []
    for spec in batch.layout.specs:
        cells = batch.column(spec.name)
        columns.append([cells[index] for index in positions])
    return ColumnBatch(batch.fragment, columns, seq, batch.layout)


class DeltaTargetView(_EndpointView):
    """Target endpoint view that merges instead of appending.

    Every write becomes an eid-keyed upsert restricted to the delta's
    affected rows (by the closure argument the filter is a no-op on a
    correct program — it is kept as the write-side safety discipline).
    Target-row deletes are applied by the exchange service before the
    program runs, not here.
    """

    def _wanted(self, fragment: Fragment) -> set[int]:
        return self.delta.affected.get(fragment.name, set())

    def write(self, fragment: Fragment,
              instance: FragmentInstance) -> None:
        wanted = self._wanted(fragment)
        self._endpoint.merge_rows(
            fragment,
            [row for row in instance.rows if row.eid in wanted],
        )

    def write_stream(self, fragment: Fragment,
                     stream: FragmentStream) -> None:
        wanted = self._wanted(fragment)
        for batch in stream:
            rows = [row for row in batch.rows if row.eid in wanted]
            if rows:
                self._endpoint.merge_rows(fragment, rows)


def instance_digest(instance: FragmentInstance) -> str:
    """Canonical content digest of one fragment instance.

    Rows are digested in sorted-feed order (the canonical order the
    paper ships), so append-order differences between a delta merge
    and a full rewrite do not register.
    """
    from repro.xmlkit.writer import serialize

    canonical = FragmentInstance(instance.fragment,
                                 list(instance.rows))
    canonical.sort()
    digest = hashlib.sha256()
    for document in canonical.to_xml_documents():
        digest.update(serialize(document, indent=None).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def endpoint_digest(endpoint: "SystemEndpoint",
                    fragments: Iterable[Fragment]) -> str:
    """Content digest of an endpoint's stored fragments — the
    byte-identity yardstick: a delta-merged target must digest equal
    to a freshly full-exchanged one."""
    digest = hashlib.sha256()
    for fragment in sorted(fragments, key=lambda f: f.name):
        digest.update(fragment.name.encode() + b"\x00")
        digest.update(
            instance_digest(endpoint.scan(fragment)).encode()
        )
    return digest.hexdigest()
