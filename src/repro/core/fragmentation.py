"""Fragmentations and their validity (Definitions 3.3 and 3.4).

A fragmentation is a set of fragments of one schema.  It is *valid* iff

(i)  each schema element is defined exactly once across the fragments
     (non-redundant and complete), and
(ii) if there is more than one fragment, every fragment has a parent or
     a child fragment (connectivity).

Because valid fragmentations partition the element set of a tree, the
fragments themselves form a tree: the parent of fragment ``f`` is the
fragment containing the schema parent of ``f``'s root.  That fragment
tree is what constrains combine orderings (Section 4.2).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import FragmentationError
from repro.core.fragment import Fragment
from repro.schema.model import SchemaTree


class Fragmentation:
    """A valid set of fragments over one schema tree."""

    def __init__(self, schema: SchemaTree, fragments: Iterable[Fragment],
                 name: str = "fragmentation") -> None:
        self.schema = schema
        self.name = name
        self.fragments: list[Fragment] = sorted(
            fragments, key=lambda f: schema.depth(f.root_name)
        )
        self._validate()
        self._by_element: dict[str, Fragment] = {}
        self._by_name: dict[str, Fragment] = {}
        for fragment in self.fragments:
            self._by_name[fragment.name] = fragment
            for element in fragment.elements:
                self._by_element[element] = fragment

    def _validate(self) -> None:
        if not self.fragments:
            raise FragmentationError(
                f"fragmentation {self.name!r} has no fragments"
            )
        seen: dict[str, str] = {}
        names: set[str] = set()
        for fragment in self.fragments:
            if fragment.schema is not self.schema:
                raise FragmentationError(
                    f"fragment {fragment.name!r} belongs to another schema"
                )
            if fragment.name in names:
                raise FragmentationError(
                    f"duplicate fragment name {fragment.name!r}"
                )
            names.add(fragment.name)
            for element in fragment.elements:
                if element in seen:
                    raise FragmentationError(
                        f"element {element!r} is defined in both "
                        f"{seen[element]!r} and {fragment.name!r} "
                        "(Definition 3.4 (i))"
                    )
                seen[element] = fragment.name
        missing = set(self.schema.element_names()) - set(seen)
        if missing:
            raise FragmentationError(
                f"fragmentation {self.name!r} does not cover elements "
                f"{sorted(missing)} (Definition 3.4 (i))"
            )
        # (ii) holds automatically for a partition of a tree, but we
        # check it as stated to mirror the definition.
        if len(self.fragments) > 1:
            for fragment in self.fragments:
                if not self._has_neighbor(fragment, seen):
                    raise FragmentationError(
                        f"fragment {fragment.name!r} has no parent or "
                        "child fragment (Definition 3.4 (ii))"
                    )

    def _has_neighbor(self, fragment: Fragment,
                      owner: dict[str, str]) -> bool:
        parent = fragment.parent_element()
        if parent is not None and owner[parent] != fragment.name:
            return True
        for element in fragment.elements:
            for child in self.schema.node(element).children:
                if child.name not in fragment.elements:
                    return True
        return False

    # -- construction -------------------------------------------------------

    @classmethod
    def most_fragmented(cls, schema: SchemaTree,
                        name: str = "MF") -> "Fragmentation":
        """The paper's *MF*: one fragment per schema element."""
        return cls(
            schema,
            [Fragment.single(schema, element)
             for element in schema.element_names()],
            name,
        )

    @classmethod
    def least_fragmented(cls, schema: SchemaTree,
                         name: str = "LF") -> "Fragmentation":
        """The paper's *LF*: inline every element that has a one-to-one
        relation with its parent; fragment boundaries sit exactly at
        repeated (``*``/``+``) elements."""
        roots = [schema.root.name] + [
            node.name
            for node in schema.iter_nodes()
            if node.cardinality.repeated
        ]
        return cls.from_roots(schema, roots, name)

    @classmethod
    def from_roots(cls, schema: SchemaTree, roots: Sequence[str],
                   name: str = "fragmentation") -> "Fragmentation":
        """Cut the schema tree at the given fragment roots.

        Each element is assigned to its nearest ancestor-or-self root.
        The schema root must be among ``roots``.
        """
        root_set = set(roots)
        if schema.root.name not in root_set:
            raise FragmentationError(
                "the schema root must be one of the fragment roots"
            )
        membership: dict[str, set[str]] = {root: set() for root in root_set}

        def assign(element: str, current_root: str) -> None:
            owner = element if element in root_set else current_root
            membership[owner].add(element)
            for child in schema.node(element).children:
                assign(child.name, owner)

        assign(schema.root.name, schema.root.name)
        fragments = [
            Fragment(schema, elements) for elements in membership.values()
        ]
        return cls(schema, fragments, name)

    @classmethod
    def whole_document(cls, schema: SchemaTree,
                       name: str = "document") -> "Fragmentation":
        """The default when a system registers no fragmentation: a single
        fragment covering the entire schema (publish&map behaviour)."""
        return cls(schema, [Fragment.whole(schema)], name)

    # -- lookups -------------------------------------------------------------

    def __iter__(self) -> Iterator[Fragment]:
        return iter(self.fragments)

    def __len__(self) -> int:
        return len(self.fragments)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def fragment(self, name: str) -> Fragment:
        """Return the fragment called ``name``.

        Raises:
            FragmentationError: if there is no such fragment.
        """
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise FragmentationError(
                f"{self.name!r} has no fragment {name!r}"
            ) from exc

    def fragment_of(self, element: str) -> Fragment:
        """Return the unique fragment that defines ``element``."""
        try:
            return self._by_element[element]
        except KeyError as exc:
            raise FragmentationError(
                f"element {element!r} is not covered by {self.name!r}"
            ) from exc

    def parent_fragment(self, fragment: Fragment) -> Fragment | None:
        """The fragment containing the schema parent of ``fragment``'s
        root, or ``None`` for the fragment holding the schema root."""
        parent_element = fragment.parent_element()
        if parent_element is None:
            return None
        return self.fragment_of(parent_element)

    def child_fragments(self, fragment: Fragment) -> list[Fragment]:
        """Fragments whose parent fragment is ``fragment``, in pre-order
        of their roots."""
        return [
            candidate
            for candidate in self.fragments
            if candidate is not fragment
            and self.parent_fragment(candidate) is fragment
        ]

    def root_fragment(self) -> Fragment:
        """The fragment containing the schema root."""
        return self.fragment_of(self.schema.root.name)

    def is_flat_storable(self) -> bool:
        """True if every fragment can be stored as one flat relation."""
        return all(fragment.is_flat_storable() for fragment in self.fragments)

    def __repr__(self) -> str:
        return (
            f"Fragmentation({self.name!r}, "
            f"{[fragment.name for fragment in self.fragments]!r})"
        )
