"""Columnar fragment batches: the vectorized dataplane.

The row dataplane (:mod:`repro.core.stream`) moves one nested
:class:`~repro.core.instance.ElementData` tree per fragment-root
occurrence.  Building those trees at ``Scan`` and flattening them back
at ``Write`` dominates CPU time on the Figure 9 scenarios — the data
spends its whole journey tabular (it comes out of a relational sorted
feed and goes back into a relational bulk load), and the trees exist
only to satisfy the operator API.

This module provides the flat alternative.  A :class:`ColumnBatch`
holds one parallel array per column of the fragment's relational
layout — ``id``, ``parent``, an ``<element>_eid`` key per non-root
element, a text column per leaf, a column per XML attribute — in
exactly the order :class:`~repro.relational.frag_store.
FragmentRelationMapper` stores them, so a columnar scan is a slice of
the raw sorted feed and a columnar write is a straight bulk load.
``Combine`` becomes a build/probe join on the key columns,``Split`` a
column projection; no trees are built anywhere in between.

Invariant: column cells hold the values the *row* dataplane would
store — text cells of present elements are strings (SQL ``NULL``
normalizes to ``""``, mirroring the tree round-trip), cells of absent
elements are ``None``.  That is what keeps the two dataplanes
byte-identical in the target tables for every batch size.

:meth:`ColumnBatch.estimated_size` / :meth:`~ColumnBatch.feed_size`
are computed column-wise but agree exactly with the per-row formulas
(:func:`~repro.core.instance.row_estimated_size` /
:func:`~repro.core.instance.row_feed_size`), so the
:class:`~repro.core.stream.ResidencyMeter` and the channel charge the
same bytes on either dataplane.  Slicing is zero-copy: a slice shares
the parent's column lists and narrows ``start``/``stop``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OperationError
from repro.core.fragment import Fragment
from repro.core.instance import ElementData, FragmentRow
from repro.core.stream import RowBatch


@dataclass(frozen=True, slots=True)
class ColumnSpec:
    """How one column relates to the fragment's elements.

    Roles: ``id`` (fragment-root key), ``parent`` (the PARENT
    reference), ``eid`` (a non-root element's key), ``text`` (a leaf's
    character content), ``attr`` (one declared XML attribute).
    """

    name: str
    role: str  # "id" | "parent" | "eid" | "text" | "attr"
    element: str | None = None
    attribute: str | None = None


class ColumnLayout:
    """The column layout of one (flat-storable) fragment.

    Column order is deterministic from the fragment alone — ``id``,
    ``parent``, then per element in schema pre-order: its ``eid`` key
    (non-root elements), its text (leaves), its attributes.  The
    relational mapper derives its table layout from this same class,
    so a source scan, every combine/split along the program, and the
    target load all agree on positions without negotiation.

    Raises:
        OperationError: if the fragment has repeated inner elements —
            such fragments do not flatten to one row per occurrence
            and must use the row dataplane.
    """

    __slots__ = ("fragment", "specs", "positions")

    def __init__(self, fragment: Fragment) -> None:
        if not fragment.is_flat_storable():
            raise OperationError(
                f"fragment {fragment.name!r} has repeated inner "
                "elements and no flat column layout (use the row "
                "dataplane)"
            )
        self.fragment = fragment
        specs: list[ColumnSpec] = [
            ColumnSpec("id", "id", fragment.root_name),
            ColumnSpec("parent", "parent"),
        ]
        schema = fragment.schema
        for node in schema.iter_nodes():
            element = node.name
            if element not in fragment.elements:
                continue
            if element != fragment.root_name:
                specs.append(
                    ColumnSpec(f"{element.lower()}_eid", "eid", element)
                )
            if node.is_leaf:
                specs.append(
                    ColumnSpec(element.lower(), "text", element)
                )
            for attribute in node.attributes:
                specs.append(
                    ColumnSpec(
                        f"{element.lower()}_{attribute.lower()}",
                        "attr", element, attribute,
                    )
                )
        self.specs = specs
        self.positions = {
            spec.name: index for index, spec in enumerate(specs)
        }

    def __len__(self) -> int:
        return len(self.specs)

    def eid_column(self, element: str) -> str:
        """Name of the column keying ``element``'s occurrences."""
        if element == self.fragment.root_name:
            return "id"
        return f"{element.lower()}_eid"

    # -- row <-> cells --------------------------------------------------------

    def cells_from_row(self, row: FragmentRow) -> list[object]:
        """Flatten one row's tree into this layout's cells."""
        found: dict[str, ElementData] = {}
        elements = self.fragment.elements

        def collect(node: ElementData) -> None:
            found[node.name] = node
            for child_name, group in node.children.items():
                if child_name in elements:
                    for child in group:
                        collect(child)

        collect(row.data)
        cells: list[object] = []
        for spec in self.specs:
            if spec.role == "id":
                cells.append(row.data.eid)
            elif spec.role == "parent":
                cells.append(row.parent)
            else:
                node = found.get(spec.element or "")
                if node is None:
                    cells.append(None)
                elif spec.role == "eid":
                    cells.append(node.eid)
                elif spec.role == "text":
                    cells.append(node.text)
                else:
                    cells.append(node.attrs.get(spec.attribute or ""))
        return cells

    def row_from_cells(self, cells: "list[object] | tuple") -> FragmentRow:
        """Rebuild the nested occurrence from one row of cells."""
        positions = self.positions
        fragment = self.fragment

        def build(element: str) -> ElementData | None:
            eid = cells[positions[self.eid_column(element)]]
            if eid is None:
                return None
            attrs: dict[str, str] = {}
            text = ""
            node_specs = _element_specs(self, element)
            for spec in node_specs:
                value = cells[positions[spec.name]]
                if value is None:
                    continue
                if spec.role == "text":
                    text = str(value)
                elif spec.role == "attr":
                    attrs[spec.attribute or ""] = str(value)
            data = ElementData(element, int(eid), attrs, text)
            for child in fragment.children_of(element):
                built = build(child.name)
                if built is not None:
                    data.add_child(built)
            return data

        root = build(fragment.root_name)
        if root is None:
            raise OperationError(
                f"columnar row of {fragment.name!r} has NULL id"
            )
        parent = cells[positions["parent"]]
        return FragmentRow(root, None if parent is None else int(parent))


def _element_specs(layout: ColumnLayout,
                   element: str) -> list[ColumnSpec]:
    """Text/attr specs belonging to ``element`` (layout order)."""
    return [
        spec for spec in layout.specs
        if spec.element == element and spec.role in ("text", "attr")
    ]


#: Shared layout cache — layouts are pure functions of the fragment.
_LAYOUTS: dict[Fragment, ColumnLayout] = {}


def layout_of(fragment: Fragment) -> ColumnLayout:
    """The (cached) column layout of ``fragment``."""
    layout = _LAYOUTS.get(fragment)
    if layout is None:
        layout = _LAYOUTS[fragment] = ColumnLayout(fragment)
    return layout


class ColumnBatch:
    """An ordered slice of a fragment's feed, stored column-wise.

    Duck-compatible with :class:`~repro.core.stream.RowBatch` where
    the pipeline needs it — ``fragment``/``seq``/``row_count``/
    ``estimated_size``/``feed_size``/``to_instance`` and a lazily
    materialized ``rows`` view — so channels, the reliable shipping
    layer and the residency meter handle either batch kind unchanged.
    """

    __slots__ = ("fragment", "layout", "columns", "seq", "start",
                 "stop", "_rows", "_estimated", "_feed", "_row_sizes")

    def __init__(self, fragment: Fragment, columns: list[list],
                 seq: int, layout: ColumnLayout | None = None,
                 start: int = 0, stop: int | None = None) -> None:
        self.fragment = fragment
        self.layout = layout or layout_of(fragment)
        if len(columns) != len(self.layout.specs):
            raise OperationError(
                f"fragment {fragment.name!r} expects "
                f"{len(self.layout.specs)} columns, got {len(columns)}"
            )
        self.columns = columns
        self.seq = seq
        self.start = start
        self.stop = len(columns[0]) if stop is None else stop
        self._rows: list[FragmentRow] | None = None
        self._estimated: int | None = None
        self._feed: int | None = None
        self._row_sizes: list[int] | None = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_rows(cls, fragment: Fragment, rows: "list[FragmentRow]",
                  seq: int, layout: ColumnLayout | None = None
                  ) -> "ColumnBatch":
        """Flatten row trees into columns (the row→columnar bridge)."""
        layout = layout or layout_of(fragment)
        width = len(layout.specs)
        columns: list[list] = [[] for _ in range(width)]
        for row in rows:
            cells = layout.cells_from_row(row)
            for index in range(width):
                columns[index].append(cells[index])
        return cls(fragment, columns, seq, layout)

    @classmethod
    def from_row_batch(cls, batch: RowBatch,
                       layout: ColumnLayout | None = None
                       ) -> "ColumnBatch":
        """Convert one :class:`RowBatch` (keeps ``seq``)."""
        return cls.from_rows(
            batch.fragment, batch.rows, batch.seq, layout
        )

    # -- zero-copy slicing -----------------------------------------------------

    def slice(self, start: int, stop: int,
              seq: int | None = None) -> "ColumnBatch":
        """A view of rows ``[start, stop)`` sharing the column arrays
        (no cell is copied)."""
        if not 0 <= start <= stop <= self.row_count():
            raise OperationError(
                f"slice [{start}:{stop}) out of range for "
                f"{self.row_count()} rows"
            )
        return ColumnBatch(
            self.fragment, self.columns,
            self.seq if seq is None else seq, self.layout,
            self.start + start, self.start + stop,
        )

    def column(self, name: str) -> list:
        """The cells of column ``name`` for this slice's rows.

        A full-range batch returns the underlying array itself
        (zero-copy); a narrowed view pays one list slice.
        """
        cells = self.columns[self.layout.positions[name]]
        if self.start == 0 and self.stop == len(cells):
            return cells
        return cells[self.start:self.stop]

    # -- RowBatch-compatible surface -------------------------------------------

    def row_count(self) -> int:
        """Number of fragment-root occurrences in the slice."""
        return self.stop - self.start

    @property
    def rows(self) -> list[FragmentRow]:
        """Materialized row view (built once, cached) — the bridge
        back to tree consumers (wire encoding, materializing stores)."""
        if self._rows is None:
            layout = self.layout
            width = len(layout.specs)
            self._rows = [
                layout.row_from_cells(
                    [self.columns[col][index] for col in range(width)]
                )
                for index in range(self.start, self.stop)
            ]
        return self._rows

    def to_row_batch(self) -> RowBatch:
        """This slice as a :class:`RowBatch` (same ``seq``)."""
        return RowBatch(self.fragment, self.rows, self.seq)

    def to_instance(self):
        """A :class:`~repro.core.instance.FragmentInstance` view."""
        from repro.core.instance import FragmentInstance

        return FragmentInstance(self.fragment, self.rows)

    def row_tuples(self) -> list[tuple]:
        """The slice as storage tuples in layout order (what a
        columnar Write bulk-loads, no trees involved)."""
        return list(zip(*(self.column(spec.name)
                          for spec in self.layout.specs)))

    # -- per-column byte accounting ---------------------------------------------

    def column_sizes(self) -> dict[str, int]:
        """Estimated (tagged-XML) bytes attributed to each column.

        The per-element tag overhead rides on the column that keys the
        element (``id``/``eid``); text and attribute columns carry
        their value bytes.  Summing the dict plus the 24-byte ID/PARENT
        exposure per row reproduces :meth:`estimated_size`.
        """
        sizes: dict[str, int] = {}
        layout = self.layout
        for spec in layout.specs:
            cells = self.column(spec.name)
            if spec.role == "id":
                element = spec.element or ""
                sizes[spec.name] = (2 * len(element) + 5) * len(cells)
            elif spec.role == "parent":
                sizes[spec.name] = 0
            elif spec.role == "eid":
                element = spec.element or ""
                tag = 2 * len(element) + 5
                sizes[spec.name] = tag * sum(
                    1 for cell in cells if cell is not None
                )
            elif spec.role == "text":
                sizes[spec.name] = sum(
                    len(str(cell)) for cell in cells if cell is not None
                )
            else:  # attr
                overhead = len(spec.attribute or "") + 4
                sizes[spec.name] = sum(
                    len(str(cell)) + overhead
                    for cell in cells if cell is not None
                )
        return sizes

    def estimated_size(self) -> int:
        """Approximate serialized (tagged XML) size in bytes — agrees
        with the row dataplane's per-row accounting exactly."""
        if self._estimated is None:
            self._estimated = (
                sum(self.column_sizes().values())
                + 24 * self.row_count()
            )
        return self._estimated

    def row_sizes(self) -> list[int]:
        """Per-row estimated sizes (the combine frontier accounting
        releases child rows one by one)."""
        if self._row_sizes is None:
            layout = self.layout
            count = self.row_count()
            sizes = [24] * count
            for spec in layout.specs:
                if spec.role == "parent":
                    continue
                cells = self.column(spec.name)
                if spec.role in ("id", "eid"):
                    tag = 2 * len(spec.element or "") + 5
                    for index, cell in enumerate(cells):
                        if cell is not None:
                            sizes[index] += tag
                elif spec.role == "text":
                    for index, cell in enumerate(cells):
                        if cell is not None:
                            sizes[index] += len(str(cell))
                else:
                    overhead = len(spec.attribute or "") + 4
                    for index, cell in enumerate(cells):
                        if cell is not None:
                            sizes[index] += len(str(cell)) + overhead
            self._row_sizes = sizes
        return self._row_sizes

    def feed_size(self) -> int:
        """Approximate tabular sorted-feed (wire) size in bytes —
        agrees with :func:`~repro.core.instance.row_feed_size`."""
        if self._feed is None:
            total = 8 * self.row_count()  # the PARENT key per row
            for spec in self.layout.specs:
                cells = self.column(spec.name)
                if spec.role in ("id", "eid"):
                    # key + separators per present element; non-leaf
                    # elements carry no text of their own.
                    total += 10 * sum(
                        1 for cell in cells if cell is not None
                    )
                elif spec.role == "text":
                    total += sum(
                        len(str(cell))
                        for cell in cells if cell is not None
                    )
                elif spec.role == "attr":
                    total += sum(
                        len(str(cell))
                        for cell in cells if cell is not None
                    )
            self._feed = total
        return self._feed
