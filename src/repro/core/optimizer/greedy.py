"""The greedy algorithm (Section 4.3).

Program creation: starting from G1 (before combines), combines are added
one by one, cheapest first, with each combine's cost estimated *at the
source*.  Distributed processing: repeatedly probe both systems for the
cost of every unassigned operation; the operation with the largest
absolute cost difference is the one most affected by a wrong placement,
so fix it to its preferred location and propagate (upstream to S or
downstream to T).  When no difference is observed, turn the unassigned
edge with the smallest output fragment into the cross-edge — we avoid
shipping large fragments.
"""

from __future__ import annotations

from repro.errors import PlacementError
from repro.core.cost.model import CostWeights
from repro.core.cost.probe import CostProbe
from repro.core.fragment import Fragment
from repro.core.mapping import Mapping
from repro.core.ops.base import Location, Operation
from repro.core.ops.combine import Combine
from repro.core.optimizer.placement import (
    assign,
    initial_placement,
    resolve_weights,
    unassigned_nodes,
)
from repro.core.program.builder import MergeStep, ProgramBuilder
from repro.core.program.dag import Placement, TransferProgram


def greedy_program(mapping: Mapping, probe: CostProbe) -> TransferProgram:
    """Build one program ordering combines cheapest-first (at S)."""
    builder = ProgramBuilder(mapping)

    def cheapest_merge(items: list[tuple[int, Fragment]]) -> MergeStep:
        best: MergeStep | None = None
        best_cost = float("inf")
        for parent_index, parent_fragment in items:
            for child_index, child_fragment in items:
                if parent_index == child_index:
                    continue
                if not parent_fragment.can_combine(child_fragment):
                    continue
                cost = probe.comp_cost(
                    Combine(parent_fragment, child_fragment),
                    Location.SOURCE,
                )
                if best is None or cost < best_cost:
                    best_cost = cost
                    best = (parent_index, child_index)
        if best is None:
            raise PlacementError(
                "no combinable pair among the remaining pieces"
            )
        return best

    return builder.build(policy=cheapest_merge)


def _try_assign(program: TransferProgram, placement: Placement,
                node: Operation, location: Location) -> bool:
    """Attempt an assignment on a scratch copy; commit only on success."""
    scratch = dict(placement)
    if assign(program, scratch, node, location):
        placement.clear()
        placement.update(scratch)
        return True
    return False


def _fix(program: TransferProgram, placement: Placement,
         node: Operation, preferred: Location) -> None:
    """Place ``node`` at ``preferred``, falling back to the other side.

    Raises:
        PlacementError: if neither side is legal (cannot happen for
            builder-produced programs, but reported rather than looping).
    """
    if _try_assign(program, placement, node, preferred):
        return
    if _try_assign(program, placement, node, preferred.other()):
        return
    raise PlacementError(f"no legal location for {node.label()}")


def _weighted(weight: float, cost: float) -> float:
    """``weight * cost`` with ``0 x inf == 0``: a zero formula-1 weight
    mutes that term outright, never poisoning comparisons with NaN."""
    if weight == 0.0:
        return 0.0
    return weight * cost


def greedy_placement(program: TransferProgram, probe: CostProbe,
                     weights: CostWeights | None = None) -> Placement:
    """Greedy distributed processing (Section 4.3); returns a complete
    legal placement.

    Costs are compared under the formula-1 weights (explicit argument,
    else the probe's own, else 1/1 — the same resolution the exhaustive
    search uses): the preference loop ranks operations by their
    *weighted* computation-cost difference, and the tie-break cuts the
    unassigned edge with the smallest *weighted* communication cost.
    A zero ``computation`` weight therefore sends every operation to
    the tie-break (pure communication minimization), mirroring how the
    exhaustive search degenerates under the same weights.
    """
    weights = resolve_weights(probe, weights)
    w_comp = weights.computation
    w_com = weights.communication
    placement = initial_placement(program, pin_scans=True)
    while True:
        pending = unassigned_nodes(program, placement)
        if not pending:
            break
        best_node: Operation | None = None
        best_diff = 0.0
        best_location = Location.SOURCE
        for node in pending:
            at_source = _weighted(
                w_comp, probe.comp_cost(node, Location.SOURCE)
            )
            at_target = _weighted(
                w_comp, probe.comp_cost(node, Location.TARGET)
            )
            if at_source == at_target:
                continue  # no preference (also covers inf == inf)
            diff = abs(at_source - at_target)
            if diff > best_diff:
                best_diff = diff
                best_node = node
                best_location = (
                    Location.SOURCE if at_source < at_target
                    else Location.TARGET
                )
        if best_node is not None:
            _fix(program, placement, best_node, best_location)
            continue
        # No cost difference anywhere: cut at the cheapest-to-ship edge
        # between two unassigned operations, source side upstream.
        pending_ids = {node.op_id for node in pending}
        candidate_edges = [
            edge for edge in program.edges
            if edge.producer.op_id in pending_ids
            and edge.consumer.op_id in pending_ids
        ]
        if candidate_edges:
            edge = min(
                candidate_edges,
                key=lambda edge: _weighted(
                    w_com, probe.comm_cost(edge.fragment)
                ),
            )
            scratch = dict(placement)
            if (assign(program, scratch, edge.producer, Location.SOURCE)
                    and assign(program, scratch, edge.consumer,
                               Location.TARGET)):
                placement = scratch
                continue
        # Isolated unassigned operations (or a failed tie-break): put
        # the first one at the source (ties favour not shipping twice).
        _fix(program, placement, pending[0], Location.SOURCE)
    program.validate_placement(placement)
    return placement


def greedy_optimize(mapping: Mapping, probe: CostProbe,
                    weights: CostWeights | None = None
                    ) -> tuple[TransferProgram, Placement]:
    """Greedy program creation followed by greedy placement."""
    program = greedy_program(mapping, probe)
    placement = greedy_placement(program, probe, weights)
    return program, placement
