"""Couple combine-order enumeration with placement optimization.

The best program is the least expensive one among those returned by the
cost-based distributed-processing algorithm across combine orderings
(Section 4.2, last paragraph); the worst program charts the optimization
window (Table 5); the greedy search does both choices heuristically in
one pass (Section 4.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.cost.model import CostWeights
from repro.core.cost.probe import CostProbe
from repro.core.mapping import Mapping
from repro.core.optimizer.exhaustive import (
    cost_based_optim,
    cost_based_pessim,
)
from repro.core.optimizer.greedy import greedy_placement, greedy_program
from repro.core.optimizer.placement import placement_cost
from repro.core.program.builder import enumerate_transfer_programs
from repro.core.program.dag import Placement, TransferProgram


@dataclass(slots=True)
class OptimizationResult:
    """A chosen program with its placement and estimated cost."""

    program: TransferProgram
    placement: Placement
    cost: float
    programs_considered: int
    elapsed_seconds: float

    def annotate(self) -> TransferProgram:
        """Write the placement onto the program nodes and return it."""
        self.program.apply_placement(self.placement)
        return self.program


def optimal_exchange(mapping: Mapping, probe: CostProbe,
                     weights: CostWeights | None = None,
                     order_limit: int | None = None) -> OptimizationResult:
    """Exhaustive search: every combine order × ``Cost_Based_Optim``.

    ``order_limit`` caps the number of combine orders considered —
    the paper reports optimal generation becomes impractical beyond
    ~40-node schemas, which is exactly why the cap exists.
    """
    started = time.perf_counter()
    best: OptimizationResult | None = None
    considered = 0
    for program in enumerate_transfer_programs(mapping, order_limit):
        considered += 1
        placement, cost = cost_based_optim(program, probe, weights)
        if best is None or cost < best.cost:
            best = OptimizationResult(
                program, placement, cost, considered, 0.0
            )
    assert best is not None  # a valid mapping always yields >= 1 program
    best.programs_considered = considered
    best.elapsed_seconds = time.perf_counter() - started
    return best


def worst_exchange(mapping: Mapping, probe: CostProbe,
                   weights: CostWeights | None = None,
                   order_limit: int | None = None) -> OptimizationResult:
    """The most expensive program in the search space of Algorithm 1
    (used to assess the optimization opportunity, Section 5.4.2)."""
    started = time.perf_counter()
    worst: OptimizationResult | None = None
    considered = 0
    for program in enumerate_transfer_programs(mapping, order_limit):
        considered += 1
        placement, cost = cost_based_pessim(program, probe, weights)
        if worst is None or cost > worst.cost:
            worst = OptimizationResult(
                program, placement, cost, considered, 0.0
            )
    assert worst is not None
    worst.programs_considered = considered
    worst.elapsed_seconds = time.perf_counter() - started
    return worst


def greedy_exchange(mapping: Mapping, probe: CostProbe,
                    weights: CostWeights | None = None
                    ) -> OptimizationResult:
    """Greedy combine ordering + greedy placement (milliseconds even on
    large schemas, Section 5.4.2)."""
    started = time.perf_counter()
    program = greedy_program(mapping, probe)
    placement = greedy_placement(program, probe, weights)
    cost = placement_cost(program, placement, probe, weights)
    return OptimizationResult(
        program, placement, cost, 1, time.perf_counter() - started
    )
