"""Shared placement machinery for the optimizers.

A placement assigns every operation to S or T.  Legality (Section 4.1):
Scans at the source, Writes at the target, and no T → S edge — data
ships one way.  Assigning an operation to S therefore forces its entire
upstream to S; assigning to T forces its downstream to T.  Both
propagations detect conflicts with earlier assignments, which the
optimizers use to prune illegal branches.
"""

from __future__ import annotations

from repro.core.cost.model import CostWeights
from repro.core.cost.probe import CostProbe
from repro.core.ops.base import Location, Operation
from repro.core.ops.scan import Scan
from repro.core.ops.write import Write
from repro.core.program.dag import Placement, TransferProgram


def initial_placement(program: TransferProgram,
                      pin_scans: bool = False) -> Placement:
    """Algorithm 1's starting point: all Writes pinned to the target.

    Scans can only ever run at the source, but Algorithm 1 leaves them
    unassigned so that *branching on a Scan* produces the placements
    that ship raw fragments (everything downstream at T).  The greedy
    heuristic pins them immediately (``pin_scans=True``) — the "obvious
    choices" of Section 4.2.
    """
    placement: Placement = {}
    for node in program.nodes:
        if isinstance(node, Write):
            placement[node.op_id] = Location.TARGET
        elif pin_scans and isinstance(node, Scan):
            placement[node.op_id] = Location.SOURCE
    return placement


def source_heavy_placement(program: TransferProgram) -> Placement:
    """The Section 5.3 outcome as a fixed plan: everything except the
    Writes runs at the source.  The experiment harness uses this to
    reproduce the paper's measured configuration exactly (Table 3's
    "communicated fragments depend only on the fragmentation of the
    target"); the optimizer is free to do better (e.g. splitting at the
    target when the source feeds are smaller to ship)."""
    return {
        node.op_id: (
            Location.TARGET if isinstance(node, Write)
            else Location.SOURCE
        )
        for node in program.nodes
    }


def assign(program: TransferProgram, placement: Placement,
           node: Operation, location: Location) -> bool:
    """Assign ``node`` to ``location`` and propagate the closure.

    Source assignments pull the upstream to S; target assignments push
    the downstream to T (lines 8–12 of Algorithm 1).  Returns False —
    leaving ``placement`` partially updated — when the assignment
    conflicts with an existing one; callers treat that as a pruned
    branch (they work on copies).
    """
    existing = placement.get(node.op_id)
    if existing is not None:
        return existing is location
    placement[node.op_id] = location
    if location is Location.SOURCE:
        closure = program.upstream_closure(node)
    else:
        closure = program.downstream_closure(node)
    for op_id in closure:
        current = placement.get(op_id)
        if current is None:
            placement[op_id] = location
        elif current is not location:
            return False
    return True


def unassigned_nodes(program: TransferProgram,
                     placement: Placement) -> list[Operation]:
    """Operations without a location yet, in topological order."""
    order = program.topological_order()
    return [node for node in order if node.op_id not in placement]


def resolve_weights(probe: CostProbe,
                    weights: CostWeights | None) -> CostWeights:
    """Explicit weights win; otherwise inherit the probe's own (a
    CostModel carries its weights), falling back to 1/1."""
    if weights is not None:
        return weights
    probe_weights = getattr(probe, "weights", None)
    if isinstance(probe_weights, CostWeights):
        return probe_weights
    return CostWeights()


def placement_cost(program: TransferProgram, placement: Placement,
                   probe: CostProbe,
                   weights: CostWeights | None = None) -> float:
    """Formula 1 for an arbitrary probe (the optimizers' objective)."""
    weights = resolve_weights(probe, weights)
    computation = sum(
        probe.comp_cost(node, placement[node.op_id])
        for node in program.nodes
    )
    communication = sum(
        probe.comm_cost(edge.fragment)
        for edge in program.cross_edges(placement)
    )
    return (
        weights.computation * computation
        + weights.communication * communication
    )
