"""Algorithm 1: ``Cost_Based_Optim`` — exhaustive placement search.

Two implementations of the same search space:

* :func:`cost_based_optim_literal` — the worklist algorithm exactly as
  printed in the paper (branch: pick an unassigned operation, make it
  the last source-side operation on its paths, propagate closures),
  with the footnote's deduplication.  Kept for fidelity and used by the
  tests to cross-check the fast search on small programs; its partial-
  state space explodes on larger programs, which is the paper's own
  observation ("optimal program generation takes too long for XML
  Schemas with more than 40 nodes").
* :func:`cost_based_optim` — an equivalent enumeration that walks the
  DAG in topological order.  A placement is legal iff its source-side
  node set is downward closed (no T → S edge), so each non-Scan/Write
  node can go to S only when all its producers are at S, and can always
  go to T; branch-and-bound prunes with the additive cost.  Both
  searches return cost-minimal placements; the literal one is
  exponentially slower, not different.

:func:`cost_based_pessim` enumerates the same space keeping the *most*
expensive placement (the optimization-window baseline of Table 5),
pruning with an optimistic upper bound.
"""

from __future__ import annotations

from repro.errors import PlacementError
from repro.core.cost.model import CostWeights
from repro.core.cost.probe import CostProbe
from repro.core.optimizer.placement import (
    assign,
    initial_placement,
    placement_cost,
    resolve_weights,
    unassigned_nodes,
)
from repro.core.ops.base import Location, Operation
from repro.core.ops.scan import Scan
from repro.core.ops.write import Write
from repro.core.program.dag import Placement, TransferProgram


def _topological_search(program: TransferProgram, probe: CostProbe,
                        weights: CostWeights | None,
                        maximize: bool) -> tuple[Placement, float]:
    program.validate()
    weights = resolve_weights(probe, weights)
    w_comp = weights.computation
    w_com = weights.communication
    order = program.topological_order()
    in_edges = [program.in_edges(node) for node in order]

    comp: list[dict[Location, float]] = []
    for node in order:
        comp.append({
            Location.SOURCE: w_comp * probe.comp_cost(
                node, Location.SOURCE),
            Location.TARGET: w_comp * probe.comp_cost(
                node, Location.TARGET),
        })
    comm = [
        [w_com * probe.comm_cost(edge.fragment) for edge in edges]
        for edges in in_edges
    ]

    # Optimistic per-node bound for the maximizing search: the best a
    # suffix could still add (max location cost + all in-edges crossing).
    if maximize:
        suffix_bound = [0.0] * (len(order) + 1)
        for index in range(len(order) - 1, -1, -1):
            best_here = max(comp[index].values()) + sum(comm[index])
            suffix_bound[index] = suffix_bound[index + 1] + best_here

    best_placement: Placement | None = None
    best_cost = 0.0
    placement: Placement = {}

    def options(index: int) -> tuple[Location, ...]:
        node = order[index]
        if isinstance(node, Scan):
            return (Location.SOURCE,)
        if isinstance(node, Write):
            return (Location.TARGET,)
        all_sources = all(
            placement[edge.producer.op_id] is Location.SOURCE
            for edge in in_edges[index]
        )
        if all_sources:
            return (Location.SOURCE, Location.TARGET)
        return (Location.TARGET,)

    def recurse(index: int, cost: float) -> None:
        nonlocal best_placement, best_cost
        if best_placement is not None:
            if not maximize and cost >= best_cost:
                return
            if maximize and cost + suffix_bound[index] <= best_cost:
                return
        if index == len(order):
            best_placement = dict(placement)
            best_cost = cost
            return
        node = order[index]
        for location in options(index):
            extra = comp[index][location]
            for position, edge in enumerate(in_edges[index]):
                if placement[edge.producer.op_id] is not location:
                    extra += comm[index][position]
            placement[node.op_id] = location
            recurse(index + 1, cost + extra)
            del placement[node.op_id]

    recurse(0, 0.0)
    if best_placement is None:
        raise PlacementError("no legal placement exists for this program")
    return best_placement, best_cost


def cost_based_optim(program: TransferProgram, probe: CostProbe,
                     weights: CostWeights | None = None
                     ) -> tuple[Placement, float]:
    """Exhaustive placement optimization; returns the cheapest legal
    placement and its cost (formula 1).

    Raises:
        PlacementError: if no legal placement exists.
    """
    return _topological_search(program, probe, weights, maximize=False)


def cost_based_pessim(program: TransferProgram, probe: CostProbe,
                      weights: CostWeights | None = None
                      ) -> tuple[Placement, float]:
    """The *worst* placement in the same search space (Section 5.4.2's
    worst-case program baseline)."""
    return _topological_search(program, probe, weights, maximize=True)


def cost_based_optim_literal(program: TransferProgram, probe: CostProbe,
                             weights: CostWeights | None = None
                             ) -> tuple[Placement, float]:
    """Algorithm 1 verbatim (worklist form).  Equivalent to
    :func:`cost_based_optim`; exponentially slower on large programs.

    Raises:
        PlacementError: if no legal placement exists.
    """
    program.validate()
    base = initial_placement(program)
    best_placement: Placement | None = None
    best_cost = 0.0

    def consider(candidate: Placement) -> None:
        nonlocal best_placement, best_cost
        program.validate_placement(candidate)
        cost = placement_cost(program, candidate, probe, weights)
        if best_placement is None or cost < best_cost:
            best_placement = dict(candidate)
            best_cost = cost

    if not unassigned_nodes(program, base):
        consider(base)
        assert best_placement is not None
        return best_placement, best_cost

    open_problems: list[Placement] = [base]
    seen: set[frozenset[tuple[int, Location]]] = set()
    while open_problems:
        partial = open_problems.pop()
        for node in unassigned_nodes(program, partial):
            branch = dict(partial)
            # Lines 8-12: OP to S, upstream to S, downstream to T.
            if not assign(program, branch, node, Location.SOURCE):
                continue
            legal = True
            for consumer in program.consumers(node):
                if not assign(program, branch, consumer,
                              Location.TARGET):
                    legal = False
                    break
            if not legal:
                continue
            if unassigned_nodes(program, branch):
                signature = frozenset(branch.items())
                if signature not in seen:
                    seen.add(signature)
                    open_problems.append(branch)
            else:
                consider(branch)

    if best_placement is None:
        raise PlacementError("no legal placement exists for this program")
    return best_placement, best_cost


def enumerate_placements(program: TransferProgram) -> list[Placement]:
    """All legal placements of a program (test/analysis helper; the
    count grows exponentially — use on small programs only)."""
    program.validate()
    order = program.topological_order()
    in_edges = [program.in_edges(node) for node in order]
    results: list[Placement] = []
    placement: Placement = {}

    def recurse(index: int) -> None:
        if index == len(order):
            results.append(dict(placement))
            return
        node = order[index]
        if isinstance(node, Scan):
            choices: tuple[Location, ...] = (Location.SOURCE,)
        elif isinstance(node, Write):
            choices = (Location.TARGET,)
        elif all(
            placement[edge.producer.op_id] is Location.SOURCE
            for edge in in_edges[index]
        ):
            choices = (Location.SOURCE, Location.TARGET)
        else:
            choices = (Location.TARGET,)
        for location in choices:
            placement[node.op_id] = location
            recurse(index + 1)
            del placement[node.op_id]

    recurse(0)
    return results


def count_placements(program: TransferProgram) -> int:
    """Number of legal placements of a program."""
    return len(enumerate_placements(program))
