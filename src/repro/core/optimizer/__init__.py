"""Program optimization (Sections 4.2 and 4.3).

* :mod:`repro.core.optimizer.placement` — shared placement machinery
  (closure propagation, legality, cost of a placed program),
* :mod:`repro.core.optimizer.exhaustive` — Algorithm 1
  (``Cost_Based_Optim``) and its pessimal twin (worst-case program,
  needed for Table 5),
* :mod:`repro.core.optimizer.greedy` — the greedy combine ordering and
  greedy distributed-processing heuristic,
* :mod:`repro.core.optimizer.search` — couples combine-order
  enumeration with placement optimization and returns the best/worst/
  greedy exchange programs for a mapping.
"""

from repro.core.optimizer.exhaustive import (
    cost_based_optim,
    cost_based_optim_literal,
    cost_based_pessim,
    count_placements,
    enumerate_placements,
)
from repro.core.optimizer.greedy import greedy_placement, greedy_program
from repro.core.optimizer.placement import (
    placement_cost,
    source_heavy_placement,
)
from repro.core.optimizer.search import (
    OptimizationResult,
    greedy_exchange,
    optimal_exchange,
    worst_exchange,
)

__all__ = [
    "cost_based_optim",
    "cost_based_optim_literal",
    "count_placements",
    "enumerate_placements",
    "cost_based_pessim",
    "greedy_placement",
    "greedy_program",
    "placement_cost",
    "source_heavy_placement",
    "OptimizationResult",
    "optimal_exchange",
    "worst_exchange",
    "greedy_exchange",
]
