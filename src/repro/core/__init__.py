"""The paper's primary contribution.

* Fragments, fragmentations and validity — Defs. 3.1–3.4
  (:mod:`repro.core.fragment`, :mod:`repro.core.fragmentation`),
* fragment instances as keyed feeds (:mod:`repro.core.instance`),
* mappings between fragmentations — Def. 3.5 (:mod:`repro.core.mapping`),
* the four primitive operations — Defs. 3.6–3.9 (:mod:`repro.core.ops`),
* data-transfer programs and their generation — Def. 3.10 / Sec. 4.2
  (:mod:`repro.core.program`),
* the cost model — Sec. 4.1 (:mod:`repro.core.cost`),
* the exhaustive and greedy optimizers — Secs. 4.2/4.3
  (:mod:`repro.core.optimizer`).
"""

from repro.core.advisor import (
    AdvisorResult,
    exchange_objective,
    recommend_fragmentation,
)
from repro.core.fragment import Fragment
from repro.core.fragmentation import Fragmentation
from repro.core.instance import ElementData, FragmentInstance
from repro.core.mapping import Mapping, derive_mapping

__all__ = [
    "Fragment",
    "AdvisorResult",
    "exchange_objective",
    "recommend_fragmentation",
    "Fragmentation",
    "ElementData",
    "FragmentInstance",
    "Mapping",
    "derive_mapping",
]
