"""Fragments of an XML Schema (Definition 3.1).

A fragment is a *pruned subtree* of the schema: it is rooted at some
schema element and contains a connected, upward-closed set of elements of
that element's subtree.  ("Upward-closed": if an element is in the
fragment, so is its parent, unless it is the fragment root.)  The root of
a fragment carries the two bookkeeping attributes ``ID`` and ``PARENT``
that link fragment instances back together.

Examples from the paper: the ``Order_Service`` fragment of Section 3.1
contains ``{Order, Service, ServiceName}`` and is rooted at ``Order``;
combining it under ``Customer`` yields ``Customer_Order_Service``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import FragmentationError, OperationError, SchemaError
from repro.schema.model import SchemaNode, SchemaTree

ID_ATTR = "ID"
PARENT_ATTR = "PARENT"


class Fragment:
    """A named, pruned subtree of a schema tree.

    Fragments are immutable value objects; equality is by schema
    identity, root and element set.
    """

    __slots__ = ("name", "schema", "root_name", "elements", "_hash")

    def __init__(self, schema: SchemaTree, elements: Iterable[str],
                 name: str | None = None) -> None:
        element_set = frozenset(elements)
        if not element_set:
            raise FragmentationError("a fragment cannot be empty")
        for element in element_set:
            schema.node(element)  # raises SchemaError if unknown
        try:
            root_name = schema.top_of(element_set)
        except SchemaError as exc:
            raise FragmentationError(str(exc)) from exc
        for element in element_set:
            parent = schema.parent_name(element)
            if element != root_name and parent not in element_set:
                raise FragmentationError(
                    f"fragment element {element!r} is disconnected from "
                    f"root {root_name!r}"
                )
        self.schema = schema
        self.elements = element_set
        self.root_name = root_name
        self.name = name or self.default_name(schema, element_set)
        self._hash = hash((id(schema), root_name, element_set))

    # -- construction helpers ---------------------------------------------

    @staticmethod
    def default_name(schema: SchemaTree, elements: frozenset[str]) -> str:
        """The paper's naming convention: pre-order element names joined
        by underscores (e.g. ``Customer_Order_Service``)."""
        ordered = [
            node.name
            for node in schema.iter_nodes()
            if node.name in elements
        ]
        return "_".join(ordered)

    @classmethod
    def full_subtree(cls, schema: SchemaTree, root_name: str,
                     name: str | None = None) -> "Fragment":
        """The fragment containing the entire subtree under ``root_name``."""
        return cls(schema, schema.subtree_names(root_name), name)

    @classmethod
    def whole(cls, schema: SchemaTree, name: str | None = None) -> "Fragment":
        """The trivial fragment covering the whole schema (one full
        document per instance row) — the publish&map default."""
        return cls.full_subtree(schema, schema.root.name, name)

    @classmethod
    def single(cls, schema: SchemaTree, element: str,
               name: str | None = None) -> "Fragment":
        """The smallest granularity: a fragment of a single element."""
        return cls(schema, [element], name)

    # -- basic properties ---------------------------------------------------

    @property
    def root_node(self) -> SchemaNode:
        """Schema node of the fragment root."""
        return self.schema.node(self.root_name)

    def __contains__(self, element: str) -> bool:
        return element in self.elements

    def __len__(self) -> int:
        return len(self.elements)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fragment):
            return NotImplemented
        return (
            self.schema is other.schema
            and self.root_name == other.root_name
            and self.elements == other.elements
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Fragment({self.name!r})"

    def parent_element(self) -> str | None:
        """The schema parent of the fragment root (``None`` at the
        schema root).  Instances' ``PARENT`` attributes refer to
        occurrences of this element."""
        return self.schema.parent_name(self.root_name)

    def is_flat_storable(self) -> bool:
        """True if no non-root element of the fragment is repeated —
        i.e. each root occurrence maps to one flat relational row (see
        DESIGN.md)."""
        return not self.schema.has_repeated_below(
            self.root_name, self.elements
        )

    # -- pruned-subtree navigation -----------------------------------------

    def children_of(self, element: str) -> list[SchemaNode]:
        """Schema children of ``element`` that belong to this fragment,
        in schema order."""
        if element not in self.elements:
            raise FragmentationError(
                f"{element!r} is not in fragment {self.name!r}"
            )
        return [
            child
            for child in self.schema.node(element).children
            if child.name in self.elements
        ]

    def is_leaf_in_fragment(self, element: str) -> bool:
        """True if ``element`` has no children *within the fragment*.

        Note an element can be a fragment leaf while having schema
        children (they were pruned into other fragments); such elements
        carry no text — only true schema leaves do.
        """
        return not self.children_of(element)

    def leaf_elements(self) -> list[str]:
        """True schema leaves contained in this fragment, pre-order
        (these carry text content and become relational columns)."""
        return [
            node.name
            for node in self.schema.iter_nodes()
            if node.name in self.elements and node.is_leaf
        ]

    def attribute_columns(self) -> list[tuple[str, str]]:
        """``(element, attribute)`` pairs declared inside this fragment."""
        return [
            (node.name, attr)
            for node in self.schema.iter_nodes()
            if node.name in self.elements
            for attr in node.attributes
        ]

    # -- the algebraic structure used by Combine / Split ---------------------

    def can_combine(self, child: "Fragment") -> bool:
        """True if ``child`` can be inlined into this fragment
        (Definition 3.7): its root's schema parent belongs to us and
        the element sets are disjoint."""
        parent = child.parent_element()
        return (
            parent is not None
            and parent in self.elements
            and not (self.elements & child.elements)
        )

    def combined_with(self, child: "Fragment",
                      name: str | None = None) -> "Fragment":
        """The schema-level result of ``Combine(self, child)``.

        Raises:
            OperationError: if the fragments are not parent/child-related
                (the paper's example: ``Line`` and ``Customer`` cannot be
                combined).
        """
        if not self.can_combine(child):
            raise OperationError(
                f"cannot combine {child.name!r} into {self.name!r}: "
                "roots are not parent/child related"
            )
        return Fragment(self.schema, self.elements | child.elements, name)

    def split_into(self, element_sets: Sequence[Iterable[str]],
                   names: Sequence[str] | None = None) -> list["Fragment"]:
        """The schema-level result of ``Split(self, f1, ..., fn)``.

        The element sets must partition this fragment's elements and the
        first set must contain this fragment's root (Definition 3.8:
        splitting is projection, the original root stays in a piece).

        Raises:
            OperationError: if the sets do not partition the fragment.
        """
        sets = [frozenset(part) for part in element_sets]
        union: set[str] = set()
        total = 0
        for part in sets:
            union |= part
            total += len(part)
        if union != self.elements or total != len(self.elements):
            raise OperationError(
                f"split of {self.name!r} must partition its elements"
            )
        result_names: Sequence[str | None]
        if names is None:
            result_names = [None] * len(sets)
        elif len(names) != len(sets):
            raise OperationError("one name per split output is required")
        else:
            result_names = names
        return [
            Fragment(self.schema, part, part_name)
            for part, part_name in zip(sets, result_names)
        ]
