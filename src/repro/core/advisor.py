"""Fragmentation advisor — the paper's stated future work.

    "In the future, we would like to explore solutions to derive the
    best fragmentation for a system based on its internal indices and
    data structures."  (Section 7)

Given the peer's registered fragmentation, data statistics and a cost
model, :func:`recommend_fragmentation` searches the space of valid
fragmentations (equivalently: subsets of cut points, since a valid
fragmentation of a tree is determined by its fragment roots) for the
one minimizing the estimated exchange cost.  The search is greedy local
improvement — add or remove one cut point per step — which converges in
a handful of evaluations and, on the paper's workloads, discovers the
intuitive optima (e.g. *register exactly the peer's fragmentation* when
machines are similar, because identity exchanges need no operations).

The evaluation function is pluggable so a system can bias the search
with its own concerns (index maintenance, flat-storability, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.cost.probe import CostProbe
from repro.core.fragmentation import Fragmentation
from repro.core.mapping import derive_mapping
from repro.core.optimizer.greedy import greedy_placement, greedy_program
from repro.core.optimizer.placement import placement_cost
from repro.schema.model import SchemaTree

#: Scores a candidate fragmentation (lower is better).
Objective = Callable[[Fragmentation], float]


@dataclass(slots=True)
class AdvisorResult:
    """Outcome of a fragmentation search."""

    fragmentation: Fragmentation
    cost: float
    evaluations: int
    steps: int


def exchange_objective(peer: Fragmentation, probe: CostProbe,
                       as_source: bool = True,
                       flat_storable_only: bool = True) -> Objective:
    """The default objective: estimated cost of the greedy exchange
    program between the candidate and the peer.

    Args:
        peer: the other system's registered fragmentation.
        probe: cost probe (typically a CostModel with the negotiation
            statistics).
        as_source: True if the advised system produces fragments
            (candidate -> peer); False if it consumes (peer ->
            candidate).
        flat_storable_only: reject fragmentations the relational
            back-end cannot store as flat tables (infinite cost).
    """

    def score(candidate: Fragmentation) -> float:
        if flat_storable_only and not candidate.is_flat_storable():
            return float("inf")
        if as_source:
            mapping = derive_mapping(candidate, peer)
        else:
            mapping = derive_mapping(peer, candidate)
        program = greedy_program(mapping, probe)
        placement = greedy_placement(program, probe)
        return placement_cost(program, placement, probe)

    return score


def recommend_fragmentation(schema: SchemaTree, objective: Objective,
                            *, start: Fragmentation | None = None,
                            max_steps: int = 50,
                            name: str = "advised") -> AdvisorResult:
    """Greedy local search over cut-point sets.

    Starting from ``start`` (default: least-fragmented), repeatedly
    apply the single cut-point addition or removal that improves the
    objective most; stop at a local optimum or after ``max_steps``.

    Returns the best fragmentation found (renamed to ``name``).
    """
    if start is None:
        start = Fragmentation.least_fragmented(schema, name)
    current_roots = {
        fragment.root_name for fragment in start.fragments
    }
    evaluations = 0

    def evaluate(roots: frozenset[str]) -> float:
        nonlocal evaluations
        evaluations += 1
        candidate = Fragmentation.from_roots(
            schema, sorted(roots), name
        )
        return objective(candidate)

    current = frozenset(current_roots)
    current_cost = evaluate(current)
    steps = 0
    non_root_elements = [
        element for element in schema.element_names()
        if element != schema.root.name
    ]
    while steps < max_steps:
        best_neighbor: frozenset[str] | None = None
        best_cost = current_cost
        for element in non_root_elements:
            if element in current:
                neighbor = current - {element}
            else:
                neighbor = current | {element}
            cost = evaluate(neighbor)
            if cost < best_cost:
                best_cost = cost
                best_neighbor = neighbor
        if best_neighbor is None:
            break
        current = best_neighbor
        current_cost = best_cost
        steps += 1
    return AdvisorResult(
        Fragmentation.from_roots(schema, sorted(current), name),
        current_cost,
        evaluations,
        steps,
    )
