"""Fragment instances (Definition 3.2) as keyed feeds.

A fragment instance is, conceptually, a set of XML documents conforming
to the fragment's schema.  Internally we represent it as a *feed* of
rows: one row per occurrence of the fragment root, holding a nested
:class:`ElementData` value plus the ``PARENT`` reference (the element id
of the occurrence of the fragment root's schema parent).  Every element
occurrence carries an internal element id (``eid``), mirroring the
keys/foreign keys a relational back-end maintains; the paper's ``ID`` /
``PARENT`` attributes are simply the root-level exposure of those keys.

This representation makes ``Combine`` (attach child rows under the
matching parent occurrence, drop their ID/PARENT exposure, Def. 3.7) and
``Split`` (cut subtrees out and re-expose ID/PARENT, Def. 3.8) exact
inverses, which the property tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import OperationError
from repro.core.fragment import ID_ATTR, PARENT_ATTR, Fragment
from repro.schema.model import SchemaTree
from repro.xmlkit.tree import Element


def combine_orphan_message(parent_name: str, child_name: str,
                           orphan_keys: Iterable[int | None]) -> str:
    """Error text for child rows whose parent occurrences are missing,
    listing the orphaned PARENT keys.  Shared by the materialized,
    streaming and columnar combine paths so every dataplane reports
    the identical diagnosis.  ``None`` (a root row arriving where a
    child is expected) sorts first and renders literally."""
    keys = sorted(set(orphan_keys),
                  key=lambda key: (key is not None, key or 0))
    shown = ", ".join(str(key) for key in keys[:10])
    if len(keys) > 10:
        shown += f", ... ({len(keys) - 10} more)"
    return (
        f"combine({parent_name!r}, {child_name!r}): {len(keys)} "
        f"orphaned PARENT key(s) reference missing parents: [{shown}]"
    )


@dataclass(slots=True)
class ElementData:
    """One element occurrence: name, key, attributes, text, children.

    ``children`` maps a child element name to the list of its
    occurrences; serialization orders the groups by schema order, so the
    map needs no particular ordering discipline.
    """

    name: str
    eid: int
    attrs: dict[str, str] = field(default_factory=dict)
    text: str = ""
    children: dict[str, list["ElementData"]] = field(default_factory=dict)

    def add_child(self, child: "ElementData") -> "ElementData":
        """Attach ``child`` and return it."""
        self.children.setdefault(child.name, []).append(child)
        return child

    def child_list(self, name: str) -> list["ElementData"]:
        """Occurrences of child element ``name`` (empty list if none)."""
        return self.children.get(name, [])

    def iter_all(self) -> Iterator["ElementData"]:
        """This occurrence and all descendants, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            for group in node.children.values():
                stack.extend(reversed(group))

    def occurrences_of(self, name: str) -> Iterator["ElementData"]:
        """All descendant-or-self occurrences of element ``name``."""
        for node in self.iter_all():
            if node.name == name:
                yield node

    def copy(self) -> "ElementData":
        """Deep copy (used by tests and by endpoints that retain data)."""
        return ElementData(
            self.name,
            self.eid,
            dict(self.attrs),
            self.text,
            {
                name: [child.copy() for child in group]
                for name, group in self.children.items()
            },
        )

    def element_count(self) -> int:
        """Number of element occurrences in this subtree."""
        return sum(1 for _ in self.iter_all())

    def estimated_size(self) -> int:
        """Approximate serialized size in bytes (tags + attrs + text)."""
        total = 0
        for node in self.iter_all():
            total += 2 * len(node.name) + 5  # <n></n>
            total += len(node.text)
            for key, value in node.attrs.items():
                total += len(key) + len(value) + 4
        return total

    def to_xml(self, schema: SchemaTree,
               expose: tuple[int | None, ...] | None = None) -> Element:
        """Render as an :class:`~repro.xmlkit.tree.Element`.

        Args:
            schema: supplies child ordering.
            expose: when given as ``(parent_eid,)``, write the paper's
                ``ID``/``PARENT`` attributes on this (root) element.
        """
        attrs = dict(self.attrs)
        if expose is not None:
            attrs[ID_ATTR] = str(self.eid)
            (parent_eid,) = expose
            attrs[PARENT_ATTR] = "" if parent_eid is None else str(parent_eid)
        element = Element(self.name, attrs, text=self.text)
        schema_node = schema.node(self.name)
        for child_node in schema_node.children:
            for child in self.children.get(child_node.name, []):
                element.children.append(child.to_xml(schema))
        # Children not declared under this element in the schema cannot
        # occur here by construction; no fallback path is needed.
        return element


@dataclass(slots=True)
class FragmentRow:
    """One fragment-root occurrence and its PARENT reference.

    ``version`` is endpoint-side bookkeeping stamped by a
    :class:`~repro.core.delta.VersionLog` when the owning endpoint has
    versioning enabled: the monotone exchange version at which this row
    last changed.  It never travels on the wire — delta exchange uses
    it purely to pick the changed subset (0 means "unversioned").
    """

    data: ElementData
    parent: int | None
    version: int = 0

    @property
    def eid(self) -> int:
        """The exposed ``ID`` attribute value of this row."""
        return self.data.eid


def row_estimated_size(row: FragmentRow) -> int:
    """Approximate serialized (tagged XML) size of one row in bytes,
    including its ID/PARENT exposure.  The per-row unit both the
    materialized :meth:`FragmentInstance.estimated_size` and the batch
    dataplane (:class:`~repro.core.stream.RowBatch`) account in."""
    return row.data.estimated_size() + 24  # ID/PARENT exposure


def row_feed_size(row: FragmentRow) -> int:
    """Approximate size of one row as part of a tabular *sorted feed*:
    keys and values only, no tags — the DE wire format (the paper ships
    fragments as sorted feeds, cf. Section 4.1 and Table 3)."""
    total = 8  # the PARENT key
    for node in row.data.iter_all():
        total += 10 + len(node.text)  # key + separators
        total += sum(len(value) for value in node.attrs.values())
    return total


class FragmentInstance:
    """A feed of :class:`FragmentRow` conforming to one fragment.

    Operations that consume instances (``Combine``, ``Split``) take
    ownership of their inputs and may share or mutate the underlying
    :class:`ElementData`; use :meth:`copy` when the original must be
    preserved (tests do).
    """

    __slots__ = ("fragment", "rows")

    def __init__(self, fragment: Fragment,
                 rows: Iterable[FragmentRow] = ()) -> None:
        self.fragment = fragment
        self.rows: list[FragmentRow] = list(rows)

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[FragmentRow]:
        return iter(self.rows)

    def row_count(self) -> int:
        """Number of fragment-root occurrences."""
        return len(self.rows)

    def element_count(self) -> int:
        """Total element occurrences across all rows."""
        return sum(row.data.element_count() for row in self.rows)

    def estimated_size(self) -> int:
        """Approximate serialized (tagged XML) size in bytes."""
        return sum(row_estimated_size(row) for row in self.rows)

    def feed_size(self) -> int:
        """Approximate size as a tabular *sorted feed*: keys and values
        only, no tags — the DE wire format (the paper ships fragments
        as sorted feeds, cf. Section 4.1 and Table 3)."""
        return sum(row_feed_size(row) for row in self.rows)

    def copy(self) -> "FragmentInstance":
        """Deep copy of the feed."""
        return FragmentInstance(
            self.fragment,
            [FragmentRow(row.data.copy(), row.parent, row.version)
             for row in self.rows],
        )

    def sort(self) -> None:
        """Sort rows by (PARENT, ID) — the sorted-feed order of [5, 6].

        ``PARENT=None`` (root rows) sorts strictly before every real
        eid, matching the relational engine's NULLS-FIRST ``ORDER BY
        parent, id``; keying on ``row.parent or 0`` would collapse
        root rows with children of a genuine eid-0 parent and diverge
        from the document order the columnar merge join relies on.
        """
        self.rows.sort(
            key=lambda row: (row.parent is not None, row.parent or 0,
                             row.eid)
        )

    # -- the instance-level semantics of Combine / Split ----------------------

    def combine(self, child: "FragmentInstance",
                result_name: str | None = None) -> "FragmentInstance":
        """Inline ``child`` rows under the matching parent occurrences
        (Definition 3.7).  The child's ID/PARENT exposure disappears;
        its element ids survive internally, like keys would.

        Raises:
            OperationError: if the fragments cannot combine, or child
                rows reference parent occurrences that do not exist.
        """
        result_fragment = self.fragment.combined_with(
            child.fragment, result_name
        )
        anchor = child.fragment.parent_element()
        index: dict[int, ElementData] = {}
        for row in self.rows:
            for occurrence in row.data.occurrences_of(anchor):
                index[occurrence.eid] = occurrence
        orphan_keys: list[int | None] = []
        for child_row in child.rows:
            # None (no PARENT) can never match an occurrence; previously
            # it was folded onto the sentinel -1, which a genuine
            # negative eid could collide with.
            key = child_row.parent
            target = index.get(key) if key is not None else None
            if target is None:
                orphan_keys.append(key)
                continue
            target.add_child(child_row.data)
        if orphan_keys:
            raise OperationError(combine_orphan_message(
                self.fragment.name, child.fragment.name, orphan_keys
            ))
        return FragmentInstance(
            result_fragment, [FragmentRow(row.data, row.parent)
                              for row in self.rows]
        )

    def split(self, pieces: Sequence[Fragment]) -> list["FragmentInstance"]:
        """Split into disjoint pieces (Definition 3.8).

        ``pieces`` must partition this fragment's elements (checked via
        :meth:`Fragment.split_into` semantics) and one piece must contain
        this fragment's root; each other piece root gets fresh
        ``PARENT`` references to the enclosing element occurrence.
        """
        # Validate the partition at the schema level first.
        self.fragment.split_into(
            [piece.elements for piece in pieces],
            [piece.name for piece in pieces],
        )
        owner: dict[str, Fragment] = {}
        for piece in pieces:
            for element in piece.elements:
                owner[element] = piece
        outputs: dict[str, list[FragmentRow]] = {
            piece.name: [] for piece in pieces
        }
        root_piece = owner[self.fragment.root_name]

        def extract(node: ElementData, piece: Fragment) -> ElementData:
            kept: dict[str, list[ElementData]] = {}
            for child_name, group in node.children.items():
                child_piece = owner[child_name]
                if child_piece is piece:
                    kept[child_name] = [
                        extract(child, piece) for child in group
                    ]
                else:
                    for child in group:
                        outputs[child_piece.name].append(
                            FragmentRow(
                                extract(child, child_piece), node.eid
                            )
                        )
            return ElementData(
                node.name, node.eid, dict(node.attrs), node.text, kept
            )

        for row in self.rows:
            outputs[root_piece.name].append(
                FragmentRow(extract(row.data, root_piece), row.parent)
            )
        return [
            FragmentInstance(piece, outputs[piece.name]) for piece in pieces
        ]

    # -- XML views -------------------------------------------------------------

    def to_xml_documents(self) -> list[Element]:
        """One XML document per row, ID/PARENT exposed on the root
        (what actually travels on a cross-edge)."""
        return [
            row.data.to_xml(self.fragment.schema, expose=(row.parent,))
            for row in self.rows
        ]

    def map_rows(self, function: Callable[[FragmentRow], FragmentRow]
                 ) -> "FragmentInstance":
        """Return a new instance with ``function`` applied to each row."""
        return FragmentInstance(
            self.fragment, [function(row) for row in self.rows]
        )
