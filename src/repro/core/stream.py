"""Bounded-memory fragment streams: the batch dataplane.

The materialized dataplane moves whole :class:`~repro.core.instance.
FragmentInstance` values between operations, so peak memory and
per-edge latency scale with document size.  This module provides the
streamed alternative: a :class:`RowBatch` is an ordered slice of a
fragment's feed (rows ``seq * batch_rows .. len(rows)``), and a
:class:`FragmentStream` is a single-use iterator of batches with
bridges to and from the materialized representation.  Operations that
move batches instead of instances hold only a bounded frontier of rows
resident at any time; :class:`ResidencyMeter` measures that frontier
(``peak_resident_rows`` / ``peak_resident_bytes`` in the execution
report) for both dataplanes so the bound is checkable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.errors import OperationError
from repro.core.fragment import Fragment
from repro.core.instance import (
    FragmentInstance,
    FragmentRow,
    row_estimated_size,
    row_feed_size,
)

#: Batch size used when a stream is requested without an explicit one.
DEFAULT_BATCH_ROWS = 256


@dataclass(slots=True)
class RowBatch:
    """An ordered slice of a fragment's feed.

    Attributes:
        fragment: the fragment every row conforms to.
        rows: the slice, in feed order.
        seq: 0-based position of this batch within its stream.
    """

    fragment: Fragment
    rows: list[FragmentRow]
    seq: int
    #: Memoized size sums.  Several pipeline stages (residency meter,
    #: transport charging, shipping accounting) each ask for the size of
    #: the same immutable slice; walking every row's tree per ask is
    #: pure waste.  Operations that mutate rows (Combine) emit a *new*
    #: RowBatch for the result, so a cached value never goes stale.
    _estimated: int | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _feed: int | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def row_count(self) -> int:
        """Number of fragment-root occurrences in the slice."""
        return len(self.rows)

    def estimated_size(self) -> int:
        """Approximate serialized (tagged XML) size in bytes
        (computed once per batch, then memoized)."""
        if self._estimated is None:
            self._estimated = sum(
                row_estimated_size(row) for row in self.rows
            )
        return self._estimated

    def feed_size(self) -> int:
        """Approximate tabular sorted-feed (wire) size in bytes
        (computed once per batch, then memoized)."""
        if self._feed is None:
            self._feed = sum(row_feed_size(row) for row in self.rows)
        return self._feed

    def to_instance(self) -> FragmentInstance:
        """A :class:`FragmentInstance` sharing this batch's rows."""
        return FragmentInstance(self.fragment, self.rows)


class FragmentStream:
    """A single-use, ordered stream of :class:`RowBatch` for one
    fragment.

    Concatenating the batches of a stream in ``seq`` order yields
    exactly the rows of the materialized instance — that equivalence
    (checked by the determinism tests for every batch size) is what
    lets the streaming dataplane stay byte-identical to the
    materialized one.
    """

    __slots__ = ("fragment", "_batches", "_consumed")

    def __init__(self, fragment: Fragment,
                 batches: Iterable[RowBatch]) -> None:
        self.fragment = fragment
        self._batches = iter(batches)
        self._consumed = False

    def __iter__(self) -> Iterator[RowBatch]:
        """Iterate the batches (once).

        Raises:
            OperationError: if the stream was already consumed.
        """
        if self._consumed:
            raise OperationError(
                f"stream of fragment {self.fragment.name!r} was "
                "already consumed"
            )
        self._consumed = True
        return self._batches

    # -- bridges ---------------------------------------------------------------

    @classmethod
    def from_instance(cls, instance: FragmentInstance,
                      batch_rows: int = DEFAULT_BATCH_ROWS,
                      copy_rows: bool = False) -> "FragmentStream":
        """Re-batch a materialized instance.

        With ``copy_rows`` each row is deep-copied lazily as its batch
        is produced, so consumers that mutate rows (Combine does) never
        touch the stored original — and only one batch of copies is
        resident at a time.
        """
        if copy_rows:
            rows: Iterable[FragmentRow] = (
                FragmentRow(row.data.copy(), row.parent)
                for row in instance.rows
            )
        else:
            rows = instance.rows
        return cls.from_rows(instance.fragment, rows, batch_rows)

    @classmethod
    def from_rows(cls, fragment: Fragment,
                  rows: Iterable[FragmentRow],
                  batch_rows: int = DEFAULT_BATCH_ROWS
                  ) -> "FragmentStream":
        """Slice an iterable of rows into batches of ``batch_rows``."""
        if batch_rows < 1:
            raise OperationError(
                f"batch_rows must be >= 1, got {batch_rows}"
            )

        def generate() -> Iterator[RowBatch]:
            buffer: list[FragmentRow] = []
            seq = 0
            for row in rows:
                buffer.append(row)
                if len(buffer) >= batch_rows:
                    yield RowBatch(fragment, buffer, seq)
                    seq += 1
                    buffer = []
            if buffer:
                yield RowBatch(fragment, buffer, seq)

        return cls(fragment, generate())

    def materialize(self) -> FragmentInstance:
        """Drain the stream into a materialized instance."""
        instance = FragmentInstance(self.fragment)
        for batch in self:
            instance.rows.extend(batch.rows)
        return instance

    def map_batches(self, function: Callable[[RowBatch], RowBatch]
                    ) -> "FragmentStream":
        """A stream applying ``function`` to each batch (lazily)."""
        return FragmentStream(
            self.fragment, (function(batch) for batch in self)
        )


class ResidencyMeter:
    """Tracks rows/bytes resident in the dataplane and their peaks.

    Producers :meth:`acquire` rows when they enter the dataplane (a
    Scan yields a batch, a Split queues a piece) and consumers
    :meth:`release` them when absorbed (a Write loaded the batch, a
    Combine inlined a buffered child row).  Thread-safe, since the
    parallel executor produces and consumes from many threads.
    """

    __slots__ = ("_lock", "_rows", "_bytes", "peak_rows", "peak_bytes")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rows = 0
        self._bytes = 0
        self.peak_rows = 0
        self.peak_bytes = 0

    def acquire(self, rows: int, size_bytes: int) -> None:
        """Mark ``rows`` totalling ``size_bytes`` as resident."""
        with self._lock:
            self._rows += rows
            self._bytes += size_bytes
            if self._rows > self.peak_rows:
                self.peak_rows = self._rows
            if self._bytes > self.peak_bytes:
                self.peak_bytes = self._bytes

    def release(self, rows: int, size_bytes: int) -> None:
        """Mark ``rows`` totalling ``size_bytes`` as absorbed."""
        with self._lock:
            self._rows -= rows
            self._bytes -= size_bytes

    @property
    def resident_rows(self) -> int:
        """Rows currently resident."""
        return self._rows
