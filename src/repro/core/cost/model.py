"""Computation/communication cost model (Section 4.1, formula 1).

``comp_cost(OP, location)`` prices an operation on the system it runs
at; dividing by the machine's relative speed models the heterogeneous
configurations of Section 5.4 (e.g. a 10× faster target, Figure 11).
A *dumb client* — a system without the ability, or intention, to combine
or split — is modeled by infinite cost, exactly as the paper suggests.

``comm_cost(e)`` is the size of the fragment flowing along a cross-edge
(``size(OP1.out)``), optionally scaled by a channel bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.ops.base import Location, Operation
from repro.core.ops.combine import Combine
from repro.core.ops.scan import Scan
from repro.core.ops.split import Split
from repro.core.ops.write import Write
from repro.core.program.dag import Placement, TransferProgram

INFINITE_COST = math.inf


@dataclass(frozen=True, slots=True)
class MachineProfile:
    """A system's processing profile.

    Attributes:
        name: label used in reports.
        speed: relative processing speed (1.0 = the baseline machine;
            the paper's experiments use ratios 5/1 … 1/5 and ×10).
        can_combine: False models a dumb client (infinite Combine cost).
        can_split: False forbids Split at this system.
        index_factor: extra Write cost factor for index maintenance.
    """

    name: str = "machine"
    speed: float = 1.0
    can_combine: bool = True
    can_split: bool = True
    index_factor: float = 1.0


@dataclass(frozen=True, slots=True)
class CostWeights:
    """The ``w_comp``/``w_com`` weights of formula 1."""

    computation: float = 1.0
    communication: float = 1.0


@dataclass(slots=True)
class CostBreakdown:
    """Cost of a placed program, split as in Figures 10/11."""

    computation: float = 0.0
    communication: float = 0.0
    by_location: dict[Location, float] = field(
        default_factory=lambda: {
            Location.SOURCE: 0.0, Location.TARGET: 0.0,
        }
    )

    @property
    def total(self) -> float:
        """Weighted total (weights already applied by the caller)."""
        return self.computation + self.communication


# Per-element-occurrence unit costs.  Absolute values are arbitrary
# (costs are compared, never interpreted as seconds); ratios reflect
# that combines (joins) dominate scans, as [5, 6] and the paper's
# Section 5 measurements show.
UNIT_SCAN = 1.0
UNIT_COMBINE = 4.0
UNIT_SPLIT = 1.5
UNIT_WRITE = 2.0

#: Default work scale per dataplane strategy, relative to the row
#: dataplane ("row" = 1.0).  The columnar paths skip tree building
#: entirely and the build/probe join replaces the per-row grouped
#: merge; the merge variant additionally skips hashing the build side.
#: Calibration (:mod:`repro.core.cost.calibrate`) replaces these
#: defaults with measured per-strategy unit costs.
DEFAULT_STRATEGY_SCALES: dict[str, float] = {
    "row": 1.0,
    "columnar": 0.35,
    "hash": 0.30,
    "merge": 0.25,
}


def operation_work(op: Operation, statistics: StatisticsCatalog) -> float:
    """Machine-independent work units of one operation.

    Endpoints price their own operations with this same function
    (divided by their speed), so middleware estimates and endpoint
    probes agree by construction.

    Raises:
        TypeError: for unknown operation types.
    """
    if isinstance(op, Scan):
        return UNIT_SCAN * statistics.fragment_elements(op.fragment)
    if isinstance(op, Combine):
        # The engine indexes the parent feed's elements, then attaches
        # each child row: O(|parent elements| + |child rows|).
        return UNIT_COMBINE * (
            statistics.fragment_elements(op.parent_fragment)
            + statistics.fragment_rows(op.child_fragment)
        )
    if isinstance(op, Split):
        return UNIT_SPLIT * statistics.fragment_elements(op.fragment)
    if isinstance(op, Write):
        return UNIT_WRITE * statistics.fragment_elements(op.fragment)
    raise TypeError(f"cannot price operation {op!r}")


class CostModel:
    """Prices operations and whole programs for one exchange setup."""

    def __init__(self, statistics: StatisticsCatalog,
                 source: MachineProfile | None = None,
                 target: MachineProfile | None = None,
                 weights: CostWeights | None = None,
                 bandwidth: float = 1.0,
                 op_scales: dict[str, float] | None = None) -> None:
        self.statistics = statistics
        self.source = source or MachineProfile("source")
        self.target = target or MachineProfile("target")
        self.weights = weights or CostWeights()
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        #: Work multiplier per dataplane strategy (missing strategies
        #: price at the row baseline, scale 1.0).
        self.op_scales = dict(
            DEFAULT_STRATEGY_SCALES if op_scales is None else op_scales
        )

    def machine(self, location: Location) -> MachineProfile:
        """The profile of the system at ``location``."""
        return (
            self.source if location is Location.SOURCE else self.target
        )

    # -- comp_cost(OP, location) ------------------------------------------------

    def comp_cost(self, op: Operation, location: Location,
                  strategy: str = "row") -> float:
        """Execution cost of ``op`` at ``location`` (unweighted).

        ``strategy`` selects the dataplane variant to price ("row",
        "columnar", or the columnar join strategies "hash"/"merge");
        its :attr:`op_scales` multiplier models how much of the row
        path's per-occurrence work the variant actually performs.
        """
        machine = self.machine(location)
        if isinstance(op, Combine) and not machine.can_combine:
            return INFINITE_COST
        if isinstance(op, Split) and not machine.can_split:
            return INFINITE_COST
        work = operation_work(op, self.statistics)
        work *= self.op_scales.get(strategy, 1.0)
        if isinstance(op, Write):
            work *= machine.index_factor
        return work / machine.speed

    # -- comm_cost(e) --------------------------------------------------------------

    def comm_cost(self, fragment) -> float:
        """Shipping cost of one fragment instance across the channel
        (fragments travel as sorted feeds, Section 4.1)."""
        return (
            self.statistics.fragment_feed_size(fragment) / self.bandwidth
        )

    # -- cost(G), formula 1 -----------------------------------------------------------

    def breakdown(self, program: TransferProgram,
                  placement: Placement,
                  strategies: dict[str, str] | None = None
                  ) -> CostBreakdown:
        """Weighted computation/communication breakdown of a placement.

        ``strategies`` optionally maps an operation *kind* (``scan``/
        ``combine``/``split``/``write``) to the dataplane strategy to
        price it at — how the simulator prices a columnar run without
        touching the program.
        """
        result = CostBreakdown()
        w_comp = self.weights.computation
        w_com = self.weights.communication
        strategies = strategies or {}
        for node in program.nodes:
            location = placement[node.op_id]
            strategy = strategies.get(node.kind, "row")
            cost = w_comp * self.comp_cost(node, location, strategy)
            result.computation += cost
            result.by_location[location] += cost
        for edge in program.cross_edges(placement):
            result.communication += w_com * self.comm_cost(edge.fragment)
        return result

    def program_cost(self, program: TransferProgram,
                     placement: Placement) -> float:
        """``cost(G)`` of formula 1."""
        return self.breakdown(program, placement).total


def program_cost(program: TransferProgram, placement: Placement,
                 model: CostModel) -> float:
    """Module-level convenience mirror of :meth:`CostModel.program_cost`."""
    return model.program_cost(program, placement)
