"""The cost model of Section 4.1.

``cost(G) = w_comp * Σ comp_cost(OP) + w_com * Σ comm_cost(e)``
(formula 1), with per-system computation costs obtained by probing the
endpoints and communication cost equal to the size of the fragment
flowing along each cross-edge.
"""

from repro.core.cost.calibrate import (
    CalibratedCostModel,
    Calibration,
    calibrate,
)
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import (
    CostBreakdown,
    CostModel,
    CostWeights,
    MachineProfile,
    program_cost,
)
from repro.core.cost.probe import CostProbe, EndpointProbe

__all__ = [
    "StatisticsCatalog",
    "Calibration",
    "CalibratedCostModel",
    "calibrate",
    "MachineProfile",
    "CostWeights",
    "CostModel",
    "CostBreakdown",
    "program_cost",
    "CostProbe",
    "EndpointProbe",
]
